#include "tools/nymlint/model.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "tools/nymlint/rules.h"

namespace nymlint {
namespace {

bool IsKeyword(const std::string& text) {
  static const std::set<std::string> kKeywords = {
      "if", "else", "for", "while", "do", "switch", "case", "default", "return",
      "break", "continue", "goto", "sizeof", "alignof", "new", "delete", "catch",
      "try", "throw", "static_cast", "dynamic_cast", "const_cast",
      "reinterpret_cast", "co_return", "co_await", "co_yield"};
  return kKeywords.count(text) > 0;
}

bool IsTypeKeyword(const std::string& text) {
  static const std::set<std::string> kTypeKeywords = {
      "void", "bool", "char", "int", "float", "double", "unsigned", "signed",
      "long", "short", "wchar_t", "char8_t", "char16_t", "char32_t", "auto"};
  return kTypeKeywords.count(text) > 0;
}

bool IsDeclNoise(const std::string& text) {
  static const std::set<std::string> kNoise = {
      "const", "constexpr", "consteval", "constinit", "static", "inline",
      "virtual", "explicit", "mutable", "volatile", "extern", "typename",
      "struct", "class", "enum", "register", "thread_local", "std"};
  return kNoise.count(text) > 0;
}

class FileParser {
 public:
  FileParser(const ModelInput& input, int file_index, SymbolModel& model)
      : input_(input), file_index_(file_index), model_(model),
        toks_(*input.significant) {}

  FileModel Run() {
    FileModel out;
    out.path = input_.path;
    out.tokens = toks_;
    file_ = &out;
    while (i_ < toks_.size()) {
      ParseTopLevel();
    }
    AttachDeclassifyMarkers(out);
    return out;
  }

 private:
  struct Frame {
    enum Kind { kNamespace, kClass, kBlock } kind = kBlock;
    std::string class_name;
  };

  const std::string& Text(size_t i) const {
    static const std::string kEmpty;
    return i < toks_.size() ? toks_[i].text : kEmpty;
  }
  bool IsIdentTok(size_t i) const {
    return i < toks_.size() && toks_[i].kind == TokenKind::kIdentifier;
  }

  std::string CurrentClass() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Frame::kClass) {
        return it->class_name;
      }
    }
    return "";
  }

  // Advances past a balanced (...) / {...} / [...] group starting at an
  // opener at index `i`; returns the index just past the closer (or
  // toks_.size() when unterminated — tolerance over precision).
  size_t SkipBalanced(size_t i) const {
    const std::string& open = Text(i);
    std::string close = open == "(" ? ")" : open == "{" ? "}" : "]";
    int depth = 0;
    for (size_t j = i; j < toks_.size(); ++j) {
      const std::string& t = Text(j);
      if (t == open) {
        ++depth;
      } else if (t == close) {
        if (--depth == 0) {
          return j + 1;
        }
      }
    }
    return toks_.size();
  }

  // Advances past a balanced <...> template group (best effort: bails at
  // ';' or '{', which cannot appear inside a template header).
  size_t SkipAngles(size_t i) const {
    int depth = 0;
    for (size_t j = i; j < toks_.size(); ++j) {
      const std::string& t = Text(j);
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        if (--depth == 0) {
          return j + 1;
        }
      } else if (t == ";" || t == "{") {
        return j;
      }
    }
    return toks_.size();
  }

  void SkipToSemicolon() {
    while (i_ < toks_.size()) {
      const std::string& t = Text(i_);
      if (t == ";") {
        ++i_;
        return;
      }
      if (t == "(" || t == "{" || t == "[") {
        i_ = SkipBalanced(i_);
        continue;
      }
      if (t == "}") {
        return;  // malformed; let the scope logic see it
      }
      ++i_;
    }
  }

  void ParseTopLevel() {
    const std::string& t = Text(i_);
    if (toks_[i_].kind == TokenKind::kDirective) {
      // Consume the directive's whole line (`#ifndef GUARD_H_` leaves the
      // macro name as a plain identifier that must not reach the
      // declaration scanner).
      int line = toks_[i_].line;
      ++i_;
      while (i_ < toks_.size() && toks_[i_].line == line) {
        ++i_;
      }
      return;
    }
    if (t == "namespace") {
      ++i_;
      while (i_ < toks_.size() && Text(i_) != "{" && Text(i_) != ";" && Text(i_) != "=") {
        ++i_;
      }
      if (Text(i_) == "{") {
        scopes_.push_back({Frame::kNamespace, ""});
        ++i_;
      } else {
        SkipToSemicolon();  // namespace alias / malformed
      }
      return;
    }
    if (t == "template") {
      ++i_;
      if (Text(i_) == "<") {
        i_ = SkipAngles(i_);
      }
      return;
    }
    if (t == "class" || t == "struct" || t == "union") {
      ParseRecord();
      return;
    }
    if (t == "enum") {
      ++i_;
      if (Text(i_) == "class" || Text(i_) == "struct") {
        ++i_;
      }
      while (i_ < toks_.size() && Text(i_) != "{" && Text(i_) != ";") {
        ++i_;
      }
      if (Text(i_) == "{") {
        i_ = SkipBalanced(i_);
      }
      return;
    }
    if (t == "using" || t == "typedef" || t == "friend" || t == "static_assert") {
      SkipToSemicolon();
      return;
    }
    if (t == "public" || t == "protected" || t == "private") {
      ++i_;
      if (Text(i_) == ":") {
        ++i_;
      }
      return;
    }
    if (t == "{") {
      scopes_.push_back({Frame::kBlock, ""});
      ++i_;
      return;
    }
    if (t == "}") {
      if (!scopes_.empty()) {
        scopes_.pop_back();
      }
      ++i_;
      if (Text(i_) == ";") {
        ++i_;
      }
      return;
    }
    ParseDeclaration();
  }

  // `class X [final] [: bases] { ... }` — pushes a class frame; everything
  // else (`class X;`, `class X* p`, elaborated uses) is skipped token-wise.
  void ParseRecord() {
    ++i_;  // class/struct/union
    while (Text(i_) == "[" || Text(i_) == "alignas") {
      i_ = Text(i_) == "[" ? SkipBalanced(i_) : SkipBalanced(i_ + 1);
    }
    if (!IsIdentTok(i_)) {
      return;  // anonymous struct — treat `{` via top-level
    }
    std::string name = Text(i_);
    int line = toks_[i_].line;
    ++i_;
    if (Text(i_) == "final") {
      ++i_;
    }
    if (Text(i_) == ":") {
      while (i_ < toks_.size() && Text(i_) != "{" && Text(i_) != ";") {
        if (Text(i_) == "<") {
          i_ = SkipAngles(i_);
          continue;
        }
        ++i_;
      }
    }
    if (Text(i_) != "{") {
      return;  // forward declaration or elaborated type use
    }
    ++i_;
    scopes_.push_back({Frame::kClass, name});
    if (model_.records.find(name) == model_.records.end()) {
      RecordInfo record;
      record.name = name;
      record.file = file_index_;
      record.line = line;
      model_.records[name] = std::move(record);
    }
  }

  // Parses one declaration at i_: a function (with optional body) or, in a
  // class scope, a field. Anything unclassifiable is skipped to the next
  // ';' or balanced group.
  void ParseDeclaration() {
    size_t start = i_;
    size_t name_idx = static_cast<size_t>(-1);
    bool is_operator = false;
    size_t j = i_;
    // Scan the decl head for `ident (`, ';', '=' or '{' at depth 0.
    while (j < toks_.size()) {
      const std::string& t = Text(j);
      if (t == "<") {
        j = SkipAngles(j);
        continue;
      }
      if (t == "operator") {
        // operator+(...) — consume the symbol tokens up to '('.
        size_t k = j + 1;
        while (k < toks_.size() && Text(k) != "(" && Text(k) != ";") {
          ++k;
        }
        if (Text(k) == "(" && Text(k + 1) == ")" && Text(k + 2) == "(") {
          k += 2;  // operator()(...)
        }
        name_idx = j;
        is_operator = true;
        j = k;
        break;
      }
      if (t == "(") {
        if (j > start && IsIdentTok(j - 1) && !IsKeyword(Text(j - 1)) &&
            !IsTypeKeyword(Text(j - 1)) && !IsDeclNoise(Text(j - 1))) {
          name_idx = j - 1;
        }
        break;
      }
      if (t == ";" || t == "=" || t == "{" || t == "}") {
        break;
      }
      ++j;
    }

    if (name_idx == static_cast<size_t>(-1) || j >= toks_.size() || Text(j) != "(") {
      // Not a function: a field (class scope) or a variable/junk.
      if (!scopes_.empty() && scopes_.back().kind == Frame::kClass) {
        ParseField(start);
      } else {
        SkipToSemicolon();
      }
      return;
    }

    FunctionInfo fn;
    fn.file = file_index_;
    fn.line = toks_[name_idx].line;
    fn.col = toks_[name_idx].col;
    fn.bare_name = is_operator ? "operator" : Text(name_idx);
    if (name_idx >= 1 && Text(name_idx - 1) == "~") {
      fn.bare_name = "~" + fn.bare_name;
    }
    // Explicit qualification `Class::Name(` wins; otherwise the innermost
    // class scope qualifies the name.
    if (!is_operator && name_idx >= 2 && Text(name_idx - 1) == "::" &&
        IsIdentTok(name_idx - 2)) {
      fn.class_name = Text(name_idx - 2);
    } else {
      fn.class_name = CurrentClass();
    }
    fn.qualified_name =
        fn.class_name.empty() ? fn.bare_name : fn.class_name + "::" + fn.bare_name;

    size_t params_end = SkipBalanced(j);  // past ')'
    ParseParams(j + 1, params_end - 1, fn.params);
    i_ = params_end;

    // Qualifier region up to the body, a terminator, or something that
    // proves this was not a function after all.
    while (i_ < toks_.size()) {
      const std::string& t = Text(i_);
      if (t == "const" || t == "noexcept" || t == "override" || t == "final" ||
          t == "&" || t == "mutable" || t == "volatile" || t == "try") {
        ++i_;
        if (Text(i_ - 1) == "noexcept" && Text(i_) == "(") {
          i_ = SkipBalanced(i_);
        }
        continue;
      }
      if (t == "->") {  // trailing return type
        ++i_;
        while (i_ < toks_.size() && Text(i_) != "{" && Text(i_) != ";") {
          if (Text(i_) == "<") {
            i_ = SkipAngles(i_);
            continue;
          }
          ++i_;
        }
        continue;
      }
      if (t == ":") {  // constructor initializer list
        ++i_;
        while (i_ < toks_.size()) {
          if (Text(i_) == "(" || Text(i_) == "[") {
            i_ = SkipBalanced(i_);
            continue;
          }
          if (Text(i_) == "{") {
            // `member_{value}` braces follow an identifier (or a template
            // closer); the body brace follows ')' / '}' / the list itself.
            if (i_ > 0 && (IsIdentTok(i_ - 1) || Text(i_ - 1) == ">")) {
              i_ = SkipBalanced(i_);
              continue;
            }
            break;  // function body
          }
          ++i_;
        }
        continue;
      }
      if (t == "=") {  // = 0; / = default; / = delete;
        SkipToSemicolon();
        Register(std::move(fn));
        return;
      }
      if (t == ";") {
        ++i_;
        Register(std::move(fn));
        return;
      }
      if (t == "{") {
        size_t body_close = SkipBalanced(i_) - 1;
        fn.body_begin = i_ + 1;
        fn.body_end = std::min(body_close, toks_.size());
        fn.has_body = fn.body_end > fn.body_begin;
        i_ = std::min(body_close + 1, toks_.size());
        Register(std::move(fn));
        return;
      }
      // Unexpected (a call at block scope, a macro, an initializer):
      // not a declaration we understand.
      SkipToSemicolon();
      return;
    }
    Register(std::move(fn));
  }

  void Register(FunctionInfo fn) {
    int fn_index = static_cast<int>(file_->functions.size());
    model_.by_qualified[fn.qualified_name].push_back({file_index_, fn_index});
    if (!fn.class_name.empty()) {
      model_.by_bare[fn.bare_name].push_back({file_index_, fn_index});
    }
    file_->functions.push_back(std::move(fn));
  }

  // Parses `[l, r)` as a comma-separated parameter list.
  void ParseParams(size_t l, size_t r, std::vector<TypedName>& out) {
    size_t item = l;
    int depth = 0;
    for (size_t j = l; j <= r && j < toks_.size(); ++j) {
      const std::string& t = j == r ? std::string(",") : Text(j);
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
      } else if (t == ")" || t == "]" || t == "}") {
        --depth;
      } else if (t == "<") {
        ++depth;
      } else if (t == ">") {
        --depth;
      } else if (t == "," && depth == 0) {
        if (j > item) {
          TypedName param = ParseTypedName(item, j);
          if (!param.type_idents.empty() || !param.name.empty()) {
            out.push_back(std::move(param));
          }
        }
        item = j + 1;
      }
    }
  }

  // Parses a typed-name range: `const std::string& domain`,
  // `std::vector<Cookie> jar_`, `char buf[8]`, `ByteSpan` (unnamed).
  TypedName ParseTypedName(size_t l, size_t r) {
    TypedName out;
    int depth = 0;
    std::vector<size_t> top_idents;
    std::vector<std::string> all_idents;
    size_t limit = r;
    for (size_t j = l; j < limit && j < toks_.size(); ++j) {
      const std::string& t = Text(j);
      if (t == "=" && depth == 0) {
        limit = j;  // default argument / initializer: not part of the type
        break;
      }
      if (t == "[" && depth == 0) {
        limit = j;  // array extent follows the name
        break;
      }
      if (t == "(" || t == "{") {
        depth += 1;
        continue;
      }
      if (t == ")" || t == "}") {
        depth -= 1;
        continue;
      }
      if (t == "<") { ++depth; continue; }
      if (t == ">") { --depth; continue; }
      if (toks_[j].kind != TokenKind::kIdentifier) {
        if (depth == 0 && t == "&") out.is_ref = true;
        if (depth == 0 && t == "*") out.is_pointer = true;
        continue;
      }
      if (t == "const") {
        if (depth == 0) out.is_const = true;
        continue;
      }
      if (IsDeclNoise(t)) {
        continue;
      }
      if (depth == 0) {
        top_idents.push_back(j);
      }
      all_idents.push_back(t);
    }
    // Two or more top-level identifiers: the last is the declared name; the
    // rest (minus that one occurrence) are the type.
    if (top_idents.size() >= 2) {
      out.name = Text(top_idents.back());
      bool skipped_name = false;
      for (auto it = all_idents.rbegin(); it != all_idents.rend(); ++it) {
        if (!skipped_name && *it == out.name) {
          skipped_name = true;
          continue;
        }
        if (!IsTypeKeyword(*it)) {
          out.type_idents.push_back(*it);
        }
      }
      std::reverse(out.type_idents.begin(), out.type_idents.end());
      // Keep type keywords visible when nothing else names the type
      // (`unsigned x` -> type "unsigned").
      if (out.type_idents.empty()) {
        for (size_t idx : top_idents) {
          if (Text(idx) != out.name) {
            out.type_idents.push_back(Text(idx));
          }
        }
      }
    } else {
      for (const std::string& ident : all_idents) {
        if (!IsTypeKeyword(ident)) {
          out.type_idents.push_back(ident);
        }
      }
    }
    return out;
  }

  // A class-scope statement with no call shape: a field.
  void ParseField(size_t start) {
    size_t end = start;
    int depth = 0;
    while (end < toks_.size()) {
      const std::string& t = Text(end);
      if (t == "<") ++depth;
      else if (t == ">") --depth;
      else if (t == "(" || t == "{" || t == "[") {
        end = SkipBalanced(end);
        continue;
      }
      else if ((t == ";" || t == "=") && depth <= 0) break;
      else if (t == "}") break;
      ++end;
    }
    TypedName field = ParseTypedName(start, end);
    if (!field.name.empty()) {
      auto it = model_.records.find(scopes_.back().class_name);
      if (it != model_.records.end()) {
        it->second.fields.push_back(std::move(field));
      }
    }
    i_ = end;
    SkipToSemicolon();
  }

  // --- declassify markers -------------------------------------------------

  struct Marker {
    std::vector<std::string> rules;
    int line = 1;
    int end_line = 1;
    bool has_reason = false;
  };

  // `// nymlint:declassify(rule-a, rule-b): reason` — same shape as the
  // allow protocol; honored only as the comment's first content.
  static bool ParseMarker(const Token& comment, Marker& out) {
    const std::string& text = comment.text;
    size_t pos = text.rfind("//", 0) == 0 || text.rfind("/*", 0) == 0 ? 2 : 0;
    pos = text.find_first_not_of(" \t", pos);
    const std::string kTag = "nymlint:declassify";
    if (pos == std::string::npos || text.compare(pos, kTag.size(), kTag) != 0) {
      return false;
    }
    size_t cursor = pos + kTag.size();
    if (cursor >= text.size() || text[cursor] != '(') {
      return false;
    }
    size_t close = text.find(')', cursor);
    if (close == std::string::npos) {
      return false;
    }
    out.line = comment.line;
    out.end_line =
        comment.line + static_cast<int>(std::count(text.begin(), text.end(), '\n'));
    std::string list = text.substr(cursor + 1, close - cursor - 1);
    size_t item = 0;
    while (item <= list.size()) {
      size_t comma = list.find(',', item);
      size_t len = comma == std::string::npos ? std::string::npos : comma - item;
      std::string rule = list.substr(item, len);
      size_t b = rule.find_first_not_of(" \t");
      size_t e = rule.find_last_not_of(" \t");
      if (b != std::string::npos) {
        out.rules.push_back(rule.substr(b, e - b + 1));
      }
      if (comma == std::string::npos) {
        break;
      }
      item = comma + 1;
    }
    std::string reason = text.substr(close + 1);
    if (reason.size() >= 2 && reason.compare(reason.size() - 2, 2, "*/") == 0) {
      reason.resize(reason.size() - 2);
    }
    size_t begin = reason.find_first_not_of(" \t:-");
    out.has_reason = begin != std::string::npos && reason.size() - begin >= 3;
    return true;
  }

  void AttachDeclassifyMarkers(FileModel& out) {
    if (input_.all == nullptr) {
      return;
    }
    for (const Token& token : *input_.all) {
      if (token.kind != TokenKind::kComment) {
        continue;
      }
      Marker marker;
      if (!ParseMarker(token, marker)) {
        continue;
      }
      if (marker.rules.empty()) {
        model_.marker_issues.push_back(
            {input_.path, marker.line, "nymlint:declassify(...) names no rule"});
        continue;
      }
      bool bad_rule = false;
      for (const std::string& rule : marker.rules) {
        if (!IsKnownRule(rule)) {
          model_.marker_issues.push_back(
              {input_.path, marker.line,
               "nymlint:declassify names unknown rule '" + rule + "'"});
          bad_rule = true;
        }
      }
      if (!marker.has_reason) {
        model_.marker_issues.push_back(
            {input_.path, marker.line,
             "nymlint:declassify must carry a written reason: "
             "// nymlint:declassify(rule): why scrubbing here is sound"});
        continue;
      }
      if (bad_rule) {
        continue;
      }
      // Attach to the first function declared on or just below the marker.
      FunctionInfo* best = nullptr;
      for (FunctionInfo& fn : out.functions) {
        if (fn.line >= marker.line && fn.line <= marker.end_line + 3 &&
            (best == nullptr || fn.line < best->line)) {
          best = &fn;
        }
      }
      if (best == nullptr) {
        model_.marker_issues.push_back(
            {input_.path, marker.line,
             "nymlint:declassify marker attaches to no function declaration"});
        continue;
      }
      best->declassifies.insert(marker.rules.begin(), marker.rules.end());
    }
  }

  const ModelInput& input_;
  int file_index_;
  SymbolModel& model_;
  const std::vector<Token>& toks_;
  FileModel* file_ = nullptr;
  size_t i_ = 0;
  std::vector<Frame> scopes_;
};

}  // namespace

const RecordInfo* SymbolModel::FindRecord(const std::string& name) const {
  auto it = records.find(name);
  return it == records.end() ? nullptr : &it->second;
}

SymbolModel BuildModel(const std::vector<ModelInput>& inputs) {
  SymbolModel model;
  model.files.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    FileParser parser(inputs[i], static_cast<int>(i), model);
    model.files.push_back(parser.Run());
  }
  return model;
}

}  // namespace nymlint
