// nymlint's lexer: a single-pass C++ tokenizer that is exact about the three
// things a textual linter must never get wrong — comments, string literals
// (including raw strings), and preprocessor directives. Everything else is
// deliberately coarse: the rule engine matches token shapes, not grammar.
//
// Self-contained by design (no libclang): nymlint must build on every CI
// image that can build the simulator itself.
#ifndef TOOLS_NYMLINT_LEXER_H_
#define TOOLS_NYMLINT_LEXER_H_

#include <string>
#include <vector>

namespace nymlint {

enum class TokenKind {
  kIdentifier,   // identifiers and keywords
  kNumber,       // numeric literals (digit separators handled)
  kString,       // "...", R"(...)", u8"...", and <header> after #include
  kCharLiteral,  // '...'
  kPunct,        // operators/punctuation; "::" and "->" are single tokens
  kDirective,    // "#include", "#ifndef", ... (the '#' plus directive word)
  kComment,      // full text of a // or /* */ comment
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 1;  // 1-based line of the token's first character
  int col = 1;   // 1-based column of the token's first character
};

// Lexes C++ source into tokens. Comments appear in-stream as kComment (the
// suppression scanner needs them); `#include <name>` header-names are folded
// into one kString token "<name>" so banned-header checks never mistake the
// contents for code. Unterminated literals are tolerated (the token ends at
// end of line/file) so one broken file cannot wedge a whole lint run.
std::vector<Token> Lex(const std::string& source);

// The token stream with comments removed — what rule matchers iterate.
std::vector<Token> SignificantTokens(const std::vector<Token>& tokens);

}  // namespace nymlint

#endif  // TOOLS_NYMLINT_LEXER_H_
