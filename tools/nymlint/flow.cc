#include "tools/nymlint/flow.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <set>

namespace nymlint {
namespace {

constexpr const char* kTaintRule = "nymflow-identity-taint";
constexpr const char* kShardRule = "nymflow-shard-confinement";
constexpr size_t kMaxSteps = 12;     // SARIF code flows stay readable
constexpr int kFixpointCap = 12;     // monotone summaries converge far sooner

// Container mutators that make the receiver carry whatever was inserted.
constexpr std::array<const char*, 10> kInsertMethods = {
    "push_back", "emplace_back", "push_front", "insert", "emplace",
    "append",    "push",         "Append",     "Add",    "assign"};

bool InInsertSet(const std::string& name) {
  for (const char* entry : kInsertMethods) {
    if (name == entry) {
      return true;
    }
  }
  return false;
}

// The taint value of one expression/variable. `param_mask` tracks which of
// the enclosing function's parameters the value derives from (for
// summaries); `intrinsic` means it derives from a registry source.
struct Taint {
  bool intrinsic = false;
  uint32_t param_mask = 0;
  std::string origin;           // "field 'cookie'", "BrowserModel::CookieFor", ...
  std::vector<FlowStep> steps;  // provenance chain of the intrinsic part

  bool any() const { return intrinsic || param_mask != 0; }

  void Merge(const Taint& other) {
    if (other.intrinsic && !intrinsic) {
      intrinsic = true;
      origin = other.origin;
      steps = other.steps;
    }
    param_mask |= other.param_mask;
  }
};

void AppendStep(std::vector<FlowStep>& steps, FlowStep step) {
  if (steps.size() < kMaxSteps) {
    steps.push_back(std::move(step));
  }
}

// One function's interprocedural summary. Monotone under Merge, so the
// whole-program fixpoint terminates.
struct Summary {
  bool returns_intrinsic = false;
  std::string return_origin;
  std::vector<FlowStep> return_steps;
  uint32_t param_to_return = 0;
  uint32_t param_to_sink = 0;
  std::map<int, std::vector<FlowStep>> param_sink_steps;
  std::map<int, std::string> param_sink_name;
  // (shard-root param index, exposed param index): calling this function
  // parks the exposed argument inside the shard argument's state.
  std::set<std::pair<int, int>> shard_exposures;
  bool is_declassifier = false;

  // Merge returns true when anything fixpoint-relevant changed.
  bool MergeFrom(const Summary& other) {
    bool changed = false;
    if (other.returns_intrinsic && !returns_intrinsic) {
      returns_intrinsic = true;
      return_origin = other.return_origin;
      return_steps = other.return_steps;
      changed = true;
    }
    if ((param_to_return | other.param_to_return) != param_to_return) {
      param_to_return |= other.param_to_return;
      changed = true;
    }
    if ((param_to_sink | other.param_to_sink) != param_to_sink) {
      param_to_sink |= other.param_to_sink;
      changed = true;
    }
    for (const auto& [index, steps] : other.param_sink_steps) {
      if (param_sink_steps.find(index) == param_sink_steps.end()) {
        param_sink_steps[index] = steps;
        auto name = other.param_sink_name.find(index);
        if (name != other.param_sink_name.end()) {
          param_sink_name[index] = name->second;
        }
      }
    }
    size_t before = shard_exposures.size();
    shard_exposures.insert(other.shard_exposures.begin(), other.shard_exposures.end());
    changed = changed || shard_exposures.size() != before;
    return changed;
  }
};

struct VarInfo {
  std::vector<std::string> type_idents;
  bool is_const = false;
  bool is_ref = false;
  bool is_pointer = false;
  int param_index = -1;  // >= 0 for parameters
};

struct Engine {
  const SymbolModel& model;
  const IdentityRegistry& reg;
  std::map<std::string, Summary> summaries;
  std::vector<FlowFinding>* findings = nullptr;  // non-null on report pass
  std::set<std::string> emitted;                 // finding dedupe keys
  size_t call_edges = 0;

  bool TypeIn(const std::vector<std::string>& idents, const std::set<std::string>& set) const {
    for (const std::string& ident : idents) {
      if (set.count(ident)) {
        return true;
      }
    }
    return false;
  }

  // A registry entry matches either as "Type::name" (resolved receiver) or
  // as a bare name the registry author declared receiver-independent.
  bool MatchEntry(const std::set<std::string>& entries, const std::string& bare,
                  const std::vector<std::string>& qualified) const {
    for (const std::string& candidate : qualified) {
      if (entries.count(candidate)) {
        return true;
      }
    }
    return entries.count(bare) > 0;
  }

  const Summary* FindSummary(const std::string& bare,
                             const std::vector<std::string>& qualified,
                             bool is_member_call) const {
    for (const std::string& candidate : qualified) {
      auto it = summaries.find(candidate);
      if (it != summaries.end()) {
        return &it->second;
      }
    }
    if (!is_member_call) {
      auto it = summaries.find(bare);
      if (it != summaries.end()) {
        return &it->second;
      }
    }
    return nullptr;
  }
};

class FunctionAnalyzer {
 public:
  FunctionAnalyzer(Engine& engine, const FileModel& file, const FunctionInfo& fn)
      : e_(engine), file_(file), fn_(fn), toks_(file.tokens) {}

  Summary Run() {
    SeedVars();
    // Two statement passes so taint established late in a loop body reaches
    // uses earlier in it.
    for (int pass = 0; pass < 2; ++pass) {
      size_t l = fn_.body_begin;
      for (size_t j = fn_.body_begin; j <= fn_.body_end; ++j) {
        const std::string& t = j < fn_.body_end ? toks_[j].text : std::string(";");
        if (t == ";" || t == "{" || t == "}") {
          if (j > l) {
            AnalyzeStatement(l, j);
          }
          l = j + 1;
        }
      }
    }
    FlushShardFindings();
    return result_;
  }

 private:
  const std::string& Text(size_t i) const {
    static const std::string kEmpty;
    return i < toks_.size() ? toks_[i].text : kEmpty;
  }
  bool IsIdentTok(size_t i) const {
    return i < toks_.size() && toks_[i].kind == TokenKind::kIdentifier;
  }

  FlowStep Site(size_t i, std::string note) const {
    return FlowStep{file_.path, toks_[i].line, toks_[i].col, std::move(note)};
  }

  void SeedVars() {
    // Fields of the enclosing class participate in receiver typing and
    // source-type checks.
    if (const RecordInfo* record = e_.model.FindRecord(fn_.class_name)) {
      for (const TypedName& field : record->fields) {
        VarInfo var;
        var.type_idents = field.type_idents;
        var.is_const = field.is_const;
        var.is_ref = field.is_ref;
        var.is_pointer = field.is_pointer;
        vars_[field.name] = var;
      }
    }
    for (size_t i = 0; i < fn_.params.size() && i < 31; ++i) {
      const TypedName& param = fn_.params[i];
      if (param.name.empty()) {
        continue;
      }
      VarInfo var;
      var.type_idents = param.type_idents;
      var.is_const = param.is_const;
      var.is_ref = param.is_ref;
      var.is_pointer = param.is_pointer;
      var.param_index = static_cast<int>(i);
      vars_[param.name] = var;
      Taint taint;
      taint.param_mask = 1u << i;
      if (e_.TypeIn(param.type_idents, e_.reg.source_types)) {
        taint.intrinsic = true;
        taint.origin = "identity type parameter '" + param.name + "'";
        AppendStep(taint.steps,
                   FlowStep{file_.path, fn_.line, fn_.col,
                            "parameter '" + param.name + "' carries an identity type"});
      }
      taint_[param.name] = taint;
    }
  }

  size_t MatchParen(size_t open, size_t limit) const {
    int depth = 0;
    for (size_t j = open; j < limit; ++j) {
      const std::string& t = Text(j);
      if (t == "(") {
        ++depth;
      } else if (t == ")") {
        if (--depth == 0) {
          return j;
        }
      }
    }
    return limit;
  }

  // --- statements ---------------------------------------------------------

  void AnalyzeStatement(size_t l, size_t r) {
    if (l >= r) {
      return;
    }
    if (Text(l) == "else") {
      AnalyzeStatement(l + 1, r);
      return;
    }
    // `if (T* v = expr)` init-declarations need the paren contents analyzed
    // as a statement of their own so `v` gets registered with its type.
    if (Text(l) == "if" || Text(l) == "while" || Text(l) == "switch") {
      size_t open = l + 1;
      if (Text(open) == "constexpr") {
        ++open;
      }
      if (Text(open) == "(") {
        size_t close = MatchParen(open, r);
        AnalyzeStatement(open + 1, close);
        if (close + 1 < r) {
          AnalyzeStatement(close + 1, r);
        }
        return;
      }
    }
    // Range-for: `for (T v : expr)` registers the loop variable with its
    // declared type and taints it from the range expression.
    if (Text(l) == "for" && Text(l + 1) == "(") {
      size_t close = MatchParen(l + 1, r);
      size_t colon = close;
      int depth = 0;
      for (size_t j = l + 2; j < close; ++j) {
        const std::string& t = Text(j);
        if (t == "(" || t == "[" || t == "{" || t == "<") {
          ++depth;
        } else if (t == ")" || t == "]" || t == "}" || t == ">") {
          --depth;
        } else if (t == ":" && depth == 0) {
          colon = j;
          break;
        }
      }
      if (colon < close) {
        TypedName decl = TypedNameFrom(l + 2, colon);
        Taint range = Eval(colon + 1, close);
        if (!decl.name.empty()) {
          RegisterLocal(decl, colon);
          if (range.any()) {
            taint_[decl.name].Merge(range);
          }
        }
      } else {
        AnalyzeStatement(l + 2, close);
      }
      if (close + 1 < r) {
        AnalyzeStatement(close + 1, r);
      }
      return;
    }
    if (Text(l) == "return") {
      Taint value = Eval(l + 1, r);
      if (value.intrinsic && !result_.returns_intrinsic) {
        result_.returns_intrinsic = true;
        result_.return_origin = value.origin;
        result_.return_steps = value.steps;
      }
      result_.param_to_return |= value.param_mask;
      return;
    }
    if (TryParenInitDecl(l, r)) {
      return;
    }
    // First top-level assignment operator, if any. The lexer emits "=="
    // as two "=" tokens, so comparisons are excluded by neighbors.
    int depth = 0;
    size_t assign = r;
    bool compound = false;
    for (size_t j = l; j < r; ++j) {
      const std::string& t = Text(j);
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
      } else if (t == ")" || t == "]" || t == "}") {
        --depth;
      } else if (t == "=" && depth == 0 && j > l) {
        const std::string& prev = Text(j - 1);
        const std::string& next = Text(j + 1);
        if (prev == "=" || prev == "!" || prev == "<" || prev == ">" || next == "=") {
          continue;
        }
        static constexpr std::array<const char*, 8> kCompound = {"+", "-", "*", "/",
                                                                 "%", "|", "&", "^"};
        compound = std::find(kCompound.begin(), kCompound.end(), prev) != kCompound.end();
        assign = j;
        break;
      }
    }
    if (assign == r) {
      Eval(l, r);
      return;
    }
    Taint rhs = Eval(assign + 1, r);
    size_t lhs_end = compound ? assign - 1 : assign;
    AssignTo(l, lhs_end, rhs, compound);
  }

  // `Type name(args);` declarations: constructor wiring. Registers the
  // variable, taints it from the constructor arguments, and treats a
  // shard-root construction as a shard context receiving its args.
  bool TryParenInitDecl(size_t l, size_t r) {
    size_t idents = 0;
    size_t name_idx = static_cast<size_t>(-1);
    size_t j = l;
    while (j < r) {
      const std::string& t = Text(j);
      if (toks_[j].kind == TokenKind::kIdentifier) {
        ++idents;
        name_idx = j;
        ++j;
        continue;
      }
      if (t == "::" || t == "&" || t == "*" || t == "const") {
        ++j;
        continue;
      }
      if (t == "<") {
        int depth = 0;
        while (j < r) {
          if (Text(j) == "<") ++depth;
          else if (Text(j) == ">" && --depth == 0) { ++j; break; }
          ++j;
        }
        continue;
      }
      break;
    }
    if (j >= r || Text(j) != "(" || idents < 2 || name_idx != j - 1) {
      return false;
    }
    TypedName decl = TypedNameFrom(l, j);
    if (decl.name.empty()) {
      return false;
    }
    RegisterLocal(decl, name_idx);
    size_t close = MatchParen(j, r);
    Taint args = Eval(j + 1, close);
    // Constructor args land in the object.
    if (args.any()) {
      taint_[decl.name].Merge(args);
    }
    VarInfo& var = vars_[decl.name];
    if (e_.TypeIn(var.type_idents, e_.reg.shard_roots)) {
      // `Simulation shard_a(&state)` — args are reachable from the shard.
      ExposeArgsToContext(decl.name, j + 1, close, name_idx);
    }
    return true;
  }

  void RegisterLocal(const TypedName& decl, size_t site) {
    VarInfo var;
    var.type_idents = decl.type_idents;
    var.is_const = decl.is_const;
    var.is_ref = decl.is_ref;
    var.is_pointer = decl.is_pointer;
    vars_[decl.name] = var;
    Taint taint;
    if (e_.TypeIn(decl.type_idents, e_.reg.source_types)) {
      taint.intrinsic = true;
      taint.origin = "identity type '" + decl.type_idents.front() + "'";
      AppendStep(taint.steps,
                 Site(site, "'" + decl.name + "' declared with identity type"));
    }
    taint_[decl.name] = taint;
  }

  // Lightweight re-parse of a declaration head (mirrors the model's
  // TypedName extraction, locally, for statement-level declarations).
  TypedName TypedNameFrom(size_t l, size_t r) {
    TypedName out;
    int depth = 0;
    std::vector<size_t> top_idents;
    for (size_t j = l; j < r; ++j) {
      const std::string& t = Text(j);
      if (t == "<") { ++depth; continue; }
      if (t == ">") { --depth; continue; }
      if (toks_[j].kind != TokenKind::kIdentifier) {
        if (depth == 0 && t == "&") out.is_ref = true;
        if (depth == 0 && t == "*") out.is_pointer = true;
        continue;
      }
      if (t == "const") {
        if (depth == 0) out.is_const = true;
        continue;
      }
      if (t == "std" || t == "constexpr" || t == "static" || t == "auto" ||
          t == "mutable") {
        continue;
      }
      if (depth == 0) {
        top_idents.push_back(j);
      }
      out.type_idents.push_back(t);
    }
    if (top_idents.size() >= 2) {
      out.name = Text(top_idents.back());
      out.type_idents.erase(
          std::remove(out.type_idents.begin(), out.type_idents.end(), out.name),
          out.type_idents.end());
    }
    return out;
  }

  void AssignTo(size_t l, size_t r, const Taint& rhs, bool compound) {
    // Member assignment: `obj.field = rhs` taints the whole object.
    for (size_t j = l; j < r; ++j) {
      if ((Text(j) == "." || Text(j) == "->") && j > l && IsIdentTok(j - 1)) {
        const std::string& base = Text(l);
        if (rhs.any() && toks_[l].kind == TokenKind::kIdentifier) {
          Taint merged = rhs;
          AppendStep(merged.steps,
                     Site(j - 1, "stored into field of '" + base + "'"));
          taint_[base].Merge(merged);
        }
        return;
      }
    }
    // Index assignment `x[i] = rhs` merges; find the name before '['.
    size_t name_idx = static_cast<size_t>(-1);
    bool indexed = false;
    for (size_t j = l; j < r; ++j) {
      if (Text(j) == "[") {
        indexed = true;
        break;
      }
      if (toks_[j].kind == TokenKind::kIdentifier && Text(j) != "const") {
        name_idx = j;
      }
    }
    if (name_idx == static_cast<size_t>(-1)) {
      return;
    }
    // Declaration when more than one top-level identifier precedes the name.
    TypedName decl = TypedNameFrom(l, indexed ? name_idx + 1 : r);
    if (!decl.name.empty() && vars_.find(decl.name) == vars_.end()) {
      RegisterLocal(decl, name_idx);
    }
    const std::string& target =
        decl.name.empty() ? Text(name_idx) : decl.name;
    if (compound || indexed) {
      if (rhs.any()) {
        taint_[target].Merge(rhs);
      }
      return;
    }
    Taint value = rhs;
    // Keep intrinsic source-typed variables tainted even across
    // reassignment — the type itself carries identity.
    auto var = vars_.find(target);
    if (var != vars_.end() && e_.TypeIn(var->second.type_idents, e_.reg.source_types)) {
      value.intrinsic = true;
      if (value.origin.empty()) {
        value.origin = "identity type '" + var->second.type_idents.front() + "'";
      }
    }
    if (var != vars_.end() && var->second.param_index >= 0 && var->second.is_ref) {
      value.param_mask |= 1u << var->second.param_index;
    }
    taint_[target] = value;
  }

  // --- expressions --------------------------------------------------------

  Taint Eval(size_t l, size_t r) {
    Taint out;
    size_t j = l;
    while (j < r) {
      if (!IsIdentTok(j)) {
        ++j;
        continue;
      }
      if (Text(j + 1) == "(" && j + 1 < r) {
        j = EvalCall(j, r, out);
        continue;
      }
      const std::string& name = Text(j);
      const std::string& prev = j > 0 ? Text(j - 1) : std::string();
      if (prev == "." || prev == "->") {
        // Field access `base.field`.
        if (e_.reg.source_fields.count(name)) {
          Taint field;
          field.intrinsic = true;
          field.origin = "field '" + name + "'";
          AppendStep(field.steps, Site(j, "reads identity field '" + name + "'"));
          out.Merge(field);
        }
        ++j;
        continue;
      }
      auto taint = taint_.find(name);
      if (taint != taint_.end()) {
        out.Merge(taint->second);
      }
      auto var = vars_.find(name);
      if (var != vars_.end() &&
          e_.TypeIn(var->second.type_idents, e_.reg.source_types)) {
        Taint typed;
        typed.intrinsic = true;
        typed.origin = "identity type '" + var->second.type_idents.front() + "'";
        AppendStep(typed.steps, Site(j, "'" + name + "' carries an identity type"));
        out.Merge(typed);
      }
      if (e_.reg.source_fields.count(name) && var == vars_.end()) {
        // Unqualified use of a registered identity field (own member).
        Taint field;
        field.intrinsic = true;
        field.origin = "field '" + name + "'";
        AppendStep(field.steps, Site(j, "reads identity field '" + name + "'"));
        out.Merge(field);
      }
      ++j;
    }
    return out;
  }

  // Resolves the receiver's type name for `base.name()` / `base->name()`.
  std::string ReceiverType(const std::string& base, bool arrow) const {
    auto var = vars_.find(base);
    if (var == vars_.end() || var->second.type_idents.empty()) {
      return "";
    }
    const std::vector<std::string>& idents = var->second.type_idents;
    if (arrow && idents.size() > 1 &&
        (idents[0] == "unique_ptr" || idents[0] == "shared_ptr" || idents[0] == "optional")) {
      return idents[1];
    }
    return idents[0];
  }

  // Evaluates the call whose name token is at `i`; merges the call's value
  // into `out` and returns the index to resume walking at.
  size_t EvalCall(size_t i, size_t limit, Taint& out) {
    const std::string& name = Text(i);
    size_t open = i + 1;
    size_t close = MatchParen(open, limit);

    // Receiver / qualifier.
    std::string recv_name;
    bool member_call = false;
    std::vector<std::string> qualified;
    const std::string& prev = i > 0 ? Text(i - 1) : std::string();
    if (prev == "." || prev == "->") {
      member_call = true;
      if (i >= 2 && IsIdentTok(i - 2)) {
        recv_name = Text(i - 2);
        if (recv_name == "this") {
          if (!fn_.class_name.empty()) {
            qualified.push_back(fn_.class_name + "::" + name);
          }
          recv_name.clear();
        } else {
          std::string type = ReceiverType(recv_name, prev == "->");
          if (!type.empty()) {
            qualified.push_back(type + "::" + name);
          }
        }
      }
    } else if (prev == "::" && i >= 2 && IsIdentTok(i - 2)) {
      qualified.push_back(Text(i - 2) + "::" + name);
    } else {
      if (!fn_.class_name.empty()) {
        qualified.push_back(fn_.class_name + "::" + name);
      }
      qualified.push_back(name);
    }

    // Arguments: top-level comma split.
    struct Arg {
      size_t l, r;
      std::string bare;  // non-empty when the arg is `x` or `&x`
      Taint taint;
    };
    std::vector<Arg> args;
    {
      int depth = 0;
      size_t item = open + 1;
      for (size_t j = open + 1; j <= close; ++j) {
        const std::string& t = j == close ? std::string(",") : Text(j);
        if (t == "(" || t == "[" || t == "{") {
          ++depth;
        } else if (t == ")" || t == "]" || t == "}") {
          --depth;
        } else if (t == "," && depth == 0) {
          if (j > item) {
            Arg arg{item, j, "", Taint{}};
            size_t first = item;
            if (Text(first) == "&") {
              ++first;
            }
            if (first + 1 == j && IsIdentTok(first)) {
              arg.bare = Text(first);
            }
            args.push_back(arg);
          }
          item = j + 1;
        }
      }
    }
    for (Arg& arg : args) {
      arg.taint = Eval(arg.l, arg.r);
    }

    Taint recv_taint;
    if (!recv_name.empty()) {
      auto it = taint_.find(recv_name);
      if (it != taint_.end()) {
        recv_taint = it->second;
      }
    }

    // 1) Declassifier: result is scrubbed, arguments are consumed.
    const Summary* summary = e_.FindSummary(name, qualified, member_call);
    if (e_.MatchEntry(e_.reg.declassifiers, member_call ? "" : name, qualified) ||
        e_.reg.declassifiers.count(name) > 0 ||
        (summary != nullptr && summary->is_declassifier)) {
      return close + 1;
    }

    // 2) Sink: tainted data must not arrive here.
    if (e_.MatchEntry(e_.reg.sinks, name, qualified)) {
      std::string sink_name = qualified.empty() ? name : qualified.front();
      for (size_t a = 0; a < args.size(); ++a) {
        CheckSinkValue(args[a].taint, i, sink_name);
      }
      CheckSinkValue(recv_taint, i, sink_name);
      return close + 1;
    }

    // 3) Source function: the result is identity.
    if (e_.MatchEntry(e_.reg.source_fns, member_call ? "" : name, qualified) ||
        e_.reg.source_fns.count(name) > 0) {
      std::string src = qualified.empty() ? name : qualified.front();
      Taint source;
      source.intrinsic = true;
      source.origin = "call to " + src;
      AppendStep(source.steps, Site(i, "identity source " + src + "()"));
      out.Merge(source);
      return close + 1;
    }

    // 4) Known function: apply its summary.
    if (summary != nullptr) {
      if (e_.findings != nullptr) {
        ++e_.call_edges;
      }
      std::string callee = qualified.empty() ? name : qualified.front();
      if (summary->returns_intrinsic) {
        Taint returned;
        returned.intrinsic = true;
        returned.origin = summary->return_origin;
        returned.steps = summary->return_steps;
        AppendStep(returned.steps, Site(i, "returned by " + callee + "()"));
        out.Merge(returned);
      }
      for (size_t a = 0; a < args.size() && a < 31; ++a) {
        const Taint& arg = args[a].taint;
        if (!arg.any()) {
          continue;
        }
        uint32_t bit = 1u << a;
        if (summary->param_to_sink & bit) {
          auto inner = summary->param_sink_steps.find(static_cast<int>(a));
          auto inner_name = summary->param_sink_name.find(static_cast<int>(a));
          std::string sink =
              inner_name != summary->param_sink_name.end() ? inner_name->second : callee;
          if (arg.intrinsic) {
            std::vector<FlowStep> steps = arg.steps;
            AppendStep(steps, Site(i, "passed into " + callee + "()"));
            if (inner != summary->param_sink_steps.end()) {
              for (const FlowStep& step : inner->second) {
                AppendStep(steps, step);
              }
            }
            EmitTaintFinding(i, sink, arg.origin, steps);
          }
          if (arg.param_mask != 0) {
            for (int p = 0; p < 31; ++p) {
              if ((arg.param_mask >> p) & 1u) {
                result_.param_to_sink |= 1u << p;
                if (result_.param_sink_steps.find(p) == result_.param_sink_steps.end()) {
                  std::vector<FlowStep> steps;
                  AppendStep(steps, Site(i, "passed into " + callee + "()"));
                  if (inner != summary->param_sink_steps.end()) {
                    for (const FlowStep& step : inner->second) {
                      AppendStep(steps, step);
                    }
                  }
                  result_.param_sink_steps[p] = std::move(steps);
                  result_.param_sink_name[p] = sink;
                }
              }
            }
          }
        }
        if (summary->param_to_return & bit) {
          Taint through = arg;
          if (through.intrinsic) {
            AppendStep(through.steps, Site(i, "flows through " + callee + "()"));
          }
          out.Merge(through);
        }
      }
      ApplyShardSummary(*summary, args_view(args), i);
      ShardExposeDirect(recv_name, args_view(args), i);
      return close + 1;
    }

    // 5) Unknown callee: conservative propagation.
    Taint merged = recv_taint;
    for (const Arg& arg : args) {
      merged.Merge(arg.taint);
    }
    if (merged.any()) {
      out.Merge(merged);
    }
    if (!recv_name.empty() && InInsertSet(name)) {
      Taint inserted;
      for (const Arg& arg : args) {
        inserted.Merge(arg.taint);
      }
      if (inserted.any()) {
        AppendStep(inserted.steps,
                   Site(i, "inserted into container '" + recv_name + "'"));
        taint_[recv_name].Merge(inserted);
      }
    }
    ShardExposeDirect(recv_name, args_view(args), i);
    return close + 1;
  }

  struct ArgView {
    std::string bare;
    bool is_addr = false;
  };
  template <typename Args>
  std::vector<ArgView> args_view(const Args& args) const {
    std::vector<ArgView> out;
    for (const auto& arg : args) {
      ArgView view;
      view.bare = arg.bare;
      view.is_addr = arg.l < toks_.size() && Text(arg.l) == "&";
      out.push_back(view);
    }
    return out;
  }

  void CheckSinkValue(const Taint& taint, size_t site, const std::string& sink) {
    if (taint.intrinsic) {
      std::vector<FlowStep> steps = taint.steps;
      AppendStep(steps, Site(site, "reaches sink " + sink + "()"));
      EmitTaintFinding(site, sink, taint.origin, steps);
    }
    if (taint.param_mask != 0) {
      for (int p = 0; p < 31; ++p) {
        if ((taint.param_mask >> p) & 1u) {
          result_.param_to_sink |= 1u << p;
          if (result_.param_sink_steps.find(p) == result_.param_sink_steps.end()) {
            std::vector<FlowStep> steps;
            AppendStep(steps, Site(site, "reaches sink " + sink + "()"));
            result_.param_sink_steps[p] = std::move(steps);
            result_.param_sink_name[p] = sink;
          }
        }
      }
    }
  }

  void EmitTaintFinding(size_t site, const std::string& sink, const std::string& origin,
                        std::vector<FlowStep> steps) {
    if (e_.findings == nullptr) {
      return;
    }
    std::string source = origin.empty() ? "identity value" : origin;
    FlowFinding finding;
    finding.diag = Diagnostic{
        file_.path, toks_[site].line, toks_[site].col, kTaintRule,
        "identity-tainted value (" + source + ") reaches cross-boundary sink " + sink +
            "(); route it through a src/sanitize declassifier or sever the path"};
    finding.fingerprint = std::string(kTaintRule) + "|" + file_.path + "|" +
                          fn_.qualified_name + "|" + source + "|" + sink;
    finding.steps = std::move(steps);
    std::string key = finding.fingerprint + "|" + std::to_string(finding.diag.line) + "|" +
                      std::to_string(finding.diag.col);
    if (e_.emitted.insert(key).second) {
      e_.findings->push_back(std::move(finding));
    }
  }

  // --- shard confinement ----------------------------------------------------

  bool ShardSafe(const VarInfo& var) const {
    return e_.TypeIn(var.type_idents, e_.reg.channel_types) ||
           e_.TypeIn(var.type_idents, e_.reg.shared_safe) ||
           e_.TypeIn(var.type_idents, e_.reg.shard_roots) || var.is_const;
  }

  bool SharingArg(const ArgView& view, const VarInfo& var) const {
    return view.is_addr || var.is_pointer || (var.is_ref && !var.is_const);
  }

  void Expose(const std::string& object, const std::string& context, size_t site) {
    auto var = vars_.find(object);
    if (var == vars_.end() || ShardSafe(var->second)) {
      return;
    }
    auto ctx_var = vars_.find(context);
    if (ctx_var != vars_.end() && ctx_var->second.param_index >= 0 &&
        var->second.param_index >= 0) {
      result_.shard_exposures.insert(
          {ctx_var->second.param_index, var->second.param_index});
    }
    auto& sites = exposures_[object];
    if (sites.find(context) == sites.end()) {
      sites[context] = Site(site, "'" + object + "' exposed to shard '" + context + "'");
    }
  }

  // Direct exposure: a member call on a shard-root variable shares its
  // mutable pointer/reference arguments with that shard.
  void ShardExposeDirect(const std::string& recv_name, const std::vector<ArgView>& args,
                         size_t site) {
    if (recv_name.empty()) {
      return;
    }
    auto recv = vars_.find(recv_name);
    if (recv == vars_.end() || !e_.TypeIn(recv->second.type_idents, e_.reg.shard_roots)) {
      return;
    }
    for (const ArgView& arg : args) {
      if (arg.bare.empty() || arg.bare == recv_name) {
        continue;
      }
      auto var = vars_.find(arg.bare);
      if (var != vars_.end() && SharingArg(arg, var->second)) {
        Expose(arg.bare, recv_name, site);
      }
    }
  }

  void ExposeArgsToContext(const std::string& context, size_t l, size_t r, size_t site) {
    int depth = 0;
    size_t item = l;
    for (size_t j = l; j <= r; ++j) {
      const std::string& t = j == r ? std::string(",") : Text(j);
      if (t == "(" || t == "[" || t == "{") ++depth;
      else if (t == ")" || t == "]" || t == "}") --depth;
      else if (t == "," && depth == 0) {
        size_t first = item;
        bool is_addr = Text(first) == "&";
        if (is_addr) ++first;
        if (first + 1 == j && IsIdentTok(first)) {
          auto var = vars_.find(Text(first));
          if (var != vars_.end() && SharingArg(ArgView{Text(first), is_addr}, var->second)) {
            Expose(Text(first), context, site);
          }
        }
        item = j + 1;
      }
    }
  }

  // Summary-mediated exposure: `Wire(shard_a, &state)` where Wire parks its
  // second parameter inside its first (a shard root).
  void ApplyShardSummary(const Summary& summary, const std::vector<ArgView>& args,
                         size_t site) {
    for (const auto& [shard_param, exposed_param] : summary.shard_exposures) {
      if (shard_param < 0 || exposed_param < 0 ||
          static_cast<size_t>(shard_param) >= args.size() ||
          static_cast<size_t>(exposed_param) >= args.size()) {
        continue;
      }
      const std::string& context = args[static_cast<size_t>(shard_param)].bare;
      const ArgView& exposed = args[static_cast<size_t>(exposed_param)];
      if (context.empty() || exposed.bare.empty()) {
        continue;
      }
      auto ctx_var = vars_.find(context);
      if (ctx_var == vars_.end() ||
          !e_.TypeIn(ctx_var->second.type_idents, e_.reg.shard_roots)) {
        continue;
      }
      auto var = vars_.find(exposed.bare);
      if (var != vars_.end() && SharingArg(exposed, var->second)) {
        Expose(exposed.bare, context, site);
      }
    }
  }

  void FlushShardFindings() {
    if (e_.findings == nullptr) {
      return;
    }
    for (const auto& [object, contexts] : exposures_) {
      if (contexts.size() < 2) {
        continue;
      }
      std::vector<std::string> names;
      for (const auto& [context, site] : contexts) {
        names.push_back(context);
      }
      std::sort(names.begin(), names.end());
      const FlowStep& first = contexts.at(names[0]);
      const FlowStep& second = contexts.at(names[1]);
      const FlowStep& report = second.line >= first.line ? second : first;
      FlowFinding finding;
      finding.diag = Diagnostic{
          file_.path, report.line, report.col, kShardRule,
          "mutable state '" + object + "' is reachable from shard contexts '" + names[0] +
              "' and '" + names[1] +
              "'; cross-shard state must flow through a CrossShardChannel "
              "(src/parallel/channel.h) or be registered shared-safe"};
      finding.fingerprint = std::string(kShardRule) + "|" + file_.path + "|" +
                            fn_.qualified_name + "|" + object + "|" + names[0] + "+" +
                            names[1];
      for (const std::string& context : names) {
        AppendStep(finding.steps, contexts.at(context));
      }
      std::string key = finding.fingerprint;
      if (e_.emitted.insert(key).second) {
        e_.findings->push_back(std::move(finding));
      }
    }
  }

  Engine& e_;
  const FileModel& file_;
  const FunctionInfo& fn_;
  const std::vector<Token>& toks_;
  std::map<std::string, VarInfo> vars_;
  std::map<std::string, Taint> taint_;
  std::map<std::string, std::map<std::string, FlowStep>> exposures_;
  Summary result_;
};

}  // namespace

FlowAnalysis RunFlow(const SymbolModel& model, const IdentityRegistry& registry) {
  FlowAnalysis analysis;
  analysis.errors = registry.errors;
  for (const SymbolModel::MarkerIssue& issue : model.marker_issues) {
    analysis.errors.push_back(
        Diagnostic{issue.path, issue.line, 1, "nymflow-registry-error", issue.message});
  }

  Engine engine{model, registry};

  // Seed declassifier summaries from in-code annotations; registry-declared
  // declassifiers are matched directly at call sites.
  for (const FileModel& file : model.files) {
    for (const FunctionInfo& fn : file.functions) {
      ++analysis.functions;
      if (fn.declassifies.count(kTaintRule)) {
        engine.summaries[fn.qualified_name].is_declassifier = true;
      }
    }
  }

  // Fixpoint over function summaries.
  for (int pass = 0; pass < kFixpointCap; ++pass) {
    bool changed = false;
    for (const FileModel& file : model.files) {
      for (const FunctionInfo& fn : file.functions) {
        if (!fn.has_body) {
          continue;
        }
        FunctionAnalyzer analyzer(engine, file, fn);
        Summary summary = analyzer.Run();
        changed = engine.summaries[fn.qualified_name].MergeFrom(summary) || changed;
      }
    }
    if (!changed) {
      break;
    }
  }

  // Reporting pass with converged summaries.
  engine.findings = &analysis.findings;
  for (const FileModel& file : model.files) {
    for (const FunctionInfo& fn : file.functions) {
      if (!fn.has_body) {
        continue;
      }
      FunctionAnalyzer analyzer(engine, file, fn);
      analyzer.Run();
    }
  }
  analysis.call_edges = engine.call_edges;

  std::sort(analysis.findings.begin(), analysis.findings.end(),
            [](const FlowFinding& a, const FlowFinding& b) { return a.diag < b.diag; });
  return analysis;
}

}  // namespace nymlint
