// nymflow pass 2: interprocedural dataflow over the symbol model.
//
// Two rules run on the same call graph:
//
//   nymflow-identity-taint — a value originating at a registry source (an
//   identity-bearing type, field, or function result) must not reach a
//   registry sink (cross-boundary API) without passing through a
//   declassifier. Propagation is summary-based: every function gets a
//   summary (params that flow to its return value, params that flow to a
//   sink inside it, whether it returns identity outright), and summaries
//   iterate to a fixpoint so a flow can span any number of translation
//   units. Findings carry the step chain source -> calls -> sink for SARIF
//   code flows.
//
//   nymflow-shard-confinement — mutable state must not be reachable from
//   two different shard-root objects (e.g. two shards' Simulations) except
//   through a registered channel type. Exposure is tracked per function
//   (including via one-level summaries: a helper that parks its pointer
//   argument inside a shard-root parameter exposes the caller's object),
//   so the aliasing TSan can only catch under a lucky schedule is flagged
//   at build time.
//
// Soundness posture (documented in docs/static-analysis.md): the engine is
// tolerant and lexical. Unresolvable receivers degrade to bare-name or
// conservative propagation, lambdas and operator overloading are opaque,
// and the registry vocabulary bounds what is tracked. It is a checked
// invariant over the enumerated channels, not a proof of non-leakage.
#ifndef TOOLS_NYMLINT_FLOW_H_
#define TOOLS_NYMLINT_FLOW_H_

#include <string>
#include <vector>

#include "tools/nymlint/model.h"
#include "tools/nymlint/registry.h"

namespace nymlint {

struct FlowStep {
  std::string path;
  int line = 1;
  int col = 1;
  std::string note;  // "reads identity field 'cookie'", "call to Publish", ...
};

struct FlowFinding {
  Diagnostic diag;          // rule, position (the sink/aliasing site), message
  std::string fingerprint;  // stable across line drift: rule|file|fn|src|sink
  std::vector<FlowStep> steps;  // source first, sink last
};

struct FlowAnalysis {
  std::vector<FlowFinding> findings;   // sorted by diagnostic order
  std::vector<Diagnostic> errors;      // registry + declassify marker issues
  size_t functions = 0;                // functions modeled
  size_t call_edges = 0;               // resolved call-graph edges
};

FlowAnalysis RunFlow(const SymbolModel& model, const IdentityRegistry& registry);

}  // namespace nymlint

#endif  // TOOLS_NYMLINT_FLOW_H_
