#include "tools/nymlint/registry.h"

#include <sstream>

namespace nymlint {
namespace {

std::string StripComment(const std::string& line) {
  size_t hash = line.find('#');
  return hash == std::string::npos ? line : line.substr(0, hash);
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string word;
  while (in >> word) {
    words.push_back(word);
  }
  return words;
}

// A symbol operand: identifier characters plus at most one "::" qualifier.
bool ValidSymbol(const std::string& word) {
  if (word.empty()) {
    return false;
  }
  size_t sep = word.find("::");
  if (sep != std::string::npos &&
      (sep == 0 || sep + 2 >= word.size() || word.find("::", sep + 2) != std::string::npos)) {
    return false;
  }
  for (size_t i = 0; i < word.size(); ++i) {
    char c = word[i];
    bool ident = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_' || c == '~';
    if (!ident && !(c == ':' && sep != std::string::npos && (i == sep || i == sep + 1))) {
      return false;
    }
  }
  return true;
}

}  // namespace

IdentityRegistry ParseRegistry(const std::string& path, const std::string& text) {
  IdentityRegistry registry;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto error = [&](const std::string& message) {
    registry.errors.push_back(
        Diagnostic{path, line_no, 1, "nymflow-registry-error", message});
  };
  while (std::getline(in, line)) {
    ++line_no;
    std::vector<std::string> words = SplitWords(StripComment(line));
    if (words.empty()) {
      continue;
    }
    const std::string& directive = words[0];
    std::set<std::string>* target = nullptr;
    if (directive == "source-type") target = &registry.source_types;
    else if (directive == "source-field") target = &registry.source_fields;
    else if (directive == "source-fn") target = &registry.source_fns;
    else if (directive == "sink") target = &registry.sinks;
    else if (directive == "declassify") target = &registry.declassifiers;
    else if (directive == "shard-root") target = &registry.shard_roots;
    else if (directive == "channel-type") target = &registry.channel_types;
    else if (directive == "shared-safe") target = &registry.shared_safe;
    else {
      error("unknown registry directive '" + directive +
            "' (see docs/static-analysis.md for the format)");
      continue;
    }
    if (words.size() < 2) {
      error("directive '" + directive + "' needs a symbol operand");
      continue;
    }
    if (words.size() > 2) {
      error("directive '" + directive + "' takes one operand; use '#' for comments");
      continue;
    }
    if (!ValidSymbol(words[1])) {
      error("'" + words[1] + "' is not a valid symbol (identifier or Class::Member)");
      continue;
    }
    target->insert(words[1]);
  }
  return registry;
}

}  // namespace nymlint
