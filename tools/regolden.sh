#!/usr/bin/env bash
# Regenerates the golden-trace corpus in tests/golden/ from the scenario
# library. Run after an intentional change to observable simulator
# behavior, then review and commit the JSON diffs like any other code.
#
# Usage: tools/regolden.sh [build-dir] [scenario...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
shift || true

if [ ! -d "$BUILD_DIR" ]; then
  cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target golden_gen -j "$(nproc)"

mkdir -p tests/golden
"$BUILD_DIR/tests/golden_gen" tests/golden "$@"

echo "regolden: done — review with 'git diff tests/golden'"
