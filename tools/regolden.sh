#!/usr/bin/env bash
# Regenerates the golden-trace corpus in tests/golden/ from the scenario
# library. Run after an intentional change to observable simulator
# behavior, then review and commit the JSON diffs like any other code.
#
# Usage: tools/regolden.sh [--format=json|nbt] [build-dir] [scenario...]
#   --format=json (default) rewrites the checked-in tests/golden/*.json
#   --format=nbt writes tests/golden/*.nbt, the binary twin of the same
#     runs (tools/nbt2json converts one back to the byte-identical JSON)
# Unknown scenario names are a hard error — golden_gen lists the library.
set -euo pipefail

cd "$(dirname "$0")/.."

FORMAT="json"
ARGS=()
for arg in "$@"; do
  case "$arg" in
    --format=json|--format=nbt)
      FORMAT="${arg#--format=}"
      ;;
    --format=*)
      echo "regolden: --format must be json or nbt, got '${arg#--format=}'" >&2
      exit 2
      ;;
    *)
      ARGS+=("$arg")
      ;;
  esac
done

BUILD_DIR="${ARGS[0]:-build}"
SCENARIOS=("${ARGS[@]:1}")

if [ ! -d "$BUILD_DIR" ]; then
  cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" --target golden_gen -j "$(nproc)"

mkdir -p tests/golden
"$BUILD_DIR/tests/golden_gen" "--format=$FORMAT" tests/golden ${SCENARIOS[@]+"${SCENARIOS[@]}"}

echo "regolden: done — review with 'git diff tests/golden'"
