#!/usr/bin/env python3
"""Unit tests for tools/bench_diff.py — the CI benchmark gate.

Each case builds a (BENCH_scale.json, baseline) fixture pair in a temp dir
and drives bench_diff.main() directly, asserting on the exit code and the
printed report. Covers the 30% throughput-regression gate, the parallel
trace-identity gate, the hardware_threads>=2 arming of the speedup floor,
the crossed-topology hard x2.0 floor (armed at hardware_threads>=4), the
crossed epochs/cross_deliveries shape floors, the hard failure on
unparseable bench JSON, the warn-only store columns, and baseline
seeding/ratcheting.

Run directly (python3 tools/bench_diff_test.py) or via ctest
(`ctest -R bench_diff`). Only the standard library is used.
"""

import contextlib
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

_SPEC = importlib.util.spec_from_file_location(
    "bench_diff", os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_diff.py"))
bench_diff = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_diff)


def incremental(points, **extra):
    """A result doc with an incremental series of {n: events_per_sec}."""
    doc = {"bench": "scale_fleet",
           "incremental": [{"n": n, "events_per_sec": eps} for n, eps in sorted(points.items())]}
    doc.update(extra)
    return doc


def baseline(points):
    return {"bench": "scale_fleet",
            "events_per_sec": {str(n): eps for n, eps in points.items()}}


class BenchDiffCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)
        self.dir = self._tmp.name

    def write(self, name, doc):
        path = os.path.join(self.dir, name)
        with open(path, "w") as fh:
            json.dump(doc, fh)
        return path

    def run_diff(self, result_doc, baseline_doc=None, extra_args=()):
        """Returns (exit_code, stdout_text, stderr_text)."""
        result = self.write("BENCH_scale.json", result_doc)
        args = ["bench_diff.py", result]
        if baseline_doc is not None:
            args.append("--baseline=" + self.write("baseline.json", baseline_doc))
        else:
            args.append("--baseline=" + os.path.join(self.dir, "absent", "baseline.json"))
        args.extend(extra_args)
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = bench_diff.main(args)
        return code, out.getvalue(), err.getvalue()

    # --- throughput gate ---------------------------------------------------

    def test_within_budget_passes(self):
        code, out, _ = self.run_diff(incremental({100: 1000.0, 1000: 900.0}),
                                     baseline({100: 1000.0, 1000: 1000.0}))
        self.assertEqual(code, 0)
        self.assertIn("within budget", out)

    def test_thirty_percent_regression_fails(self):
        # 0.69x is just below the default 0.7 floor: the gate must trip.
        code, out, err = self.run_diff(incremental({100: 690.0}),
                                       baseline({100: 1000.0}))
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        self.assertIn("re-baseline deliberately", err)

    def test_exactly_at_floor_passes(self):
        code, _, _ = self.run_diff(incremental({100: 700.0}), baseline({100: 1000.0}))
        self.assertEqual(code, 0)

    def test_faster_than_baseline_passes(self):
        code, _, _ = self.run_diff(incremental({100: 5000.0}), baseline({100: 1000.0}))
        self.assertEqual(code, 0)

    def test_min_ratio_flag_overrides_floor(self):
        code, _, _ = self.run_diff(incremental({100: 690.0}), baseline({100: 1000.0}),
                                   extra_args=["--min-ratio=0.5"])
        self.assertEqual(code, 0)

    def test_point_missing_from_baseline_is_skipped(self):
        code, out, _ = self.run_diff(incremental({100: 1000.0, 5000: 1.0}),
                                     baseline({100: 1000.0}))
        self.assertEqual(code, 0)
        self.assertIn("no baseline point", out)

    # --- baseline lifecycle ------------------------------------------------

    def test_missing_baseline_is_seeded(self):
        code, out, _ = self.run_diff(incremental({100: 1234.0}))
        self.assertEqual(code, 0)
        self.assertIn("seeded", out)
        seeded = os.path.join(self.dir, "absent", "baseline.json")
        with open(seeded) as fh:
            doc = json.load(fh)
        self.assertEqual(doc["events_per_sec"]["100"], 1234.0)

    def test_update_baseline_ratchets_forward(self):
        code, out, _ = self.run_diff(incremental({100: 2000.0}), baseline({100: 1000.0}),
                                     extra_args=["--update-baseline"])
        self.assertEqual(code, 0)
        self.assertIn("updated", out)
        with open(os.path.join(self.dir, "baseline.json")) as fh:
            self.assertEqual(json.load(fh)["events_per_sec"]["100"], 2000.0)

    # --- parallel executor gates -------------------------------------------

    def threaded_doc(self, identical, speedup, hardware):
        return incremental(
            {100: 1000.0},
            hardware_threads=hardware,
            threads_speedup=[{"n": 100, "threads": 4, "wall_clock": speedup,
                              "trace_identical": identical}])

    def test_trace_identity_violation_fails_even_on_one_core(self):
        # Identity is unconditional: even a single-hardware-thread machine
        # (where the speedup floor is disarmed) must fail on divergence.
        code, _, err = self.run_diff(self.threaded_doc(False, 2.0, hardware=1),
                                     baseline({100: 1000.0}))
        self.assertEqual(code, 1)
        self.assertIn("determinism violation", err)

    def test_speedup_floor_armed_with_multicore_hardware(self):
        # 4 threads on 8 hardware threads: floor = min(2.0, 0.5*4) = 2.0.
        code, out, err = self.run_diff(self.threaded_doc(True, 1.2, hardware=8),
                                       baseline({100: 1000.0}))
        self.assertEqual(code, 1)
        self.assertIn("TOO SLOW", out)
        self.assertIn("parallel executor gate failed", err)

    def test_speedup_floor_met_passes(self):
        code, _, _ = self.run_diff(self.threaded_doc(True, 2.1, hardware=8),
                                   baseline({100: 1000.0}))
        self.assertEqual(code, 0)

    def test_speedup_floor_disarmed_on_single_core(self):
        # Same slow speedup, but hardware_threads=1: only identity is checked.
        code, out, _ = self.run_diff(self.threaded_doc(True, 1.2, hardware=1),
                                     baseline({100: 1000.0}))
        self.assertEqual(code, 0)
        self.assertIn("speedup gate skipped", out)

    def test_floor_scales_down_with_fewer_threads(self):
        # 2 threads: floor = min(2.0, 0.5*2) = 1.0, so x1.2 passes.
        doc = incremental({100: 1000.0}, hardware_threads=8,
                          threads_speedup=[{"n": 100, "threads": 2, "wall_clock": 1.2,
                                            "trace_identical": True}])
        code, _, _ = self.run_diff(doc, baseline({100: 1000.0}))
        self.assertEqual(code, 0)

    # --- warn-only store columns -------------------------------------------

    def test_slow_trace_encode_warns_but_passes(self):
        doc = incremental({100: 1000.0})
        # 50 ms for 1000 events = 50 us/event: far past the 2 us threshold.
        doc["incremental"][0].update(events=1000, trace_encode_ms=50.0)
        code, out, _ = self.run_diff(doc, baseline({100: 1000.0}))
        self.assertEqual(code, 0)
        self.assertIn("WARNING", out)
        self.assertIn("encoder may have regressed", out)

    def test_slow_checkpoint_restore_warns_but_passes(self):
        doc = incremental({100: 1000.0})
        doc["incremental"][0]["checkpoint_restore_ms"] = 5000.0
        code, out, _ = self.run_diff(doc, baseline({100: 1000.0}))
        self.assertEqual(code, 0)
        self.assertIn("warm-start restore", out)

    def test_healthy_store_columns_stay_quiet(self):
        doc = incremental({100: 1000.0})
        doc["incremental"][0].update(events=100000, trace_encode_ms=20.0,
                                     checkpoint_restore_ms=40.0)
        code, out, _ = self.run_diff(doc, baseline({100: 1000.0}))
        self.assertEqual(code, 0)
        self.assertNotIn("WARNING", out)

    # --- crossed-topology gates --------------------------------------------

    def crossed_doc(self, speedup, hardware, epochs=126, deliveries=576):
        """A result with one crossed threaded row + speedup row at 4 threads."""
        return incremental(
            {256: 1000.0},
            topology="crossed",
            hardware_threads=hardware,
            threaded=[{"n": 256, "threads": 4, "topology": "crossed",
                       "epochs": epochs, "cross_deliveries": deliveries}],
            threads_speedup=[{"n": 256, "threads": 4, "topology": "crossed",
                              "wall_clock": speedup, "trace_identical": True}])

    def crossed_baseline(self, epochs_min=2, deliveries_min=1):
        doc = baseline({256: 1000.0})
        doc["crossed"] = {"epochs_min": epochs_min, "cross_deliveries_min": deliveries_min}
        return doc

    def test_crossed_speedup_floor_is_hard_two_on_quad(self):
        # x1.5 would pass the generic min(2.0, 0.5*threads) floor at 3 hw
        # threads; the crossed floor is a hard x2.0 once hardware >= 4.
        code, out, err = self.run_diff(self.crossed_doc(1.5, hardware=4),
                                       self.crossed_baseline())
        self.assertEqual(code, 1)
        self.assertIn("TOO SLOW", out)
        self.assertIn("parallel executor gate failed", err)

    def test_crossed_speedup_floor_met_passes(self):
        code, out, _ = self.run_diff(self.crossed_doc(2.1, hardware=4),
                                     self.crossed_baseline())
        self.assertEqual(code, 0)
        self.assertIn("crossed shape ok", out)

    def test_crossed_floor_skipped_below_four_hardware_threads(self):
        # 2 hw threads arm the generic gate but not the crossed x2.0 floor:
        # the workload cannot double on a dual-core, only prove identity.
        code, out, _ = self.run_diff(self.crossed_doc(0.9, hardware=2),
                                     self.crossed_baseline())
        self.assertEqual(code, 0)
        self.assertIn("needs >=4 hw threads", out)

    def test_crossed_epoch_collapse_fails(self):
        # epochs=1 means the executor ran everything in one barrier-less
        # sweep — the workload no longer crosses shards, so the (passing)
        # speedup number is meaningless and the gate must trip.
        code, _, err = self.run_diff(self.crossed_doc(2.5, hardware=4, epochs=1),
                                     self.crossed_baseline(epochs_min=2))
        self.assertEqual(code, 1)
        self.assertIn("no longer crosses shards", err)
        self.assertIn("crossed workload shape gate failed", err)

    def test_crossed_zero_deliveries_fails(self):
        code, _, err = self.run_diff(self.crossed_doc(2.5, hardware=4, deliveries=0),
                                     self.crossed_baseline(deliveries_min=1))
        self.assertEqual(code, 1)
        self.assertIn("cross_deliveries=0", err)

    def test_crossed_shape_skipped_without_baseline_block(self):
        # Old baselines carry no "crossed" block; the shape gate stays off
        # rather than inventing floors.
        code, _, _ = self.run_diff(self.crossed_doc(2.5, hardware=4, epochs=1),
                                   baseline({256: 1000.0}))
        self.assertEqual(code, 0)

    def test_isolated_rows_keep_generic_floor_next_to_crossed(self):
        # Per-topology bests: an isolated x1.2 at 2 threads (floor 1.0)
        # passes while the crossed x1.5 at 4 threads (floor 2.0) fails.
        doc = incremental(
            {256: 1000.0}, hardware_threads=8,
            threads_speedup=[
                {"n": 256, "threads": 2, "topology": "isolated",
                 "wall_clock": 1.2, "trace_identical": True},
                {"n": 256, "threads": 4, "topology": "crossed",
                 "wall_clock": 1.5, "trace_identical": True}])
        code, out, _ = self.run_diff(doc, baseline({256: 1000.0}))
        self.assertEqual(code, 1)
        self.assertIn("[isolated] n=256: best parallel speedup x1.20", out)
        self.assertIn("[crossed] n=256: best parallel speedup x1.50", out)

    def test_seeding_records_crossed_minimums(self):
        code, _, _ = self.run_diff(self.crossed_doc(2.5, hardware=4,
                                                    epochs=100, deliveries=500))
        self.assertEqual(code, 0)
        with open(os.path.join(self.dir, "absent", "baseline.json")) as fh:
            doc = json.load(fh)
        # Half the observed minimum, floored at the degenerate thresholds.
        self.assertEqual(doc["crossed"], {"epochs_min": 50, "cross_deliveries_min": 250})

    # --- corrupt bench emission --------------------------------------------

    def test_unparseable_result_is_hard_failure(self):
        # The bench emitter wrote this file, so broken JSON is an emitter
        # regression (a stray separator once caused exactly this): exit 1
        # with a pointed message, not a quiet usage error.
        bad = os.path.join(self.dir, "BENCH_scale.json")
        with open(bad, "w") as fh:
            fh.write('{"bench": "scale_fleet", "speedup": [1.0,]\n  "shards": 4}')
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = bench_diff.main(["bench_diff.py", bad])
        self.assertEqual(code, 1)
        self.assertIn("not valid JSON", err.getvalue())
        self.assertIn("emitter produced corrupt output", err.getvalue())

    # --- usage errors ------------------------------------------------------

    def test_unknown_flag_is_usage_error(self):
        code, _, err = self.run_diff(incremental({100: 1000.0}), baseline({100: 1000.0}),
                                     extra_args=["--frobnicate"])
        self.assertEqual(code, 2)
        self.assertIn("unknown flag", err)

    def test_missing_incremental_series_is_usage_error(self):
        code, _, err = self.run_diff({"bench": "scale_fleet"}, baseline({100: 1000.0}))
        self.assertEqual(code, 2)
        self.assertIn("no incremental series", err)

    def test_corrupt_baseline_is_usage_error(self):
        result = self.write("BENCH_scale.json", incremental({100: 1000.0}))
        bad = os.path.join(self.dir, "bad.json")
        with open(bad, "w") as fh:
            fh.write("{not json")
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = bench_diff.main(["bench_diff.py", result, "--baseline=" + bad])
        self.assertEqual(code, 2)
        self.assertIn("bad baseline", err.getvalue())


if __name__ == "__main__":
    unittest.main()
