// nymfuzz: property-based scenario fuzzer for the nymix simulation stack.
//
// Modes:
//   nymfuzz --runs=200 --seed=1            fixed-seed sweep (CI smoke lane)
//   nymfuzz --runs=500 --seed=random       nightly randomized lane; the
//                                          chosen seed is printed so any
//                                          finding replays exactly
//   nymfuzz --replay repro.nymfuzz         re-run a shrunk repro and verify
//                                          the recorded oracle AND outcome
//                                          digest byte-for-byte
//   nymfuzz --corpus tests/fuzz_corpus     replay every .nymfuzz in a dir
//   nymfuzz --gen-seed=S --record=FILE     run one scenario and write it —
//                                          with its observed oracle and
//                                          outcome digest — as a .nymfuzz
//                                          fixture (corpus curation; a clean
//                                          run records an empty oracle, so
//                                          the fixture pins the digest)
//   nymfuzz --list-oracles                 print the invariant suite
//   nymfuzz --minimize FILE [--out=FILE]   re-shrink a checked-in corpus
//                                          entry after behavior changes: a
//                                          still-failing repro is minimized
//                                          again and its expectation block
//                                          refreshed; a clean entry gets its
//                                          digest pin refreshed
//
// Knobs: --family=net|host|fleet|decoder|parallel, --max-steps=N, --out-dir=DIR
// (where shrunk repros are written), --plant=nat-leak (sabotage the CommVM
// policy; the nat-isolation oracle MUST catch it — the self-test that the
// suite is alive), --no-shrink, --disable-oracle=NAME.
//
// Exit codes: 0 = clean, 1 = an oracle failed (or a replay diverged),
// 2 = usage/IO error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/fuzz/entropy.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/oracle.h"
#include "src/fuzz/runner.h"
#include "src/fuzz/scenario.h"
#include "src/fuzz/shrink.h"
#include "src/store/file_io.h"
#include "src/util/bytes.h"
#include "src/util/prng.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: nymfuzz [--runs=N] [--seed=N|random] [--family=F] [--max-steps=N]\n"
               "               [--out-dir=DIR] [--plant=nat-leak] [--no-shrink]\n"
               "               [--disable-oracle=NAME]\n"
               "       nymfuzz --gen-seed=S [--record=FILE.nymfuzz]\n"
               "       nymfuzz --replay FILE.nymfuzz\n"
               "       nymfuzz --corpus DIR\n"
               "       nymfuzz --minimize FILE.nymfuzz [--out=FILE]\n"
               "       nymfuzz --list-oracles\n");
  return 2;
}

// Replays one .nymfuzz file and verifies its expectation block.
// Returns 0 = verified, 1 = diverged, 2 = unreadable.
int ReplayFile(const std::string& path, const nymix::RunnerOptions& options) {
  nymix::Result<nymix::Bytes> data = nymix::ReadFileBytes(path);
  if (!data.ok()) {
    std::fprintf(stderr, "nymfuzz: %s: %s\n", path.c_str(), data.status().ToString().c_str());
    return 2;
  }
  nymix::Result<nymix::ReproFile> repro =
      nymix::ReproFromText(nymix::StringFromBytes(*data));
  if (!repro.ok()) {
    std::fprintf(stderr, "nymfuzz: %s: %s\n", path.c_str(), repro.status().ToString().c_str());
    return 2;
  }
  nymix::RunReport report = nymix::RunScenario(repro->scenario, options);
  const std::string& want_oracle = repro->oracle;
  if (report.oracle != want_oracle) {
    std::fprintf(stderr, "nymfuzz: %s: oracle mismatch: recorded '%s', got '%s' (%s)\n",
                 path.c_str(), want_oracle.c_str(), report.oracle.c_str(),
                 report.detail.c_str());
    return 1;
  }
  if (!repro->digest.empty() && report.digest != repro->digest) {
    std::fprintf(stderr, "nymfuzz: %s: outcome digest mismatch: recorded %s, got %s\n",
                 path.c_str(), repro->digest.c_str(), report.digest.c_str());
    return 1;
  }
  std::printf("nymfuzz: %s: verified (%s)\n", path.c_str(),
              want_oracle.empty() ? "clean" : want_oracle.c_str());
  return 0;
}

// Re-shrinks a checked-in .nymfuzz entry against current behavior. A repro
// that still fails gets minimized again (its oracle may have shifted since
// it was recorded); a clean entry keeps its scenario and gets a fresh
// digest pin. Returns 0 = rewritten, 2 = unreadable/unwritable.
int MinimizeFile(const std::string& path, const std::string& out_path,
                 const nymix::RunnerOptions& options) {
  nymix::Result<nymix::Bytes> data = nymix::ReadFileBytes(path);
  if (!data.ok()) {
    std::fprintf(stderr, "nymfuzz: %s: %s\n", path.c_str(), data.status().ToString().c_str());
    return 2;
  }
  nymix::Result<nymix::ReproFile> repro =
      nymix::ReproFromText(nymix::StringFromBytes(*data));
  if (!repro.ok()) {
    std::fprintf(stderr, "nymfuzz: %s: %s\n", path.c_str(), repro.status().ToString().c_str());
    return 2;
  }
  nymix::RunReport report = nymix::RunScenario(repro->scenario, options);
  nymix::ReproFile minimized;
  if (report.ok) {
    minimized.scenario = std::move(repro->scenario);
    std::printf("nymfuzz: %s: clean (%zu steps); refreshing digest pin\n", path.c_str(),
                minimized.scenario.steps.size());
  } else {
    nymix::ShrinkResult shrunk = nymix::ShrinkScenario(repro->scenario, report, options);
    std::printf("nymfuzz: %s: %s still fires; re-shrunk %zu -> %zu steps\n", path.c_str(),
                shrunk.report.oracle.c_str(), repro->scenario.steps.size(),
                shrunk.scenario.steps.size());
    minimized.scenario = std::move(shrunk.scenario);
    minimized.oracle = shrunk.report.oracle;
    minimized.detail = shrunk.report.detail;
    report = shrunk.report;
  }
  minimized.digest = report.digest;
  const std::string& target = out_path.empty() ? path : out_path;
  nymix::Status wrote =
      nymix::WriteFileBytes(target, nymix::BytesFromString(nymix::ReproToText(minimized)));
  if (!wrote.ok()) {
    std::fprintf(stderr, "nymfuzz: writing %s: %s\n", target.c_str(), wrote.ToString().c_str());
    return 2;
  }
  std::printf("nymfuzz: wrote %s (%s, digest %s)\n", target.c_str(),
              minimized.oracle.empty() ? "clean" : minimized.oracle.c_str(),
              minimized.digest.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  bool seed_random = false;
  uint64_t gen_seed = 0;
  bool has_gen_seed = false;
  int runs = 100;
  nymix::GeneratorOptions generator_options;
  nymix::RunnerOptions runner_options;
  bool do_shrink = true;
  bool verbose = false;
  bool dump = false;
  bool list_oracles = false;
  std::string out_dir;
  std::string replay_path;
  std::string corpus_dir;
  std::string record_path;
  std::string minimize_path;
  std::string minimize_out;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--runs=")) {
      runs = std::atoi(v);
      if (runs <= 0) return Usage();
    } else if (const char* v = value("--seed=")) {
      if (std::strcmp(v, "random") == 0) {
        seed_random = true;
      } else {
        seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
      }
    } else if (const char* v = value("--gen-seed=")) {
      // Replay ONE scenario from the exact generator seed a failure line
      // printed (`run N seed S ...`), skipping the base-seed derivation.
      gen_seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
      has_gen_seed = true;
    } else if (const char* v = value("--family=")) {
      nymix::Result<nymix::ScenarioFamily> family = nymix::ParseScenarioFamily(v);
      if (!family.ok()) {
        std::fprintf(stderr, "nymfuzz: unknown family '%s'\n", v);
        return 2;
      }
      generator_options.family = *family;
    } else if (const char* v = value("--max-steps=")) {
      generator_options.max_steps = std::atoi(v);
      if (generator_options.max_steps <= 0) return Usage();
    } else if (const char* v = value("--out-dir=")) {
      out_dir = v;
    } else if (const char* v = value("--plant=")) {
      if (std::strcmp(v, "nat-leak") != 0) {
        std::fprintf(stderr, "nymfuzz: unknown plant '%s' (only nat-leak)\n", v);
        return 2;
      }
      runner_options.plant_nat_leak = true;
    } else if (const char* v = value("--disable-oracle=")) {
      if (!nymix::IsKnownOracle(v)) {
        std::fprintf(stderr, "nymfuzz: unknown oracle '%s' (see --list-oracles)\n", v);
        return 2;
      }
      runner_options.disabled_oracles.push_back(v);
    } else if (arg == "--no-shrink") {
      do_shrink = false;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--list-oracles") {
      list_oracles = true;
    } else if (arg == "--replay") {
      if (++i >= argc) return Usage();
      replay_path = argv[i];
    } else if (const char* v = value("--replay=")) {
      replay_path = v;
    } else if (arg == "--corpus") {
      if (++i >= argc) return Usage();
      corpus_dir = argv[i];
    } else if (const char* v = value("--corpus=")) {
      corpus_dir = v;
    } else if (const char* v = value("--record=")) {
      record_path = v;
    } else if (arg == "--minimize") {
      if (++i >= argc) return Usage();
      minimize_path = argv[i];
    } else if (const char* v = value("--minimize=")) {
      minimize_path = v;
    } else if (const char* v = value("--out=")) {
      minimize_out = v;
    } else {
      std::fprintf(stderr, "nymfuzz: unknown argument '%s'\n", arg.c_str());
      return Usage();
    }
  }

  if (list_oracles) {
    for (const nymix::OracleInfo& oracle : nymix::AllOracles()) {
      std::printf("%-20s %s\n", oracle.name, oracle.property);
    }
    return 0;
  }

  if (!replay_path.empty()) {
    return ReplayFile(replay_path, runner_options);
  }

  if (!minimize_path.empty()) {
    return MinimizeFile(minimize_path, minimize_out, runner_options);
  }

  if (!corpus_dir.empty()) {
    std::error_code ec;
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(corpus_dir, ec)) {
      if (entry.path().extension() == ".nymfuzz") {
        files.push_back(entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "nymfuzz: %s: %s\n", corpus_dir.c_str(), ec.message().c_str());
      return 2;
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      std::fprintf(stderr, "nymfuzz: %s: no .nymfuzz files\n", corpus_dir.c_str());
      return 2;
    }
    int worst = 0;
    for (const std::string& file : files) {
      worst = std::max(worst, ReplayFile(file, runner_options));
    }
    return worst;
  }

  if (seed_random) {
    seed = nymix::AmbientSeed();
    std::printf("nymfuzz: --seed=random chose %llu (pass --seed=%llu to replay)\n",
                static_cast<unsigned long long>(seed), static_cast<unsigned long long>(seed));
  }

  // --- the fuzz loop ----------------------------------------------------
  // Scenario seeds derive from (base seed, run index); every line printed
  // carries enough to replay that single run.
  if (has_gen_seed || !record_path.empty()) {
    runs = 1;
  }
  for (int run = 0; run < runs; ++run) {
    uint64_t scenario_seed =
        has_gen_seed
            ? gen_seed
            : nymix::Mix64(seed ^ (static_cast<uint64_t>(run) * 0x9e3779b97f4a7c15ULL));
    nymix::Scenario scenario = nymix::GenerateScenario(scenario_seed, generator_options);
    if (verbose) {
      std::printf("nymfuzz: run %d seed %llu family %s steps %zu\n", run,
                  static_cast<unsigned long long>(scenario_seed),
                  std::string(nymix::ScenarioFamilyName(scenario.family)).c_str(),
                  scenario.steps.size());
      std::fflush(stdout);
    }
    if (dump) {
      std::printf("%s", nymix::ScenarioToText(scenario).c_str());
      std::fflush(stdout);
    }
    nymix::RunReport report = nymix::RunScenario(scenario, runner_options);
    if (!record_path.empty()) {
      nymix::ReproFile repro;
      repro.scenario = scenario;
      repro.oracle = report.oracle;
      repro.detail = report.detail;
      repro.digest = report.digest;
      nymix::Status wrote =
          nymix::WriteFileBytes(record_path, nymix::BytesFromString(nymix::ReproToText(repro)));
      if (!wrote.ok()) {
        std::fprintf(stderr, "nymfuzz: writing %s: %s\n", record_path.c_str(),
                     wrote.ToString().c_str());
        return 2;
      }
      std::printf("nymfuzz: recorded %s (%s, digest %s)\n", record_path.c_str(),
                  report.ok ? "clean" : report.oracle.c_str(), report.digest.c_str());
      return 0;
    }
    if (report.ok) {
      if ((run + 1) % 50 == 0) {
        std::printf("nymfuzz: %d/%d clean\n", run + 1, runs);
      }
      continue;
    }

    std::printf("nymfuzz: run %d (scenario seed %llu, family %s): ORACLE %s: %s\n", run,
                static_cast<unsigned long long>(scenario_seed),
                std::string(nymix::ScenarioFamilyName(scenario.family)).c_str(),
                report.oracle.c_str(), report.detail.c_str());

    nymix::ReproFile repro;
    if (do_shrink) {
      nymix::ShrinkResult shrunk = nymix::ShrinkScenario(scenario, report, runner_options);
      std::printf("nymfuzz: shrunk %zu -> %zu steps (%d candidates, %d accepted)\n",
                  scenario.steps.size(), shrunk.scenario.steps.size(),
                  shrunk.candidates_tried, shrunk.candidates_accepted);
      repro.scenario = std::move(shrunk.scenario);
      repro.oracle = shrunk.report.oracle;
      repro.detail = shrunk.report.detail;
      repro.digest = shrunk.report.digest;
    } else {
      repro.scenario = std::move(scenario);
      repro.oracle = report.oracle;
      repro.detail = report.detail;
      repro.digest = report.digest;
    }

    std::string text = nymix::ReproToText(repro);
    if (!out_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(out_dir, ec);
      std::string path = out_dir + "/repro-" + repro.oracle + "-" +
                         std::to_string(scenario_seed) + ".nymfuzz";
      nymix::Status wrote = nymix::WriteFileBytes(path, nymix::BytesFromString(text));
      if (!wrote.ok()) {
        std::fprintf(stderr, "nymfuzz: writing %s: %s\n", path.c_str(),
                     wrote.ToString().c_str());
        return 2;
      }
      std::printf("nymfuzz: repro written to %s\n", path.c_str());
    } else {
      std::printf("%s", text.c_str());
    }
    return 1;
  }

  std::printf("nymfuzz: %d run(s) clean\n", runs);
  return 0;
}
