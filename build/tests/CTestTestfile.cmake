# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/unionfs_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/hv_test[1]_include.cmake")
include("/root/repo/build/tests/anon_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sanitize_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/experiments_test[1]_include.cmake")
include("/root/repo/build/tests/dcnet_test[1]_include.cmake")
