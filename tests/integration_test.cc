// Cross-module scenarios, property tests, and failure injection that the
// per-module suites don't cover: evercookie staining semantics, lifecycle
// races, resource exhaustion, randomized model-checking of the union
// filesystem, and flow-scheduler conservation properties.
#include <gtest/gtest.h>

#include <map>

#include "src/core/testbed.h"

namespace nymix {
namespace {

// ------------------------------------------------------- Evercookie / staining

WebsiteProfile StainerProfile() {
  WebsiteProfile profile;
  profile.name = "Stainer";
  profile.domain = "tracker.example.com";
  profile.page_bytes = 500 * kKiB;
  profile.revisit_bytes = 200 * kKiB;
  profile.cache_first_bytes = 2 * kMiB;
  profile.cache_revisit_bytes = 512 * kKiB;
  profile.plants_evercookie = true;
  profile.memory_dirty_bytes = 4 * kMiB;
  return profile;
}

TEST(StainingTest, EvercookieSurvivesClearCookies) {
  Testbed bed(1);
  Website stainer(bed.sim(), StainerProfile());
  Nym* nym = bed.CreateNymBlocking("victim");
  ASSERT_TRUE(bed.VisitBlocking(nym, stainer).ok());
  std::string stain = stainer.tracker_log()[0].evercookie;
  ASSERT_FALSE(stain.empty());
  std::string cookie = stainer.tracker_log()[0].cookie;

  ASSERT_TRUE(nym->browser()->ClearCookies().ok());
  EXPECT_FALSE(nym->browser()->HasCookieFor("tracker.example.com"));
  EXPECT_TRUE(nym->browser()->HasEvercookie("tracker.example.com"));

  ASSERT_TRUE(bed.VisitBlocking(nym, stainer).ok());
  // Fresh cookie, same stain: the user is still linked.
  EXPECT_NE(stainer.tracker_log()[1].cookie, cookie);
  EXPECT_EQ(stainer.tracker_log()[1].evercookie, stain);
  EXPECT_EQ(stainer.DistinctEvercookies(), 1u);
}

TEST(StainingTest, EvercookieRepairsDeletedCopy) {
  Testbed bed(2);
  Website stainer(bed.sim(), StainerProfile());
  Nym* nym = bed.CreateNymBlocking("victim");
  ASSERT_TRUE(bed.VisitBlocking(nym, stainer).ok());
  std::string stain = stainer.tracker_log()[0].evercookie;
  // The user deletes the Flash LSO copy; the cache copy restores it.
  ASSERT_TRUE(nym->anon_vm()
                  ->disk()
                  .fs()
                  .Unlink("/home/user/.config/chromium/flash_lso/tracker.example.com")
                  .ok());
  ASSERT_TRUE(bed.VisitBlocking(nym, stainer).ok());
  EXPECT_EQ(stainer.tracker_log()[1].evercookie, stain);
  EXPECT_TRUE(nym->anon_vm()->disk().fs().Exists(
      "/home/user/.config/chromium/flash_lso/tracker.example.com"));
}

TEST(StainingTest, PersistentNymCarriesStainAcrossSaveRestore) {
  Testbed bed(3);
  Website stainer(bed.sim(), StainerProfile());
  ASSERT_TRUE(bed.cloud().CreateAccount("u", "cp").ok());
  Nym* nym = bed.CreateNymBlocking("stained");
  ASSERT_TRUE(bed.VisitBlocking(nym, stainer).ok());
  ASSERT_TRUE(bed.SaveBlocking(nym, "u", "cp", "np").ok());
  ASSERT_TRUE(bed.manager().TerminateNym(nym).ok());

  auto restored = bed.LoadBlocking("stained", "u", "cp", "np");
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(bed.VisitBlocking(*restored, stainer).ok());
  EXPECT_EQ(stainer.DistinctEvercookies(), 1u);  // the §3.5 persistent-mode risk
}

TEST(StainingTest, EphemeralNymsAreUnstainable) {
  Testbed bed(4);
  Website stainer(bed.sim(), StainerProfile());
  for (int session = 0; session < 3; ++session) {
    Nym* nym = bed.CreateNymBlocking("fresh-" + std::to_string(session));
    ASSERT_TRUE(bed.VisitBlocking(nym, stainer).ok());
    ASSERT_TRUE(bed.manager().TerminateNym(nym).ok());
  }
  EXPECT_EQ(stainer.DistinctEvercookies(), 3u);
}

// ------------------------------------------------------- Lifecycle / failure

TEST(LifecycleTest, TerminateDuringBootIsSafe) {
  Testbed bed(5);
  bool callback_fired = false;
  bed.manager().CreateNym("doomed", {}, [&](Result<Nym*>, NymStartupReport) {
    callback_fired = true;
  });
  // Let the boot get underway, then kill it mid-flight.
  bed.sim().RunFor(Seconds(2));
  Nym* nym = bed.manager().FindNym("doomed");
  ASSERT_NE(nym, nullptr);
  EXPECT_EQ(nym->anon_vm()->state(), VmState::kBooting);
  ASSERT_TRUE(bed.manager().TerminateNym(nym).ok());
  bed.sim().loop().RunUntilIdle();
  EXPECT_FALSE(callback_fired);  // the boot never completed
  EXPECT_EQ(bed.manager().nyms().size(), 0u);
  EXPECT_EQ(bed.host().vm_count(), 0u);
  // The host is fully usable afterwards.
  Nym* next = bed.CreateNymBlocking("after");
  EXPECT_TRUE(next->anonymizer()->ready());
}

TEST(LifecycleTest, HostRamExhaustionFailsCleanly) {
  Testbed bed(6);
  // 16 GiB host, 1.07 GiB baseline, 656 MiB/nymbox -> at most 23 nyms.
  std::vector<Nym*> created;
  Status failure = OkStatus();
  for (int i = 0; i < 40 && failure.ok(); ++i) {
    bool done = false;
    bed.manager().CreateNym("bulk-" + std::to_string(i), {},
                            [&](Result<Nym*> nym, NymStartupReport) {
                              if (nym.ok()) {
                                created.push_back(*nym);
                              } else {
                                failure = nym.status();
                              }
                              done = true;
                            });
    bed.sim().RunUntil([&] { return done; });
  }
  EXPECT_EQ(failure.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(created.size(), 20u);
  EXPECT_LE(created.size(), 23u);
  // No half-created nym remains and the host stays consistent.
  EXPECT_EQ(bed.manager().nyms().size(), created.size());
  EXPECT_EQ(bed.host().vm_count(), 2 * created.size());
  // Freeing one nym makes room again.
  ASSERT_TRUE(bed.manager().TerminateNym(created.back()).ok());
  EXPECT_NE(bed.CreateNymBlocking("one-more"), nullptr);
}

TEST(LifecycleTest, WrongCloudAccountPasswordFailsLoad) {
  Testbed bed(7);
  ASSERT_TRUE(bed.cloud().CreateAccount("acct", "right").ok());
  Nym* nym = bed.CreateNymBlocking("cloudy");
  ASSERT_TRUE(bed.SaveBlocking(nym, "acct", "right", "np").ok());
  ASSERT_TRUE(bed.manager().TerminateNym(nym).ok());
  Result<Nym*> loaded = InternalError("pending");
  bool done = false;
  bed.manager().LoadNymFromCloud("cloudy", bed.cloud(), "acct", "WRONG", "np", {},
                                 [&](Result<Nym*> result, NymStartupReport) {
                                   loaded = std::move(result);
                                   done = true;
                                 });
  bed.sim().RunUntil([&] { return done; });
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(bed.manager().nyms().size(), 0u);  // loader cleaned up
}

TEST(LifecycleTest, EightConcurrentNymsBrowseAndTearDownClean) {
  Testbed bed(8);
  PacketCapture capture;
  bed.host().uplink()->AttachCapture(&capture);
  bed.host().ksm().Start(Seconds(2));

  // Launch all eight concurrently (not sequentially as in fig3).
  std::vector<Nym*> nyms(8, nullptr);
  int ready = 0;
  for (int i = 0; i < 8; ++i) {
    bed.manager().CreateNym("par-" + std::to_string(i), {},
                            [&nyms, &ready, i](Result<Nym*> nym, NymStartupReport) {
                              NYMIX_CHECK(nym.ok());
                              nyms[static_cast<size_t>(i)] = *nym;
                              ++ready;
                            });
  }
  bed.sim().RunUntil([&] { return ready == 8; });

  // Everyone browses a different site at once.
  auto sites = bed.sites().all();
  int visited = 0;
  for (int i = 0; i < 8; ++i) {
    nyms[static_cast<size_t>(i)]->browser()->Visit(
        *sites[static_cast<size_t>(i)], [&](Result<SimTime> r) {
          NYMIX_CHECK(r.ok());
          ++visited;
        });
  }
  bed.sim().RunUntil([&] { return visited == 8; });

  // Each site saw exactly one visit, from an exit, never from the host.
  for (Website* site : sites) {
    ASSERT_EQ(site->visit_count(), 1u);
    EXPECT_NE(site->tracker_log()[0].observed_source, bed.host().public_ip());
  }
  EXPECT_TRUE(AuditUplinkCapture(capture).Passed());

  for (Nym* nym : nyms) {
    ASSERT_TRUE(bed.manager().TerminateNym(nym).ok());
  }
  bed.host().ksm().ScanNow();
  EXPECT_EQ(bed.host().UsedMemoryBytes(), bed.host().config().baseline_bytes);
}

TEST(LifecycleTest, SaveWhileSecondNymBrowsesDoesNotInterfere) {
  Testbed bed(9);
  ASSERT_TRUE(bed.cloud().CreateAccount("u", "cp").ok());
  Nym* saver = bed.CreateNymBlocking("saver");
  Nym* browser_nym = bed.CreateNymBlocking("browser");
  ASSERT_TRUE(bed.VisitBlocking(saver, bed.sites().ByName("Gmail")).ok());

  bool save_done = false, visit_done = false;
  Result<SaveReceipt> receipt = InternalError("pending");
  bed.manager().SaveNymToCloud(*saver, bed.cloud(), "u", "cp", "np",
                               [&](Result<SaveReceipt> r) {
                                 receipt = std::move(r);
                                 save_done = true;
                               });
  browser_nym->browser()->Visit(bed.sites().ByName("BBC"), [&](Result<SimTime> r) {
    NYMIX_CHECK(r.ok());
    visit_done = true;
  });
  bed.sim().RunUntil([&] { return save_done && visit_done; });
  ASSERT_TRUE(receipt.ok());
  // The saver was paused during archiving but resumed.
  EXPECT_EQ(saver->anon_vm()->state(), VmState::kRunning);
  EXPECT_EQ(bed.sites().ByName("BBC").visit_count(), 1u);
}

// ------------------------------------------------------- UnionFs model check

// Randomized differential test: drive a UnionFs and a plain map-of-paths
// reference model with the same operation stream; views must agree.
class UnionFsModelCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnionFsModelCheck, MatchesReferenceModel) {
  Prng prng(GetParam());
  auto base = std::make_shared<MemFs>();
  std::map<std::string, std::string> model;  // path -> content
  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) {
    std::string path = "/f" + std::to_string(i);
    std::string content = "base-" + std::to_string(i);
    NYMIX_CHECK(base->WriteFile(path, Blob::FromString(content)).ok());
    model[path] = content;
    names.push_back(path);
  }
  auto writable = std::make_shared<MemFs>();
  UnionFs fs({base}, writable);

  for (int step = 0; step < 400; ++step) {
    const std::string& path = names[prng.NextBelow(names.size())];
    switch (prng.NextBelow(3)) {
      case 0: {  // write
        std::string content = "v" + std::to_string(step);
        ASSERT_TRUE(fs.WriteFile(path, Blob::FromString(content)).ok());
        model[path] = content;
        break;
      }
      case 1: {  // unlink
        Status status = fs.Unlink(path);
        if (model.count(path) > 0) {
          ASSERT_TRUE(status.ok()) << path;
          model.erase(path);
        } else {
          ASSERT_FALSE(status.ok()) << path;
        }
        break;
      }
      case 2: {  // read + existence check
        auto blob = fs.ReadFile(path);
        if (model.count(path) > 0) {
          ASSERT_TRUE(blob.ok()) << path;
          EXPECT_EQ(StringFromBytes(blob->Materialize()), model[path]);
        } else {
          EXPECT_FALSE(blob.ok()) << path;
        }
        EXPECT_EQ(fs.Exists(path), model.count(path) > 0);
        break;
      }
    }
  }
  // Final directory listing matches the model exactly.
  auto entries = fs.List("/");
  ASSERT_TRUE(entries.ok());
  std::map<std::string, bool> listed;
  for (const auto& entry : *entries) {
    listed[entry.name] = true;
  }
  for (const auto& [path, content] : model) {
    (void)content;
    EXPECT_TRUE(listed.count(path.substr(1)) > 0) << path;
  }
  EXPECT_EQ(listed.size(), model.size());
  // And the base layer never changed.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(StringFromBytes(base->ReadFile("/f" + std::to_string(i))->Materialize()),
              "base-" + std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFsModelCheck, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------- Flow conservation

class FlowConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlowConservation, CompletionTimesRespectCapacity) {
  Simulation sim(GetParam());
  Link* bottleneck = sim.CreateLink("bn", Millis(10), 10'000'000);  // 1.25 MB/s
  Prng prng(GetParam() * 77);

  uint64_t total_bytes = 0;
  SimTime last_completion = 0;
  int completed = 0;
  const int kFlows = 12;
  for (int i = 0; i < kFlows; ++i) {
    uint64_t bytes = 100'000 + prng.NextBelow(2'000'000);
    total_bytes += bytes;
    SimDuration start_delay = static_cast<SimDuration>(prng.NextBelow(Seconds(2)));
    sim.loop().ScheduleAfter(start_delay, [&sim, bottleneck, bytes, &completed,
                                           &last_completion] {
      sim.flows().StartFlow(Route::Through({bottleneck}), bytes, 1.0,
                            [&completed, &last_completion](SimTime t) {
                              ++completed;
                              last_completion = std::max(last_completion, t);
                            });
    });
  }
  sim.loop().RunUntilIdle();
  ASSERT_EQ(completed, kFlows);
  // Conservation: the link cannot have moved bytes faster than capacity.
  double capacity_bytes_per_s = 10'000'000 / 8.0;
  double min_seconds = static_cast<double>(total_bytes) / capacity_bytes_per_s;
  EXPECT_GE(ToSeconds(last_completion) + 1e-6, min_seconds);
  // And fair sharing cannot be pathologically slow either: everything done
  // within (transfer + staggered starts + rtt) plus small scheduling slack.
  EXPECT_LE(ToSeconds(last_completion), min_seconds + 2.0 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservation, ::testing::Values(11, 22, 33, 44, 55));

// ------------------------------------------------------- EventLoop stress

TEST(EventLoopStressTest, RandomScheduleCancelKeepsOrder) {
  EventLoop loop;
  Prng prng(99);
  std::vector<SimTime> fired;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 500; ++i) {
    SimDuration when = static_cast<SimDuration>(prng.NextBelow(Seconds(10)));
    ids.push_back(loop.ScheduleAfter(when, [&fired, &loop] { fired.push_back(loop.now()); }));
  }
  // Cancel a random third.
  size_t cancelled = 0;
  for (uint64_t id : ids) {
    if (prng.NextBelow(3) == 0 && loop.Cancel(id)) {
      ++cancelled;
    }
  }
  loop.RunUntilIdle();
  EXPECT_EQ(fired.size(), ids.size() - cancelled);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(loop.pending_events(), 0u);
}

}  // namespace
}  // namespace nymix
