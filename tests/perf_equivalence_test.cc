// Equivalence tests for the incremental hot paths (docs/performance.md):
// the KSM delta scanner and the dirty-driven fair-share scheduler must
// produce results bit-identical to their reference full-recompute
// implementations (set_full_rescan / set_full_recompute), under randomized
// seeded stress. The introspection counters double-check that the
// incremental paths were actually taken — an equivalence test that silently
// fell back to full recomputation would prove nothing.
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/hv/ksm.h"
#include "src/net/simulation.h"
#include "src/util/prng.h"

namespace nymix {
namespace {

// ------------------------------------------------------------------- KSM

class KsmEquivalenceTest : public ::testing::Test {
 protected:
  KsmEquivalenceTest()
      : image_(BaseImage::CreateDistribution("img", 7, 8 * kMiB)),
        incremental_(loop_, [this] { return Enumerate(); }),
        reference_(loop_, [this] { return Enumerate(); }) {
    reference_.set_full_rescan(true);
  }

  std::vector<const GuestMemory*> Enumerate() const {
    std::vector<const GuestMemory*> out;
    for (const auto& memory : memories_) {
      out.push_back(memory.get());
    }
    return out;
  }

  GuestMemory& AddMemory(uint64_t ram = 64 * kMiB) {
    memories_.push_back(std::make_unique<GuestMemory>(ram));
    return *memories_.back();
  }

  void ExpectScansAgree() {
    KsmStats a = incremental_.ScanNow();
    KsmStats b = reference_.ScanNow();
    ASSERT_EQ(a.pages_shared, b.pages_shared);
    ASSERT_EQ(a.pages_sharing, b.pages_sharing);
  }

  EventLoop loop_;
  std::shared_ptr<BaseImage> image_;
  std::vector<std::unique_ptr<GuestMemory>> memories_;
  KsmDaemon incremental_;
  KsmDaemon reference_;
};

TEST_F(KsmEquivalenceTest, RandomizedMutationsStayBitIdentical) {
  Prng prng(0xBEEF);
  for (int i = 0; i < 4; ++i) {
    AddMemory().MapImagePages(*image_, 1500 + 200 * static_cast<uint64_t>(i));
  }
  for (int round = 0; round < 60; ++round) {
    switch (prng.NextBelow(6)) {
      case 0:  // a VM boots
        if (memories_.size() < 8) {
          AddMemory().MapImagePages(*image_, prng.NextInRange(500, 3000));
        }
        break;
      case 1:  // a VM is destroyed (vanishes from enumeration)
        if (memories_.size() > 1) {
          memories_.erase(memories_.begin() +
                          static_cast<long>(prng.NextBelow(memories_.size())));
        }
        break;
      case 2:  // secure erase at nym termination
        memories_[prng.NextBelow(memories_.size())]->Wipe();
        break;
      case 3: {  // browser heap growth
        GuestMemory& memory = *memories_[prng.NextBelow(memories_.size())];
        memory.DirtyPages(prng.NextInRange(1, 800), prng);
        break;
      }
      case 4:  // page-cache growth
        memories_[prng.NextBelow(memories_.size())]->MapImagePages(
            *image_, prng.NextInRange(1, 500));
        break;
      default:  // quiet round: nothing changes, deltas must still agree
        break;
    }
    ExpectScansAgree();
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  // The incremental daemon genuinely took the delta path: quiet rounds
  // skipped clean memories and far fewer merges happened than the
  // reference's everything-every-pass.
  EXPECT_GT(incremental_.memories_skipped(), 0u);
  EXPECT_LT(incremental_.memories_merged(), reference_.memories_merged());
  EXPECT_EQ(reference_.memories_skipped(), 0u);
}

TEST_F(KsmEquivalenceTest, FirstScanIsAFullPass) {
  AddMemory().MapImagePages(*image_, 1000);
  AddMemory().MapImagePages(*image_, 1000);
  ExpectScansAgree();
  EXPECT_EQ(incremental_.memories_skipped(), 0u);
  EXPECT_EQ(incremental_.memories_merged(), 2u);
  EXPECT_GT(incremental_.stats().pages_sharing, 0u);
}

TEST_F(KsmEquivalenceTest, RetiredMemoryLeavesTheIndex) {
  AddMemory().MapImagePages(*image_, 2000);
  AddMemory().MapImagePages(*image_, 2000);
  ExpectScansAgree();
  uint64_t sharing_with_two = incremental_.stats().pages_sharing;
  memories_.pop_back();
  ExpectScansAgree();
  EXPECT_LT(incremental_.stats().pages_sharing, sharing_with_two);
}

TEST_F(KsmEquivalenceTest, TogglingFullRescanRebuildsFromScratch) {
  AddMemory().MapImagePages(*image_, 1200);
  AddMemory().MapImagePages(*image_, 800);
  ExpectScansAgree();
  // Switch the incremental daemon to full and back: the delta baseline is
  // dropped both ways, and the next incremental pass starts clean.
  incremental_.set_full_rescan(true);
  ExpectScansAgree();
  incremental_.set_full_rescan(false);
  ExpectScansAgree();
  Prng prng(3);
  memories_[0]->DirtyPages(300, prng);
  ExpectScansAgree();
}

TEST(GuestMemoryTest, GenerationBumpsOnEveryMutation) {
  auto image = BaseImage::CreateDistribution("img", 7, 8 * kMiB);
  GuestMemory memory(64 * kMiB);
  uint64_t generation = memory.generation();
  memory.MapImagePages(*image, 100);
  EXPECT_GT(memory.generation(), generation);
  generation = memory.generation();
  Prng prng(1);
  memory.DirtyPages(10, prng);
  EXPECT_GT(memory.generation(), generation);
  generation = memory.generation();
  memory.Wipe();
  EXPECT_GT(memory.generation(), generation);
}

TEST(GuestMemoryTest, IdsFollowCreationOrder) {
  GuestMemory first(1 * kMiB);
  GuestMemory second(1 * kMiB);
  EXPECT_LT(first.id(), second.id());
}

// ------------------------------------------------------------------ flows

// Drives an identical randomized scenario on one simulation: three disjoint
// link clusters (so components exist to decompose), staggered flows,
// cancellations and link flaps, all from the sim's own seeded Prng. Returns
// a log of every observable: sampled rates for every flow id ever issued,
// and (id, completion time) pairs.
std::vector<uint64_t> DriveFlowScenario(Simulation& sim, int steps) {
  std::vector<std::vector<Link*>> clusters;
  for (int c = 0; c < 3; ++c) {
    std::vector<Link*> links;
    std::string prefix = "c" + std::to_string(c);
    links.push_back(sim.CreateLink(prefix + "-uplink", Millis(5), 8'000'000));
    links.push_back(sim.CreateLink(prefix + "-relay-a", Millis(12), 4'000'000));
    links.push_back(sim.CreateLink(prefix + "-relay-b", Millis(9), 2'000'000));
    clusters.push_back(links);
  }

  std::vector<uint64_t> log;
  std::vector<FlowId> issued;
  FlowOptions options;
  options.stall_timeout = Seconds(5);
  for (int i = 0; i < steps; ++i) {
    std::vector<Link*>& links = clusters[sim.prng().NextBelow(clusters.size())];
    switch (sim.prng().NextBelow(8)) {
      case 0:  // flap a link down...
        links[sim.prng().NextBelow(links.size())]->SetDown(true);
        break;
      case 1:  // ...and back up
        links[sim.prng().NextBelow(links.size())]->SetDown(false);
        break;
      case 2:  // cancel some flow (may already be done — also fine)
        if (!issued.empty()) {
          sim.flows().CancelFlow(issued[sim.prng().NextBelow(issued.size())]);
        }
        break;
      default: {  // start a flow on a route within the cluster
        std::vector<Link*> path = {links[0]};
        if (sim.prng().NextBelow(2) == 0) {
          path.push_back(links[1 + sim.prng().NextBelow(2)]);
        }
        FlowId id = sim.flows().StartFlow(Route::Through(path),
                                          sim.prng().NextInRange(20'000, 400'000), 1.0,
                                          options, [](Result<SimTime>) {});
        issued.push_back(id);
        break;
      }
    }
    sim.RunFor(Millis(sim.prng().NextBelow(40)));
    // Snapshot every flow's rate — including inactive ids, which must
    // report 0 identically in both modes.
    for (FlowId id : issued) {
      log.push_back(sim.flows().FlowRateBps(id));
    }
    log.push_back(sim.now() < 0 ? 0 : static_cast<uint64_t>(sim.now()));
  }
  // Bring every link back up and drain.
  for (auto& links : clusters) {
    for (Link* link : links) {
      link->SetDown(false);
    }
  }
  sim.RunUntil([&] { return sim.flows().active_flows() == 0; });
  log.push_back(static_cast<uint64_t>(sim.now()));
  return log;
}

TEST(FlowEquivalenceTest, IncrementalMatchesFullRecomputeUnderStress) {
  Simulation incremental(0xF10E);
  Simulation full(0xF10E);
  full.flows().set_full_recompute(true);

  std::vector<uint64_t> log_a = DriveFlowScenario(incremental, 120);
  std::vector<uint64_t> log_b = DriveFlowScenario(full, 120);
  EXPECT_EQ(log_a, log_b);

  // The incremental scheduler really scheduled incrementally: it skipped
  // clean reschedules, restricted dirty ones to components, and never fell
  // back to a full pass (no empty-route flows in this scenario).
  EXPECT_GT(incremental.flows().waterfill_skips(), 0u);
  EXPECT_GT(incremental.flows().waterfills_component(), 0u);
  EXPECT_EQ(incremental.flows().waterfills_full(), 0u);
  EXPECT_EQ(full.flows().waterfills_component(), 0u);
  EXPECT_EQ(full.flows().waterfill_skips(), 0u);
  // Same number of rate refreshes happened; only their scope differed.
  EXPECT_EQ(full.flows().waterfills_full(),
            incremental.flows().waterfills_component() + incremental.flows().waterfill_skips());
}

TEST(FlowEquivalenceTest, RepeatedSeedsStayIdentical) {
  for (uint64_t seed : {7ull, 21ull, 0xD15Cull}) {
    Simulation incremental(seed);
    Simulation full(seed);
    full.flows().set_full_recompute(true);
    EXPECT_EQ(DriveFlowScenario(incremental, 60), DriveFlowScenario(full, 60)) << seed;
  }
}

TEST(FlowEquivalenceTest, EmptyRouteFlowForcesFullWaterfill) {
  Simulation sim(5);
  Link* link = sim.CreateLink("uplink", Millis(5), 8'000'000);
  bool normal_done = false;
  sim.flows().StartFlow(Route::Through({link}), 100'000, 1.0,
                        [&](SimTime) { normal_done = true; });
  bool empty_done = false;
  sim.flows().StartFlow(Route{}, 50'000, 1.0, [&](SimTime) { empty_done = true; });
  sim.RunUntil([&] { return normal_done && empty_done; });
  // The empty-route flow's rate is the global first-round min share, so its
  // arrival must have forced at least one full pass.
  EXPECT_GT(sim.flows().waterfills_full(), 0u);
}

TEST(FlowEquivalenceTest, CleanRescheduleSkipsTheWaterfill) {
  Simulation sim(5);
  Link* link = sim.CreateLink("uplink", Millis(5), 8'000'000);
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    sim.flows().StartFlow(Route::Through({link}), 200'000, 1.0, [&](SimTime) { ++completed; });
  }
  sim.RunUntil([&] { return completed == 4; });
  // Every StartFlow triggers a Reschedule before the flow has started (it
  // is still in setup); those are clean and must not waterfill.
  EXPECT_GT(sim.flows().waterfill_skips(), 0u);
  EXPECT_GT(sim.flows().waterfills_component(), 0u);
}

// -------------------------------------------------------------- event loop

TEST(EventLoopNodePoolTest, SteadyStateSchedulingReusesNodes) {
  EventLoop loop;
  Observability obs;
  obs.metrics.set_enabled(true);
  loop.set_observability(&obs);
  int ran = 0;
  // Alternate schedule/run so the pool (capacity 256) absorbs every node.
  for (int i = 0; i < 512; ++i) {
    loop.ScheduleAfter(1, [&ran] { ++ran; });
    loop.RunUntilIdle();
  }
  EXPECT_EQ(ran, 512);
  uint64_t reuses = obs.metrics.GetCounter("core.event_loop.callback_node_reuses")->value();
  uint64_t allocs = obs.metrics.GetCounter("core.event_loop.callback_node_allocs")->value();
  EXPECT_GT(reuses, 500u);
  EXPECT_LT(allocs, 12u);
}

TEST(EventLoopNodePoolTest, CancelRecyclesAndStaysCorrect) {
  EventLoop loop;
  int ran = 0;
  for (int i = 0; i < 300; ++i) {
    uint64_t keep = loop.ScheduleAfter(1, [&ran] { ++ran; });
    uint64_t drop = loop.ScheduleAfter(2, [&ran] { ran += 1000; });
    EXPECT_TRUE(loop.Cancel(drop));
    EXPECT_FALSE(loop.Cancel(drop));
    loop.RunUntilIdle();
    EXPECT_FALSE(loop.Cancel(keep));
  }
  EXPECT_EQ(ran, 300);
}

}  // namespace
}  // namespace nymix
