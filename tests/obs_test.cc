// Tests for src/obs: trace recording + Chrome JSON export, metrics
// registry, histograms, the JSON validator, and the EventLoop integration.
#include <gtest/gtest.h>

// nymlint:allow-file(store-raw-io): reads back a file the unit under test
// (WriteChromeJsonFile) just wrote; no simulator state is persisted here.
#include <fstream>
#include <limits>
#include <sstream>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/observability.h"
#include "src/obs/trace.h"
#include "src/util/event_loop.h"

namespace nymix {
namespace {

// ---------------------------------------------------------------- JSON

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonTest, NumbersAreValidJson) {
  EXPECT_EQ(JsonNumber(5.0), "5");
  EXPECT_EQ(JsonNumber(uint64_t{12345}), "12345");
  EXPECT_EQ(JsonNumber(int64_t{-7}), "-7");
  // Non-finite values have no JSON representation; they collapse to 0.
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "0");
  EXPECT_TRUE(JsonValidate("{\"x\": " + JsonNumber(0.1) + "}"));
}

TEST(JsonTest, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(JsonValidate("{}"));
  EXPECT_TRUE(JsonValidate("[1, 2.5, -3e4, \"s\", true, false, null]"));
  EXPECT_TRUE(JsonValidate("{\"a\": {\"b\": [\"\\u0041\", \"\\n\"]}}"));
  EXPECT_FALSE(JsonValidate(""));
  EXPECT_FALSE(JsonValidate("{"));
  EXPECT_FALSE(JsonValidate("{\"a\": 1,}"));
  EXPECT_FALSE(JsonValidate("[1] trailing"));
  EXPECT_FALSE(JsonValidate("{'single': 1}"));
}

// ---------------------------------------------------------------- Trace

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder;
  SimClock clock;
  recorder.AddComplete("core", "x", "t", 0, 100);
  recorder.AddInstant("core", "i", "t", 5);
  recorder.AddCounter("core", "c", 5, 1.0);
  { TraceSpan span(&recorder, clock, "core", "span", "t"); }
  { TraceSpan span(nullptr, clock, "core", "span", "t"); }
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(TraceTest, SpanNestingByContainment) {
  Observability obs;
  obs.trace.set_enabled(true);
  EventLoop loop;
  loop.set_observability(&obs);

  // outer: [0, 30ms]; inner: [10ms, 20ms] — same track, so Chrome nests
  // them by containment.
  loop.ScheduleAfter(Millis(0), [&] {
    auto* outer = new TraceSpan(loop.tracer(), loop.clock(), "core", "outer", "nym");
    loop.ScheduleAfter(Millis(10), [&] {
      auto* inner = new TraceSpan(loop.tracer(), loop.clock(), "core", "inner", "nym");
      loop.ScheduleAfter(Millis(10), [inner] { delete inner; });
    });
    loop.ScheduleAfter(Millis(30), [outer] { delete outer; });
  });
  loop.RunUntilIdle();

  ASSERT_EQ(obs.trace.event_count(), 2u);
  std::string json = obs.trace.ToChromeJson();
  EXPECT_TRUE(JsonValidate(json));
  // The inner span closes first so it is recorded first.
  EXPECT_LT(json.find("\"inner\""), json.find("\"outer\""));
  EXPECT_NE(json.find("\"dur\":10000"), std::string::npos);  // inner: 10 ms
  EXPECT_NE(json.find("\"dur\":30000"), std::string::npos);  // outer: 30 ms
  EXPECT_NE(json.find("\"nym\""), std::string::npos);        // thread_name metadata
}

TEST(TraceTest, TracksGetDistinctTids) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.AddComplete("hv", "boot", "vm-a", 0, 10);
  recorder.AddComplete("hv", "boot", "vm-b", 0, 10);
  std::string json = recorder.ToChromeJson();
  EXPECT_TRUE(JsonValidate(json));
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(TraceTest, NextTimelineShiftsPastPriorEvents) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.AddComplete("core", "run1", "t", 0, Seconds(10));
  recorder.NextTimeline(Seconds(1));
  recorder.AddComplete("core", "run2", "t", 0, Seconds(5));
  std::string json = recorder.ToChromeJson();
  EXPECT_TRUE(JsonValidate(json));
  // run2 starts at 10s + 1s gap = 11s in trace time.
  EXPECT_NE(json.find("\"ts\":" + std::to_string(Seconds(11))), std::string::npos);
}

TEST(TraceTest, AsyncAndCounterEventsExport) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.AddAsyncBegin("net", "flow", 7, 100);
  recorder.AddAsyncEnd("net", "flow", 7, 500);
  recorder.AddCounter("core", "queue", 300, 42.0);
  std::string json = recorder.ToChromeJson();
  EXPECT_TRUE(JsonValidate(json));
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0x7\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":42"), std::string::npos);
}

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, CountersAndGauges) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("a.count");
  counter->Increment();
  counter->Increment(9);
  EXPECT_EQ(counter->value(), 10u);
  EXPECT_EQ(registry.GetCounter("a.count"), counter);  // stable pointer

  Gauge* gauge = registry.GetGauge("a.gauge");
  gauge->Set(3.5);
  gauge->Add(1.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 5.0);
}

TEST(MetricsTest, HistogramPercentilesWithinLogBucketError) {
  Histogram histogram;
  for (int i = 1; i <= 1000; ++i) {
    histogram.Record(static_cast<double>(i));
  }
  EXPECT_EQ(histogram.count(), 1000u);
  EXPECT_DOUBLE_EQ(histogram.min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 1000.0);
  // Geometric buckets with ratio 2^(1/8) bound relative error at ~4.5%.
  EXPECT_NEAR(histogram.Percentile(50), 500.0, 500.0 * 0.05);
  EXPECT_NEAR(histogram.Percentile(95), 950.0, 950.0 * 0.05);
  EXPECT_NEAR(histogram.Percentile(99), 990.0, 990.0 * 0.05);
  EXPECT_DOUBLE_EQ(histogram.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(100), 1000.0);
}

TEST(MetricsTest, HistogramHandlesZeroNegativeAndEmpty) {
  Histogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0.0);

  Histogram histogram;
  histogram.Record(0);
  histogram.Record(-5);
  histogram.Record(10);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.min(), -5.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 10.0);
  EXPECT_GE(histogram.Percentile(50), -5.0);
  EXPECT_LE(histogram.Percentile(50), 10.0);
}

TEST(MetricsTest, JsonDumpIsValidAndStable) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Increment(2);
  registry.GetCounter("a.first")->Increment();
  registry.GetGauge("mid \"quoted\"")->Set(1.25);
  for (int i = 0; i < 100; ++i) {
    registry.GetHistogram("lat")->Record(i + 1);
  }
  std::ostringstream out;
  registry.WriteJson(out);
  std::string json = out.str();
  EXPECT_TRUE(JsonValidate(json)) << json;
  EXPECT_LT(json.find("a.first"), json.find("z.last"));  // lexicographic order
  EXPECT_NE(json.find("\"p95\""), std::string::npos);

  std::ostringstream csv;
  registry.WriteCsv(csv);
  EXPECT_NE(csv.str().find("counter,a.first,value,1"), std::string::npos);
  EXPECT_NE(csv.str().find("histogram,lat,count,100"), std::string::npos);
}

// ------------------------------------------------------- EventLoop hookup

TEST(ObservabilityTest, EventLoopCountsExecutedEvents) {
  Observability obs;
  obs.EnableAll();
  EventLoop loop;
  loop.set_observability(&obs);
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAfter(Millis(i), [] {});
  }
  loop.RunUntilIdle();
  EXPECT_EQ(obs.metrics.GetCounter("core.event_loop.events_executed")->value(), 5u);
  EXPECT_EQ(obs.metrics.GetHistogram("core.event_loop.event_wall_ns")->count(), 5u);
}

TEST(ObservabilityTest, DetachedLoopRecordsNothing) {
  Observability obs;
  obs.EnableAll();
  EventLoop loop;
  loop.set_observability(&obs);
  loop.set_observability(nullptr);  // detach again
  loop.ScheduleAfter(Millis(1), [] {});
  loop.RunUntilIdle();
  EXPECT_EQ(obs.metrics.GetCounter("core.event_loop.events_executed")->value(), 0u);
  EXPECT_EQ(loop.tracer(), nullptr);
  EXPECT_EQ(loop.meters(), nullptr);
}

TEST(ObservabilityTest, DisabledRegistryKeepsMetersNull) {
  Observability obs;  // neither trace nor metrics enabled
  EventLoop loop;
  loop.set_observability(&obs);
  EXPECT_EQ(loop.tracer(), nullptr);
  EXPECT_EQ(loop.meters(), nullptr);
  loop.ScheduleAfter(Millis(1), [] {});
  loop.RunUntilIdle();
  EXPECT_EQ(obs.metrics.instrument_count(), 0u);
  EXPECT_EQ(obs.trace.event_count(), 0u);
}

TEST(ObservabilityTest, TraceFileRoundTripsThroughValidator) {
  Observability obs;
  obs.EnableAll();
  EventLoop loop;
  loop.set_observability(&obs);
  loop.ScheduleAfter(Millis(1), [&] {
    TraceSpan span(loop.tracer(), loop.clock(), "core", "work", "track");
  });
  loop.RunUntilIdle();
  std::string path = testing::TempDir() + "/obs_trace_round_trip.json";
  ASSERT_TRUE(obs.trace.WriteChromeJsonFile(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(JsonValidate(buffer.str()));
  EXPECT_NE(buffer.str().find("\"work\""), std::string::npos);
}

}  // namespace
}  // namespace nymix
