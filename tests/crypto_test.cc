#include <gtest/gtest.h>

#include "src/crypto/aead.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/hmac.h"
#include "src/crypto/merkle.h"
#include "src/crypto/poly1305.h"
#include "src/crypto/sha256.h"
#include "src/util/prng.h"

namespace nymix {
namespace {

std::string DigestHex(const Sha256Digest& digest) {
  return HexEncode(ByteSpan(digest.data(), digest.size()));
}

Bytes MustHex(std::string_view hex) {
  auto decoded = HexDecode(hex);
  NYMIX_CHECK(decoded.ok());
  return *decoded;
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestHex(Sha256::Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.Update(chunk);
  }
  EXPECT_EQ(DigestHex(hasher.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Prng prng(1);
  Bytes data = prng.NextBytes(10000);
  for (size_t split : {size_t{1}, size_t{63}, size_t{64}, size_t{65}, size_t{4096}}) {
    Sha256 hasher;
    size_t offset = 0;
    while (offset < data.size()) {
      size_t take = std::min(split, data.size() - offset);
      hasher.Update(ByteSpan(data.data() + offset, take));
      offset += take;
    }
    EXPECT_EQ(hasher.Finish(), Sha256::Hash(data)) << "split=" << split;
  }
}

TEST(Sha256Test, DigestPrefixIsBigEndianPrefix) {
  Sha256Digest digest = Sha256::Hash("abc");
  EXPECT_EQ(DigestPrefix64(digest), 0xba7816bf8f01cfeaULL);
}

// ---------------------------------------------------------------- HMAC / KDFs

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  auto tag = HmacSha256(key, BytesFromString("Hi There"));
  EXPECT_EQ(DigestHex(tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  auto tag = HmacSha256(BytesFromString("Jefe"), BytesFromString("what do ya want for nothing?"));
  EXPECT_EQ(DigestHex(tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  Bytes long_key(131, 0xaa);  // RFC 4231 case 6 key length
  auto tag = HmacSha256(long_key,
                        BytesFromString("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(DigestHex(tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HkdfTest, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = MustHex("000102030405060708090a0b0c");
  Bytes info = MustHex("f0f1f2f3f4f5f6f7f8f9");
  Bytes okm = HkdfSha256(ikm, salt, info, 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfTest, LengthsAndDeterminism) {
  Bytes ikm = BytesFromString("master");
  EXPECT_EQ(HkdfSha256(ikm, {}, {}, 1).size(), 1u);
  EXPECT_EQ(HkdfSha256(ikm, {}, {}, 64).size(), 64u);
  EXPECT_EQ(HkdfSha256(ikm, {}, BytesFromString("a"), 32),
            HkdfSha256(ikm, {}, BytesFromString("a"), 32));
  EXPECT_NE(HkdfSha256(ikm, {}, BytesFromString("a"), 32),
            HkdfSha256(ikm, {}, BytesFromString("b"), 32));
}

TEST(Pbkdf2Test, Rfc7914Vector) {
  Bytes dk = Pbkdf2Sha256(BytesFromString("passwd"), BytesFromString("salt"), 1, 64);
  EXPECT_EQ(HexEncode(dk),
            "55ac046e56e3089fec1691c22544b605"
            "f94185216dde0465e68b9d57c20dacbc"
            "49ca9cccf179b645991664b39d77ef31"
            "7c71b845b1e30bd509112041d3a19783");
}

TEST(Pbkdf2Test, IterationsChangeOutput) {
  Bytes a = Pbkdf2Sha256(BytesFromString("pw"), BytesFromString("s"), 1, 32);
  Bytes b = Pbkdf2Sha256(BytesFromString("pw"), BytesFromString("s"), 2, 32);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------- ChaCha20

ChaChaKey TestKey() {
  ChaChaKey key;
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  return key;
}

TEST(ChaCha20Test, Rfc8439BlockFunction) {
  ChaChaNonce nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  auto block = ChaCha20Block(TestKey(), nonce, 1);
  EXPECT_EQ(HexEncode(ByteSpan(block.data(), block.size())),
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20Test, Rfc8439Encryption) {
  ChaChaNonce nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  Bytes ciphertext = ChaCha20Xor(TestKey(), nonce, 1, BytesFromString(plaintext));
  EXPECT_EQ(HexEncode(ciphertext),
            "6e2e359a2568f98041ba0728dd0d6981"
            "e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b357"
            "1639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e"
            "52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42"
            "874d");
}

TEST(ChaCha20Test, XorIsInvolution) {
  Prng prng(2);
  Bytes data = prng.NextBytes(1000);
  ChaChaNonce nonce = {};
  Bytes once = ChaCha20Xor(TestKey(), nonce, 7, data);
  Bytes twice = ChaCha20Xor(TestKey(), nonce, 7, once);
  EXPECT_EQ(twice, data);
  EXPECT_NE(once, data);
}

// ---------------------------------------------------------------- Poly1305

TEST(Poly1305Test, Rfc8439Vector) {
  Bytes key_bytes = MustHex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  Poly1305Key key;
  std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
  auto tag = Poly1305Mac(key, BytesFromString("Cryptographic Forum Research Group"));
  EXPECT_EQ(HexEncode(ByteSpan(tag.data(), tag.size())),
            "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305Test, DifferentMessagesDifferentTags) {
  Poly1305Key key = {};
  key[0] = 1;  // r must be nonzero or every tag equals s
  auto tag_a = Poly1305Mac(key, BytesFromString("message a"));
  auto tag_b = Poly1305Mac(key, BytesFromString("message b"));
  EXPECT_NE(HexEncode(ByteSpan(tag_a.data(), tag_a.size())),
            HexEncode(ByteSpan(tag_b.data(), tag_b.size())));
}

// ---------------------------------------------------------------- AEAD

TEST(AeadTest, Rfc8439Vector) {
  ChaChaKey key;
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(0x80 + i);
  }
  ChaChaNonce nonce = {0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47};
  Bytes aad = MustHex("50515253c0c1c2c3c4c5c6c7");
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  Bytes sealed = AeadSeal(key, nonce, BytesFromString(plaintext), aad);
  ASSERT_EQ(sealed.size(), plaintext.size() + kPoly1305TagSize);
  EXPECT_EQ(HexEncode(ByteSpan(sealed.data() + sealed.size() - 16, 16)),
            "1ae10b594f09e26a7e902ecbd0600691");
  EXPECT_EQ(HexEncode(ByteSpan(sealed.data(), 16)), "d31a8d34648e60db7b86afbc53ef7ec2");

  auto opened = AeadOpen(key, nonce, sealed, aad);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(StringFromBytes(*opened), plaintext);
}

TEST(AeadTest, DetectsCiphertextTampering) {
  ChaChaKey key = TestKey();
  ChaChaNonce nonce = {};
  Bytes sealed = AeadSeal(key, nonce, BytesFromString("secret nym state"), {});
  sealed[3] ^= 0x01;
  EXPECT_EQ(AeadOpen(key, nonce, sealed, {}).status().code(), StatusCode::kUnauthenticated);
}

TEST(AeadTest, DetectsAadMismatch) {
  ChaChaKey key = TestKey();
  ChaChaNonce nonce = {};
  Bytes sealed = AeadSeal(key, nonce, BytesFromString("data"), BytesFromString("v1"));
  EXPECT_FALSE(AeadOpen(key, nonce, sealed, BytesFromString("v2")).ok());
  EXPECT_TRUE(AeadOpen(key, nonce, sealed, BytesFromString("v1")).ok());
}

TEST(AeadTest, DetectsWrongKeyAndTruncation) {
  ChaChaKey key = TestKey();
  ChaChaKey other = TestKey();
  other[0] ^= 0xff;
  ChaChaNonce nonce = {};
  Bytes sealed = AeadSeal(key, nonce, BytesFromString("data"), {});
  EXPECT_FALSE(AeadOpen(other, nonce, sealed, {}).ok());
  EXPECT_FALSE(AeadOpen(key, nonce, ByteSpan(sealed.data(), 8), {}).ok());
}

TEST(AeadTest, EmptyPlaintextRoundTrips) {
  ChaChaKey key = TestKey();
  ChaChaNonce nonce = {};
  Bytes sealed = AeadSeal(key, nonce, {}, {});
  auto opened = AeadOpen(key, nonce, sealed, {});
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->empty());
}

// Property sweep: random payload sizes round-trip.
class AeadRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(AeadRoundTrip, SealOpen) {
  Prng prng(GetParam() + 100);
  Bytes plaintext = prng.NextBytes(GetParam());
  Bytes aad = prng.NextBytes(GetParam() % 32);
  ChaChaKey key = TestKey();
  ChaChaNonce nonce = {};
  nonce[0] = static_cast<uint8_t>(GetParam());
  Bytes sealed = AeadSeal(key, nonce, plaintext, aad);
  auto opened = AeadOpen(key, nonce, sealed, aad);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, plaintext);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AeadRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 63, 64, 65, 255, 1024, 65537));

// ---------------------------------------------------------------- Merkle

std::vector<Sha256Digest> MakeLeaves(size_t count) {
  std::vector<Sha256Digest> leaves;
  for (size_t i = 0; i < count; ++i) {
    leaves.push_back(Sha256::Hash("block-" + std::to_string(i)));
  }
  return leaves;
}

class MerkleTreeSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleTreeSizes, AllProofsVerify) {
  auto leaves = MakeLeaves(GetParam());
  MerkleTree tree = MerkleTree::Build(leaves);
  EXPECT_EQ(tree.leaf_count(), GetParam());
  for (size_t i = 0; i < leaves.size(); ++i) {
    auto proof = tree.ProveLeaf(i);
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(MerkleTree::VerifyProof(tree.root(), leaves[i], *proof)) << "leaf " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleTreeSizes, ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 33));

TEST(MerkleTest, WrongLeafFailsVerification) {
  auto leaves = MakeLeaves(8);
  MerkleTree tree = MerkleTree::Build(leaves);
  auto proof = tree.ProveLeaf(3);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(MerkleTree::VerifyProof(tree.root(), leaves[4], *proof));
  EXPECT_FALSE(MerkleTree::VerifyProof(tree.root(), Sha256::Hash("evil"), *proof));
}

TEST(MerkleTest, ProofForWrongIndexFails) {
  auto leaves = MakeLeaves(8);
  MerkleTree tree = MerkleTree::Build(leaves);
  auto proof = tree.ProveLeaf(3);
  ASSERT_TRUE(proof.ok());
  proof->leaf_index = 2;  // splice attack: same siblings, different position
  EXPECT_FALSE(MerkleTree::VerifyProof(tree.root(), leaves[3], *proof));
}

TEST(MerkleTest, RootChangesWithAnyLeaf) {
  auto leaves = MakeLeaves(16);
  MerkleTree original = MerkleTree::Build(leaves);
  for (size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i] = Sha256::Hash("tampered-" + std::to_string(i));
    EXPECT_NE(MerkleTree::Build(mutated).root(), original.root());
  }
}

TEST(MerkleTest, ProveLeafOutOfRangeFails) {
  MerkleTree tree = MerkleTree::Build(MakeLeaves(4));
  EXPECT_FALSE(tree.ProveLeaf(4).ok());
}

TEST(MerkleTest, BuildFromBlocks) {
  std::vector<Bytes> blocks = {BytesFromString("a"), BytesFromString("b")};
  MerkleTree tree = MerkleTree::BuildFromBlocks(blocks);
  auto proof = tree.ProveLeaf(0);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(MerkleTree::VerifyProof(tree.root(), Sha256::Hash("a"), *proof));
}

}  // namespace
}  // namespace nymix
