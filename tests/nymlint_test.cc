// nymlint's own suite: every rule firing, every suppression path, and the
// lexing traps (raw strings, comments, literals) that make a textual linter
// trustworthy. Fixtures are inline snippets handed to RunLint with a
// virtual path, so each case documents exactly which scope it exercises.
#include "tools/nymlint/analyzer.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace nymlint {
namespace {

LintResult LintOne(const std::string& path, const std::string& content) {
  return RunLint({SourceFile{path, content}});
}

std::vector<std::string> RulesFired(const LintResult& result) {
  std::vector<std::string> rules;
  for (const Diagnostic& diag : result.diagnostics) {
    rules.push_back(diag.rule);
  }
  return rules;
}

bool Fired(const LintResult& result, const std::string& rule) {
  const std::vector<std::string> rules = RulesFired(result);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// --- Lexer traps ----------------------------------------------------------

TEST(NymlintLexer, RawStringLiteralHidesBannedNames) {
  // The banned spelling lives inside a raw string: data, not code.
  LintResult result = LintOne("src/demo.cc", R"cc(
    const char* kDoc = R"(call std::rand() and srand(time(nullptr)) here)";
  )cc");
  EXPECT_TRUE(result.diagnostics.empty()) << RulesFired(result).size();
}

TEST(NymlintLexer, RawStringWithDelimiterHidesBannedNames) {
  LintResult result = LintOne("src/demo.cc",
                              "const char* kDoc = R\"xy(std::rand() )\" still inside )xy\";\n");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(NymlintLexer, OrdinaryStringLiteralHidesBannedNames) {
  LintResult result = LintOne("src/demo.cc",
                              "const char* kMsg = \"getenv(\\\"HOME\\\") and throw\";\n");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(NymlintLexer, CommentsAreNotCode) {
  LintResult result = LintOne("src/demo.cc", R"cc(
    // std::rand() in a line comment
    /* std::random_device in a block comment */
    int x = 0;
  )cc");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(NymlintLexer, BlockCommentsDoNotNest) {
  // C++ block comments close at the FIRST "*/": the std::rand() call after
  // it is live code and must be flagged.
  LintResult result = LintOne("src/demo.cc", R"cc(
    /* outer /* looks nested */ int x = std::rand();
  )cc");
  EXPECT_TRUE(Fired(result, "determinism-rand"));
}

TEST(NymlintLexer, DigitSeparatorsAreNotCharLiterals) {
  // If 1'000'000 were mis-lexed, the quote would open a char literal and
  // swallow the std::rand() that follows.
  LintResult result = LintOne("src/demo.cc", R"cc(
    int rate = 1'000'000;
    int bad = std::rand();
  )cc");
  EXPECT_TRUE(Fired(result, "determinism-rand"));
}

TEST(NymlintLexer, IncludeHeaderNameIsNotAnIdentifier) {
  // <unordered_map> as an #include is reported as a banned include (with
  // the header spelled in the message), not as an identifier use.
  LintResult result = LintOne("src/demo.h", R"cc(#ifndef DEMO_H_
#define DEMO_H_
#include <unordered_map>
#endif
)cc");
  ASSERT_TRUE(Fired(result, "determinism-unordered-container"));
  EXPECT_NE(result.diagnostics[0].message.find("<unordered_map>"), std::string::npos);
}

// --- determinism-rand -----------------------------------------------------

TEST(NymlintRules, FlagsStdRand) {
  EXPECT_TRUE(Fired(LintOne("src/demo.cc", "int x = std::rand();\n"), "determinism-rand"));
  EXPECT_TRUE(Fired(LintOne("bench/demo.cc", "int x = rand();\n"), "determinism-rand"));
  EXPECT_TRUE(Fired(LintOne("tests/demo.cc", "std::random_device rd;\n"), "determinism-rand"));
}

TEST(NymlintRules, FlagsRandomHeaderInclude) {
  EXPECT_TRUE(Fired(LintOne("src/demo.cc", "#include <random>\n"), "determinism-rand"));
}

TEST(NymlintRules, IgnoresRandInForeignNamespace) {
  EXPECT_FALSE(Fired(LintOne("src/demo.cc", "int x = mylib::rand();\n"), "determinism-rand"));
  EXPECT_FALSE(Fired(LintOne("src/demo.cc", "int x = obj.rand();\n"), "determinism-rand"));
}

// --- determinism-wallclock ------------------------------------------------

TEST(NymlintRules, FlagsWallClocks) {
  EXPECT_TRUE(Fired(LintOne("src/demo.cc", "auto t = std::chrono::steady_clock::now();\n"),
                    "determinism-wallclock"));
  EXPECT_TRUE(Fired(LintOne("src/demo.cc", "auto t = time(nullptr);\n"),
                    "determinism-wallclock"));
}

TEST(NymlintRules, ClockAccessorDeclarationIsNotACall) {
  // `SimClock& clock()` declares an accessor; `loop.clock()` calls it.
  // Neither reads the host clock.
  LintResult result = LintOne("src/demo.h", R"cc(#ifndef DEMO_H_
#define DEMO_H_
class EventLoop {
 public:
  SimClock& clock() { return clock_; }
};
inline SimTime Now(EventLoop& loop) { return loop.clock().now(); }
#endif
)cc");
  EXPECT_FALSE(Fired(result, "determinism-wallclock"));
}

TEST(NymlintRules, WallclockRuleDoesNotApplyToTests) {
  EXPECT_FALSE(Fired(LintOne("tests/demo.cc", "auto t = std::chrono::steady_clock::now();\n"),
                     "determinism-wallclock"));
}

// --- determinism-env ------------------------------------------------------

TEST(NymlintRules, FlagsGetenvEverywhere) {
  EXPECT_TRUE(Fired(LintOne("src/demo.cc", "const char* home = getenv(\"HOME\");\n"),
                    "determinism-env"));
  EXPECT_TRUE(Fired(LintOne("tools/demo.cc", "const char* home = std::getenv(\"HOME\");\n"),
                    "determinism-env"));
}

// --- determinism-unordered-container --------------------------------------

TEST(NymlintRules, FlagsUnorderedContainersOnlyInSrc) {
  EXPECT_TRUE(Fired(LintOne("src/demo.cc", "std::unordered_map<int, int> m;\n"),
                    "determinism-unordered-container"));
  EXPECT_FALSE(Fired(LintOne("tests/demo.cc", "std::unordered_map<int, int> m;\n"),
                     "determinism-unordered-container"));
}

// --- determinism-pointer-key ----------------------------------------------

TEST(NymlintRules, FlagsPointerKeyedMap) {
  EXPECT_TRUE(Fired(LintOne("src/demo.cc", "std::map<Link*, bool> links;\n"),
                    "determinism-pointer-key"));
  EXPECT_TRUE(Fired(LintOne("src/demo.cc", "std::set<Node*> nodes;\n"),
                    "determinism-pointer-key"));
}

TEST(NymlintRules, FlagsPointerBuriedInTupleKey) {
  EXPECT_TRUE(
      Fired(LintOne("src/demo.cc", "std::map<std::tuple<Link*, Port>, Port> m;\n"),
            "determinism-pointer-key"));
}

TEST(NymlintRules, ExplicitComparatorClearsPointerKey) {
  EXPECT_FALSE(Fired(LintOne("src/demo.cc", "std::map<Link*, bool, LinkIdLess> links;\n"),
                     "determinism-pointer-key"));
}

TEST(NymlintRules, PointerValueIsFine) {
  EXPECT_FALSE(Fired(LintOne("src/demo.cc", "std::map<std::string, Link*> by_name;\n"),
                     "determinism-pointer-key"));
}

TEST(NymlintRules, DirtyTrackingStateShapePassesClean) {
  // The incremental FlowScheduler's dirty-tracking state (src/net/flow.h):
  // pointer-keyed containers with the stable-id comparator, plus an id-set.
  // This is the sanctioned shape for membership indexes over Link*; the
  // fixture pins that the linter keeps accepting it (and keeps rejecting
  // the comparator-free spelling someone will eventually "simplify" it to).
  const std::string sanctioned =
      "std::map<Link*, LinkState, LinkIdLess> link_states_;\n"
      "std::set<Link*, LinkIdLess> dirty_links_;\n"
      "std::map<uint64_t, TrackedMemory> tracked_;\n";
  EXPECT_TRUE(LintOne("src/net/flow.cc", sanctioned).diagnostics.empty());
  EXPECT_TRUE(Fired(LintOne("src/net/flow.cc", "std::set<Link*> dirty_links_;\n"),
                    "determinism-pointer-key"));
  EXPECT_TRUE(
      Fired(LintOne("src/net/flow.cc", "std::unordered_set<Link*> dirty_links_;\n"),
            "determinism-unordered-container"));
}

// --- sim-thread / thread-confinement --------------------------------------

TEST(NymlintRules, FlagsThreadingPrimitivesInBench) {
  EXPECT_TRUE(Fired(LintOne("bench/demo.cc", "std::thread worker([] {});\n"), "sim-thread"));
  EXPECT_TRUE(Fired(LintOne("bench/demo.cc", "std::mutex mu;\n"), "sim-thread"));
  EXPECT_TRUE(
      Fired(LintOne("bench/demo.cc", "std::this_thread::sleep_for(delay);\n"), "sim-thread"));
  EXPECT_TRUE(Fired(LintOne("bench/demo.cc", "#include <mutex>\n"), "sim-thread"));
}

TEST(NymlintRules, ThreadConfinementFlagsSrcAndTests) {
  // src/ and tests/ are covered by thread-confinement, not sim-thread.
  EXPECT_TRUE(
      Fired(LintOne("src/demo.cc", "std::thread worker([] {});\n"), "thread-confinement"));
  EXPECT_FALSE(Fired(LintOne("src/demo.cc", "std::thread worker([] {});\n"), "sim-thread"));
  EXPECT_TRUE(Fired(LintOne("src/net/demo.cc", "std::mutex mu;\n"), "thread-confinement"));
  EXPECT_TRUE(Fired(LintOne("tests/demo_test.cc", "std::atomic<int> n{0};\n"),
                    "thread-confinement"));
  EXPECT_TRUE(
      Fired(LintOne("src/demo.cc", "#include <atomic>\n"), "thread-confinement"));
  EXPECT_TRUE(Fired(LintOne("src/demo.cc", "unsigned n = hardware_concurrency();\n"),
                    "thread-confinement"));
}

TEST(NymlintRules, ThreadConfinementExemptsParallelAndUtil) {
  // The two sanctioned homes of real concurrency lint clean by path.
  EXPECT_FALSE(Fired(LintOne("src/parallel/demo.cc", "std::thread worker([] {});\n"),
                     "thread-confinement"));
  EXPECT_FALSE(Fired(LintOne("src/parallel/demo.cc", "#include <mutex>\n"),
                     "thread-confinement"));
  EXPECT_FALSE(Fired(LintOne("src/util/thread_pool.cc", "std::condition_variable cv;\n"),
                     "thread-confinement"));
  // A lookalike prefix must NOT inherit the exemption.
  EXPECT_TRUE(Fired(LintOne("src/parallel_widgets/demo.cc", "std::mutex mu;\n"),
                    "thread-confinement"));
}

TEST(NymlintRules, ThreadWordInOtherIdentifiersIsFine) {
  // Substrings must not match: AddAsyncBegin is not `async`.
  EXPECT_FALSE(Fired(LintOne("src/demo.cc", "tracer->AddAsyncBegin(\"net\", name, id, ts);\n"),
                     "thread-confinement"));
  EXPECT_FALSE(Fired(LintOne("src/demo.cc", "int thread_count = 0;\n"), "thread-confinement"));
  // ThreadPool's own API surface is fine to *use* anywhere.
  EXPECT_FALSE(Fired(LintOne("src/demo.cc", "int n = ThreadPool::HardwareThreads();\n"),
                     "thread-confinement"));
}

// --- store-raw-io ---------------------------------------------------------

TEST(NymlintRules, FlagsRawFileIoOutsideStore) {
  EXPECT_TRUE(Fired(LintOne("src/obs/demo.cc", "std::ofstream out(path);\n"), "store-raw-io"));
  EXPECT_TRUE(Fired(LintOne("src/net/demo.cc", "#include <fstream>\n"), "store-raw-io"));
  EXPECT_TRUE(
      Fired(LintOne("src/core/demo.cc", "FILE* fh = fopen(path, \"rb\");\n"), "store-raw-io"));
  EXPECT_TRUE(Fired(LintOne("tests/demo_test.cc", "std::ifstream in(path);\n"), "store-raw-io"));
}

TEST(NymlintRules, StoreAndStorageOwnRawFileIo) {
  // The sanctioned persistence layer lints clean by path...
  EXPECT_FALSE(Fired(LintOne("src/store/file_io.cc",
                             "std::ifstream in(path, std::ios::binary);\n"),
                     "store-raw-io"));
  EXPECT_FALSE(Fired(LintOne("src/storage/local_store.cc", "#include <fstream>\n"),
                     "store-raw-io"));
  // ...but a lookalike directory prefix does not inherit the exemption.
  EXPECT_TRUE(
      Fired(LintOne("src/storefront/demo.cc", "std::ofstream out(path);\n"), "store-raw-io"));
}

TEST(NymlintRules, RawIoExemptsBenchAndToolsByScope) {
  // bench/ and tools/ are leaf consumers writing reports, not simulator
  // state; the rule's scope mask leaves them alone.
  EXPECT_FALSE(Fired(LintOne("bench/demo.cc", "std::ofstream out(path);\n"), "store-raw-io"));
  EXPECT_FALSE(
      Fired(LintOne("tools/demo.cc", "FILE* fh = fopen(path, \"rb\");\n"), "store-raw-io"));
}

TEST(NymlintRules, RawIoLookalikesAreFine) {
  // Identifiers that merely contain the banned names must not match.
  EXPECT_FALSE(Fired(LintOne("src/demo.cc", "int file_count = fopen_count;\n"), "store-raw-io"));
  EXPECT_FALSE(Fired(LintOne("src/demo.cc", "Status WriteFile(const std::string& path);\n"),
                     "store-raw-io"));
  // file_io.h's own API is fine to use anywhere — that is the point.
  EXPECT_FALSE(Fired(LintOne("src/demo.cc", "auto data = ReadFileBytes(path);\n"),
                     "store-raw-io"));
}

TEST(NymlintSuppress, StoreRawIoAllowIsHonored) {
  LintResult result = LintOne("src/obs/demo.cc",
                              "// nymlint:allow(store-raw-io): golden corpus writer\n"
                              "std::ofstream out(path);\n");
  EXPECT_FALSE(Fired(result, "store-raw-io"));
  EXPECT_FALSE(Fired(result, "suppression-unused"));
}

// --- error-throw ----------------------------------------------------------

TEST(NymlintRules, FlagsThrowAndAbort) {
  EXPECT_TRUE(Fired(LintOne("src/demo.cc", "void F() { throw 1; }\n"), "error-throw"));
  EXPECT_TRUE(Fired(LintOne("src/demo.cc", "void F() { std::abort(); }\n"), "error-throw"));
}

TEST(NymlintRules, CheckHeaderMayAbort) {
  EXPECT_FALSE(Fired(LintOne("src/util/check.h", R"cc(#ifndef CHECK_H_
#define CHECK_H_
#define MY_CHECK(c) do { if (!(c)) std::abort(); } while (0)
#endif
)cc"),
                     "error-throw"));
}

// --- error-ignored-status -------------------------------------------------

constexpr const char* kStatusApiHeader = R"cc(#ifndef API_H_
#define API_H_
Status WriteThing(int x);
#endif
)cc";

TEST(NymlintRules, FlagsDiscardedStatusCall) {
  LintResult result = RunLint({
      SourceFile{"src/api.h", kStatusApiHeader},
      SourceFile{"src/use.cc", "void F() { WriteThing(1); }\n"},
  });
  ASSERT_TRUE(Fired(result, "error-ignored-status"));
  EXPECT_EQ(result.diagnostics[0].path, "src/use.cc");
}

TEST(NymlintRules, FlagsDiscardedMemberStatusCall) {
  LintResult result = RunLint({
      SourceFile{"src/api.h", kStatusApiHeader},
      SourceFile{"src/use.cc", "void F(Api& api) { api.WriteThing(1); }\n"},
  });
  EXPECT_TRUE(Fired(result, "error-ignored-status"));
}

TEST(NymlintRules, HandledStatusIsFine) {
  LintResult result = RunLint({
      SourceFile{"src/api.h", kStatusApiHeader},
      SourceFile{"src/use.cc", R"cc(
Status F() {
  Status s = WriteThing(1);
  if (!s.ok()) { return s; }
  NYMIX_RETURN_IF_ERROR(WriteThing(2));
  (void)WriteThing(3);
  return WriteThing(4);
}
)cc"},
  });
  EXPECT_FALSE(Fired(result, "error-ignored-status"));
}

TEST(NymlintRules, DeclarationIsNotACall) {
  LintResult result = RunLint({SourceFile{"src/api.h", kStatusApiHeader}});
  EXPECT_FALSE(Fired(result, "error-ignored-status"));
}

// --- include hygiene ------------------------------------------------------

TEST(NymlintRules, FlagsMissingIncludeGuard) {
  EXPECT_TRUE(Fired(LintOne("src/demo.h", "int x = 0;\n"), "include-guard"));
  EXPECT_TRUE(Fired(LintOne("src/demo.h", "#include <string>\nint x;\n"), "include-guard"));
  EXPECT_TRUE(Fired(LintOne("src/demo.h", "#ifndef A_H_\nint x;\n#endif\n"), "include-guard"));
}

TEST(NymlintRules, AcceptsBothGuardStyles) {
  EXPECT_FALSE(Fired(LintOne("src/demo.h", "#ifndef D_H_\n#define D_H_\n#endif  // D_H_\n"),
                     "include-guard"));
  EXPECT_FALSE(Fired(LintOne("src/demo.h", "#pragma once\nint x = 0;\n"), "include-guard"));
  // Leading comments before the guard are fine.
  EXPECT_FALSE(Fired(LintOne("src/demo.h", "// Doc.\n#ifndef D_H_\n#define D_H_\n#endif\n"),
                     "include-guard"));
}

TEST(NymlintRules, GuardRuleIgnoresSourceFiles) {
  EXPECT_FALSE(Fired(LintOne("src/demo.cc", "int x = 0;\n"), "include-guard"));
}

TEST(NymlintRules, FlagsUsingNamespaceInHeaderOnly) {
  EXPECT_TRUE(Fired(LintOne("src/demo.h",
                            "#pragma once\nusing namespace std;\n"),
                    "using-namespace-header"));
  EXPECT_FALSE(Fired(LintOne("src/demo.cc", "using namespace std;\n"),
                     "using-namespace-header"));
}

// --- fuzz-entropy ----------------------------------------------------------

TEST(NymlintRules, FlagsAmbientSeedOutsideFuzzEntropy) {
  // The sanctioned escape hatch used anywhere else makes a run unreplayable.
  EXPECT_TRUE(Fired(LintOne("src/core/demo.cc", "uint64_t s = AmbientSeed();\n"),
                    "fuzz-entropy"));
  EXPECT_TRUE(Fired(LintOne("tests/demo.cc", "uint64_t s = nymix::AmbientSeed();\n"),
                    "fuzz-entropy"));
  EXPECT_TRUE(Fired(LintOne("src/fuzz/generator.cc", "uint64_t s = AmbientSeed();\n"),
                    "fuzz-entropy"));
}

TEST(NymlintRules, AmbientSeedAllowedInEntropyAndTools) {
  // Its own definition and the nymfuzz --seed=random path, which prints the
  // chosen seed so the run still replays.
  EXPECT_FALSE(Fired(LintOne("src/fuzz/entropy.cc", "uint64_t s = AmbientSeed();\n"),
                     "fuzz-entropy"));
  EXPECT_FALSE(Fired(LintOne("tools/nymfuzz.cc", "uint64_t s = nymix::AmbientSeed();\n"),
                     "fuzz-entropy"));
}

TEST(NymlintRules, AmbientSeedLookalikesAreFine) {
  // Member calls and declarations are not ambient reads.
  EXPECT_FALSE(Fired(LintOne("src/core/demo.cc", "uint64_t s = source.AmbientSeed();\n"),
                     "fuzz-entropy"));
  EXPECT_FALSE(Fired(LintOne("src/core/demo.h",
                             "#pragma once\nuint64_t AmbientSeed();\n"),
                     "fuzz-entropy"));
}

// --- suppressions ---------------------------------------------------------

TEST(NymlintSuppress, TrailingAllowSuppresses) {
  LintResult result = LintOne(
      "src/demo.cc",
      "int x = std::rand();  // nymlint:allow(determinism-rand): fixture exercising the rule\n");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.suppressions_used, 1u);
}

TEST(NymlintSuppress, PrecedingLineAllowSuppresses) {
  LintResult result = LintOne("src/demo.cc", R"cc(
// nymlint:allow(determinism-rand): fixture exercising the rule
int x = std::rand();
)cc");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(NymlintSuppress, FileLevelAllowSuppressesEverywhere) {
  LintResult result = LintOne("src/demo.cc", R"cc(
// nymlint:allow-file(determinism-rand): fixture; the whole file draws lots
int a = std::rand();
int b = std::rand();
int c = std::rand();
)cc");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.suppressions_used, 3u);
}

TEST(NymlintSuppress, AllowListCoversMultipleRules) {
  LintResult result = LintOne(
      "src/demo.cc",
      "int x = std::rand() + time(nullptr);  "
      "// nymlint:allow(determinism-rand, determinism-wallclock): fixture for the comma list\n");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(NymlintSuppress, ReasonIsMandatory) {
  LintResult result =
      LintOne("src/demo.cc", "int x = std::rand();  // nymlint:allow(determinism-rand)\n");
  EXPECT_TRUE(Fired(result, "suppression-missing-reason"));
  // The violation itself is still suppressed; only the hygiene failure fires.
  EXPECT_FALSE(Fired(result, "determinism-rand"));
}

TEST(NymlintSuppress, UnknownRuleIsReported) {
  LintResult result = LintOne(
      "src/demo.cc", "int x = 0;  // nymlint:allow(no-such-rule): reason that is long enough\n");
  EXPECT_TRUE(Fired(result, "suppression-unknown-rule"));
}

TEST(NymlintSuppress, UnusedSuppressionIsReported) {
  LintResult result = LintOne(
      "src/demo.cc", "int x = 0;  // nymlint:allow(determinism-rand): nothing random here\n");
  EXPECT_TRUE(Fired(result, "suppression-unused"));
}

TEST(NymlintSuppress, SuppressionDoesNotLeakToDistantLines) {
  LintResult result = LintOne("src/demo.cc", R"cc(
int a = std::rand();  // nymlint:allow(determinism-rand): this draw is fixture data
int unrelated = 0;
int b = std::rand();
)cc");
  EXPECT_TRUE(Fired(result, "determinism-rand"));
  EXPECT_EQ(result.suppressions_used, 1u);
}

TEST(NymlintSuppress, ProseMentionIsNotASuppression) {
  // A comment *describing* the marker (text before it on the line) must not
  // suppress anything or count as a suppression at all.
  LintResult result = LintOne(
      "src/demo.cc",
      "// to silence, write nymlint:allow(determinism-rand): and a reason\nint x = std::rand();\n");
  EXPECT_TRUE(Fired(result, "determinism-rand"));
}

// --- scopes and reports ---------------------------------------------------

TEST(NymlintDriver, FilesOutsideKnownRootsAreSkipped) {
  LintResult result = LintOne("third_party/demo.cc", "int x = std::rand();\n");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.files_scanned, 0u);
}

TEST(NymlintDriver, DiagnosticsAreSortedAndAnchored) {
  LintResult result = LintOne("src/demo.cc", "int a = std::rand();\nint b = std::rand();\n");
  ASSERT_EQ(result.diagnostics.size(), 2u);
  EXPECT_EQ(result.diagnostics[0].line, 1);
  EXPECT_EQ(result.diagnostics[1].line, 2);
  EXPECT_GT(result.diagnostics[0].col, 0);
}

TEST(NymlintDriver, JsonReportIsWellFormed) {
  LintResult result = LintOne("src/demo.cc", "int a = std::rand();\n");
  std::ostringstream out;
  WriteJsonReport(result, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"violation_count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"determinism-rand\""), std::string::npos);
  EXPECT_NE(json.find("\"path\": \"src/demo.cc\""), std::string::npos);
}

TEST(NymlintDriver, HumanReportNamesFileLineAndRule) {
  LintResult result = LintOne("src/demo.cc", "int a = std::rand();\n");
  std::ostringstream out;
  WriteHumanReport(result, out);
  EXPECT_NE(out.str().find("src/demo.cc:1:"), std::string::npos);
  EXPECT_NE(out.str().find("[determinism-rand]"), std::string::npos);
}

TEST(NymlintDriver, EveryRuleNameIsKnown) {
  for (const RuleInfo& rule : AllRules()) {
    EXPECT_TRUE(IsKnownRule(rule.name));
  }
  EXPECT_FALSE(IsKnownRule("not-a-rule"));
}

}  // namespace
}  // namespace nymlint
