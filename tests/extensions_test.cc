// Tests for the §4.1 DNS path, the §3.4 memory-remanence model, and the
// fingerprint-surprisal metric.
#include <gtest/gtest.h>

#include "src/core/metrics.h"
#include "src/core/testbed.h"

namespace nymix {
namespace {

// ---------------------------------------------------------------- DnsProxy

TEST(DnsProxyTest, TransportSelectionMatchesPaper) {
  // §4.1: Tor has a built-in DNS server; Dissent supports UDP; others need
  // UDP->TCP conversion.
  EXPECT_EQ(DnsProxy::TransportFor(AnonymizerKind::kTor),
            DnsProxy::Transport::kAnonymizerNative);
  EXPECT_EQ(DnsProxy::TransportFor(AnonymizerKind::kDissent),
            DnsProxy::Transport::kUdpProxy);
  EXPECT_EQ(DnsProxy::TransportFor(AnonymizerKind::kIncognito),
            DnsProxy::Transport::kUdpProxy);
  EXPECT_EQ(DnsProxy::TransportFor(AnonymizerKind::kSweet),
            DnsProxy::Transport::kUdpToTcpConversion);
  EXPECT_EQ(DnsProxy::TransportFor(AnonymizerKind::kChained),
            DnsProxy::Transport::kUdpToTcpConversion);
}

TEST(DnsProxyTest, ResolvesThroughNymAndCaches) {
  Testbed bed(1);
  Nym* nym = bed.CreateNymBlocking("resolver");
  ASSERT_NE(nym->dns(), nullptr);
  EXPECT_EQ(nym->dns()->transport(), DnsProxy::Transport::kAnonymizerNative);

  Result<Ipv4Address> first = InternalError("pending");
  bool done = false;
  SimTime t0 = bed.sim().now();
  nym->dns()->Resolve("twitter.com", [&](Result<Ipv4Address> r) {
    first = std::move(r);
    done = true;
  });
  bed.sim().RunUntil([&] { return done; });
  ASSERT_TRUE(first.ok());
  SimDuration cold_latency = bed.sim().now() - t0;
  EXPECT_GT(cold_latency, Millis(100));

  // Second query: answered from cache, near-instant, same answer.
  done = false;
  Result<Ipv4Address> second = InternalError("pending");
  t0 = bed.sim().now();
  nym->dns()->Resolve("twitter.com", [&](Result<Ipv4Address> r) {
    second = std::move(r);
    done = true;
  });
  bed.sim().RunUntil([&] { return done; });
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *first);
  EXPECT_LT(bed.sim().now() - t0, Millis(1));
  EXPECT_EQ(nym->dns()->queries(), 2u);
  EXPECT_EQ(nym->dns()->cache_hits(), 1u);
  EXPECT_EQ(nym->dns()->direct_leaks(), 0u);
}

TEST(DnsProxyTest, NxdomainPropagatesAndIsNotCached) {
  Testbed bed(2);
  Nym* nym = bed.CreateNymBlocking("resolver");
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool done = false;
    nym->dns()->Resolve("no-such-host.example", [&](Result<Ipv4Address> r) {
      EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
      done = true;
    });
    bed.sim().RunUntil([&] { return done; });
  }
  EXPECT_EQ(nym->dns()->cache_hits(), 0u);
}

TEST(DnsProxyTest, ConversionPathCountsAndCostsMore) {
  Testbed bed(3);
  NymManager::CreateOptions options;
  options.anonymizer = AnonymizerKind::kSweet;
  Nym* sweet_nym = bed.CreateNymBlocking("sweet", options);
  EXPECT_EQ(sweet_nym->dns()->transport(), DnsProxy::Transport::kUdpToTcpConversion);

  SimTime t0 = bed.sim().now();
  bool done = false;
  sweet_nym->dns()->Resolve("bbc.co.uk", [&](Result<Ipv4Address> r) {
    EXPECT_TRUE(r.ok());
    done = true;
  });
  bed.sim().RunUntil([&] { return done; });
  SimDuration conversion_latency = bed.sim().now() - t0;
  EXPECT_EQ(sweet_nym->dns()->conversions(), 1u);

  Nym* tor_nym = bed.CreateNymBlocking("tor");
  t0 = bed.sim().now();
  done = false;
  tor_nym->dns()->Resolve("bbc.co.uk", [&](Result<Ipv4Address>) { done = true; });
  bed.sim().RunUntil([&] { return done; });
  EXPECT_LT(bed.sim().now() - t0, conversion_latency);
  EXPECT_EQ(tor_nym->dns()->conversions(), 0u);
}

TEST(DnsProxyTest, RefusesWhenAnonymizerNotReady) {
  // A proxy must fail closed, never fall back to a leaking direct query.
  Simulation sim(4);
  Link* uplink = sim.CreateLink("uplink", Millis(1), 10'000'000);
  sim.internet().AttachUplink(uplink);
  ClientAttachment attachment;
  attachment.sim = &sim;
  attachment.vm_uplink = uplink;
  attachment.client_links = {uplink};
  IncognitoVpn vpn(attachment);  // never Start()ed
  DnsProxy proxy(sim, &vpn, DnsProxy::Transport::kUdpProxy);
  bool done = false;
  proxy.Resolve("x.example", [&](Result<Ipv4Address> r) {
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
    done = true;
  });
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------------- Remanence

TEST(RemanenceTest, SecureWipeLeavesNothingForColdBoot) {
  Testbed bed(5);
  Nym* nym = bed.CreateNymBlocking("wiped");
  ASSERT_TRUE(bed.VisitBlocking(nym, bed.sites().ByName("Gmail")).ok());
  ASSERT_TRUE(bed.manager().TerminateNym(nym).ok());
  // A live-confiscation adversary scanning free host RAM finds nothing.
  EXPECT_EQ(bed.host().ColdBootScanBytes(), 0u);
}

TEST(RemanenceTest, ConventionalShutdownLeavesResidue) {
  // Counterfactual: destroying VMs without the wipe (what non-Nymix
  // hypervisors do) leaves the guest's dirty pages scannable — the Dunn
  // et al. remanence the paper cites.
  Simulation sim(6);
  HostMachine host(sim, HostConfig{});
  auto image = BaseImage::CreateDistribution("nymix", 42, 64 * kMiB);
  auto vm = host.CreateVm(VmConfig::AnonVm("leaky"), image, nullptr);
  ASSERT_TRUE(vm.ok());
  (*vm)->Boot(nullptr);
  sim.loop().RunUntilIdle();
  ASSERT_TRUE((*vm)->disk().WriteFile("/home/user/secret", Blob::Synthetic(4 * kMiB, 1)).ok());
  uint64_t dirty_bytes = (*vm)->memory().unique_pages() * kPageSize;
  ASSERT_TRUE(host.DestroyVm(*vm, /*secure_wipe=*/false).ok());
  EXPECT_EQ(host.ColdBootScanBytes(), dirty_bytes + 4 * kMiB);
  host.ScrubFreeMemory();
  EXPECT_EQ(host.ColdBootScanBytes(), 0u);
}

// ---------------------------------------------------------------- Guard lifetime

TEST(GuardLifetimeTest, ExpiredGuardIsRedrawnFreshOneKept) {
  Testbed bed(20);
  ASSERT_TRUE(bed.cloud().CreateAccount("u", "cp").ok());
  Nym* nym = bed.CreateNymBlocking("aging");
  auto* tor = static_cast<TorClient*>(nym->anonymizer());
  size_t original_guard = *tor->entry_guard_index();
  ASSERT_TRUE(bed.SaveBlocking(nym, "u", "cp", "np").ok());
  ASSERT_TRUE(bed.manager().TerminateNym(nym).ok());

  // Restore well within the lifetime: same guard.
  auto soon = bed.LoadBlocking("aging", "u", "cp", "np");
  ASSERT_TRUE(soon.ok());
  auto* tor_soon = static_cast<TorClient*>((*soon)->anonymizer());
  EXPECT_EQ(*tor_soon->entry_guard_index(), original_guard);
  ASSERT_TRUE(bed.SaveBlocking(*soon, "u", "cp", "np").ok());
  ASSERT_TRUE(bed.manager().TerminateNym(*soon).ok());

  // Jump virtual time past the ~3-month rotation period ([14, 20]).
  bed.sim().RunFor(Seconds(100LL * 24 * 3600));
  auto later = bed.LoadBlocking("aging", "u", "cp", "np");
  ASSERT_TRUE(later.ok());
  auto* tor_later = static_cast<TorClient*>((*later)->anonymizer());
  // The expired guard was re-drawn at bootstrap. (With 4 guards the fresh
  // draw may coincide; assert the mechanism via the chosen-at timestamp:
  // a kept guard would carry the old timestamp through SaveState.)
  MemFs state;
  ASSERT_TRUE(tor_later->SaveState(state).ok());
  std::string text =
      StringFromBytes(state.ReadFile("/var/lib/tor/state")->Materialize());
  size_t since_pos = text.find("guard-since=");
  ASSERT_NE(since_pos, std::string::npos);
  long long chosen_at = std::atoll(text.c_str() + since_pos + 12);
  EXPECT_GT(chosen_at, Seconds(100LL * 24 * 3600));
}

// ---------------------------------------------------------------- COW persistence

TEST(CowPersistenceTest, SnapshotRestoresOntoUnchangedDisk) {
  Testbed bed(21);
  InstalledOsNymService service(bed.manager());
  auto media = MakeInstalledOsMedia(InstalledOsKind::kWindows7, 9);
  Nym* nym = nullptr;
  bool done = false;
  service.BootAsNym(media, [&](Result<Nym*> n, InstalledOsReport) {
    nym = *n;
    done = true;
  });
  bed.sim().RunUntil([&] { return done; });
  ASSERT_TRUE(nym->anon_vm()
                  ->disk()
                  .WriteFile("/Users/user/draft.txt", Blob::FromString("wip"))
                  .ok());
  auto snapshot = SaveCowState(*nym, media);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(bed.manager().TerminateNym(nym).ok());

  // Boot again (no repair needed) and restore the COW state.
  done = false;
  service.BootAsNym(media, [&](Result<Nym*> n, InstalledOsReport) {
    nym = *n;
    done = true;
  });
  bed.sim().RunUntil([&] { return done; });
  EXPECT_FALSE(nym->anon_vm()->disk().fs().writable().Exists("/Users/user/draft.txt"));
  ASSERT_TRUE(RestoreCowState(*nym, media, *snapshot).ok());
  auto draft = nym->anon_vm()->disk().fs().ReadFile("/Users/user/draft.txt");
  ASSERT_TRUE(draft.ok());
  EXPECT_EQ(StringFromBytes(draft->Materialize()), "wip");
}

TEST(CowPersistenceTest, RefusesRestoreOntoChangedDisk) {
  Testbed bed(22);
  InstalledOsNymService service(bed.manager());
  auto media = MakeInstalledOsMedia(InstalledOsKind::kWindows7, 9);
  Nym* nym = nullptr;
  bool done = false;
  service.BootAsNym(media, [&](Result<Nym*> n, InstalledOsReport) {
    nym = *n;
    done = true;
  });
  bed.sim().RunUntil([&] { return done; });
  auto snapshot = SaveCowState(*nym, media);
  ASSERT_TRUE(snapshot.ok());
  // The user boots Windows on bare metal and edits a document (§3.7).
  ASSERT_TRUE(
      media.disk->WriteFile("/Users/user/Documents/new.doc", Blob::FromString("x")).ok());
  EXPECT_EQ(RestoreCowState(*nym, media, *snapshot).code(), StatusCode::kDataLoss);
}

TEST(CowPersistenceTest, FingerprintSensitivity) {
  auto a = MakeInstalledOsMedia(InstalledOsKind::kWindows7, 1);
  auto b = MakeInstalledOsMedia(InstalledOsKind::kWindows7, 1);
  EXPECT_EQ(DiskFingerprint(*a.disk), DiskFingerprint(*b.disk));
  ASSERT_TRUE(b.disk->WriteFile("/new-file", Blob::FromString("x")).ok());
  EXPECT_NE(DiskFingerprint(*a.disk), DiskFingerprint(*b.disk));
  ASSERT_TRUE(b.disk->Unlink("/new-file").ok());
  EXPECT_EQ(DiskFingerprint(*a.disk), DiskFingerprint(*b.disk));
}

// ---------------------------------------------------------------- Lifecycle fuzz

TEST(LifecycleFuzzTest, RandomOperationSequencesKeepInvariants) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Testbed bed(seed * 1000);
    ASSERT_TRUE(bed.cloud().CreateAccount("fuzz", "cp").ok());
    Prng prng(seed);
    std::vector<Nym*> live;
    std::set<std::string> saved;
    int created = 0;

    for (int step = 0; step < 25; ++step) {
      switch (prng.NextBelow(5)) {
        case 0: {  // create
          if (live.size() >= 6) {
            break;
          }
          Nym* nym = bed.CreateNymBlocking("fuzz-" + std::to_string(created++));
          live.push_back(nym);
          break;
        }
        case 1: {  // browse
          if (live.empty()) {
            break;
          }
          Nym* nym = live[prng.NextBelow(live.size())];
          auto sites = bed.sites().all();
          ASSERT_TRUE(bed.VisitBlocking(nym, *sites[prng.NextBelow(sites.size())]).ok());
          break;
        }
        case 2: {  // save
          if (live.empty()) {
            break;
          }
          Nym* nym = live[prng.NextBelow(live.size())];
          auto receipt = bed.SaveBlocking(nym, "fuzz", "cp", "np");
          ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
          saved.insert(nym->name());
          break;
        }
        case 3: {  // terminate
          if (live.empty()) {
            break;
          }
          size_t index = prng.NextBelow(live.size());
          ASSERT_TRUE(bed.manager().TerminateNym(live[index]).ok());
          live.erase(live.begin() + static_cast<long>(index));
          break;
        }
        case 4: {  // load a previously saved nym (if not currently live)
          if (saved.empty()) {
            break;
          }
          auto it = saved.begin();
          std::advance(it, prng.NextBelow(saved.size()));
          if (bed.manager().FindNym(*it) != nullptr) {
            break;
          }
          auto restored = bed.LoadBlocking(*it, "fuzz", "cp", "np");
          ASSERT_TRUE(restored.ok()) << restored.status().ToString();
          live.push_back(*restored);
          break;
        }
      }
      // Invariants after every step.
      ASSERT_EQ(bed.manager().nyms().size(), live.size());
      ASSERT_EQ(bed.host().vm_count(), 2 * live.size());
      ASSERT_LE(bed.host().UsedMemoryBytes(), bed.host().config().ram_bytes);
    }
    // Drain and verify full cleanup.
    for (Nym* nym : live) {
      ASSERT_TRUE(bed.manager().TerminateNym(nym).ok());
    }
    bed.host().ksm().ScanNow();
    EXPECT_EQ(bed.host().UsedMemoryBytes(), bed.host().config().baseline_bytes);
    EXPECT_EQ(bed.host().ColdBootScanBytes(), 0u);
  }
}

// ---------------------------------------------------------------- Fingerprint bits

TEST(FingerprintBitsTest, HomogeneousPopulationCarriesZeroBits) {
  Testbed bed(7);
  Nym* a = bed.CreateNymBlocking("a");
  Nym* b = bed.CreateNymBlocking("b");
  std::vector<FingerprintSurface> population = {FingerprintOf(*a->anon_vm()),
                                                FingerprintOf(*b->anon_vm())};
  EXPECT_DOUBLE_EQ(FingerprintSurprisalBits(population, population[0]), 0.0);
}

TEST(FingerprintBitsTest, DiversePopulationCarriesManyBits) {
  Prng prng(8);
  auto population = SyntheticNativePopulation(4096, prng);
  double bits = FingerprintSurprisalBits(population, population[17]);
  // Random MACs make most fingerprints unique: ~log2(4096) = 12 bits.
  EXPECT_GT(bits, 10.0);
  EXPECT_LE(bits, 13.0);
}

TEST(FingerprintBitsTest, UnknownFingerprintMaximallySurprising) {
  Prng prng(9);
  auto population = SyntheticNativePopulation(100, prng);
  FingerprintSurface alien;
  alien.cpu_model = "Quantum9000";
  alien.resolution = "640x480";
  alien.mac = "de:ad:be:ef:00:01";
  alien.visible_cpus = 128;
  EXPECT_GT(FingerprintSurprisalBits(population, alien), 6.0);
  EXPECT_DOUBLE_EQ(FingerprintSurprisalBits({}, alien), 0.0);
}

}  // namespace
}  // namespace nymix
