// Property suite for the parallel sharded executor (src/parallel): for a
// fixed (seed, shard count, scenario), the merged trace JSON and metrics
// dump must be BYTE-identical at every thread count. Two storm generators
// drive the sweep:
//   * net storms — random cross-shard channel topologies with fault
//     profiles, echo ping-pong traffic, shard-local flow competition and
//     link flaps, swept over >= 20 seeds at 1/2/4/8 threads;
//   * fleet churn storms — full nym lifecycle (boot, Tor, visits,
//     terminate + replace) through ShardedFleet.
// Identity is compared as whole strings: one reordered event, one float
// summed in a different order, one racing counter — anything — fails the
// diff. The cross-delivery assertions keep the property non-vacuous.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/fleet.h"
#include "src/parallel/sharded_sim.h"
#include "src/util/thread_pool.h"

namespace nymix {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool unit tests

TEST(ThreadPoolTest, InlinePoolRunsInOrderOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::vector<size_t> order;
  pool.RunIndexed(5, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 5u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  // Each index's slot is touched by exactly one worker (the RunIndexed
  // contract), so plain ints are race-free here.
  std::vector<int> hits(257, 0);
  pool.RunIndexed(hits.size(), [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<int> hits(16, 0);
    pool.RunIndexed(hits.size(), [&](size_t i) { ++hits[i]; });
    for (int h : hits) {
      ASSERT_EQ(h, 1);
    }
  }
}

TEST(ThreadPoolTest, EmptyBatchAndHardwareThreads) {
  ThreadPool pool(2);
  pool.RunIndexed(0, [&](size_t) { FAIL() << "no indexes to run"; });
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

// ---------------------------------------------------------------------------
// Net storms

// Replies to every packet until `deadline`, counting arrivals in the
// shard's metrics. All state is shard-local: the sink lives on the loop
// that owns its half-link.
class EchoSink : public PacketSink {
 public:
  EchoSink(EventLoop& loop, Link* out, std::string name, SimTime deadline)
      : loop_(loop), out_(out), name_(std::move(name)), deadline_(deadline) {}

  void Kick() { Send(); }

  void OnPacket(const Packet& packet, Link&, bool) override {
    (void)packet;
    if (MetricsRegistry* meters = loop_.meters()) {
      meters->GetCounter("storm.echo." + name_)->Increment();
    }
    if (TraceRecorder* tracer = loop_.tracer()) {
      tracer->AddInstant("storm", "echo:" + name_, name_, loop_.now());
    }
    if (loop_.now() < deadline_) {
      // Reply from a fresh event so a lossy pair can't recurse in zero time.
      loop_.ScheduleAfter(Millis(1), [this] { Send(); });
    }
  }

 private:
  void Send() {
    Packet packet;
    packet.payload = Bytes(64);
    packet.annotation = name_;
    out_->SendFromA(std::move(packet));
  }

  EventLoop& loop_;
  Link* out_;
  std::string name_;
  SimTime deadline_;
};

struct StormResult {
  std::string trace;
  std::string stats;
  uint64_t cross_deliveries = 0;
  uint64_t epochs = 0;
};

// Random cross-shard topology + faults + local flow churn, fully determined
// by (seed); `threads` must not change a byte of the outputs.
StormResult RunNetStorm(uint64_t seed, int threads) {
  Prng prng(Mix64(seed ^ 0x5702a11e1ULL));
  int shards = 2 + static_cast<int>(seed % 3);
  ShardedSimulation sharded(seed, ShardPlan{shards, threads});
  sharded.EnableObservability(/*record_wall_time=*/false);

  const SimTime deadline = Seconds(5);
  std::vector<std::unique_ptr<EchoSink>> sinks;

  int channel_count = 2 + static_cast<int>(prng.NextBelow(3));
  for (int c = 0; c < channel_count; ++c) {
    int a = static_cast<int>(prng.NextBelow(static_cast<uint64_t>(shards)));
    int b = (a + 1 + static_cast<int>(prng.NextBelow(static_cast<uint64_t>(shards - 1)))) %
            shards;
    SimDuration latency = Millis(1 + static_cast<SimDuration>(prng.NextBelow(15)));
    uint64_t bandwidth = (1 + prng.NextBelow(9)) * 1'000'000;
    CrossShardChannel* channel = sharded.CreateChannel(
        "storm-ch" + std::to_string(c), a, b, latency, bandwidth);
    if (prng.NextDouble() < 0.5) {
      LinkFaultProfile profile;
      profile.loss_probability = 0.05;
      profile.spike_probability = 0.10;
      profile.spike_latency = Millis(3);
      channel->SetFaultProfile(profile, Mix64(seed ^ static_cast<uint64_t>(c)));
    }
    auto sink_a = std::make_unique<EchoSink>(sharded.shard(a).loop(), channel->a_end(),
                                             "ch" + std::to_string(c) + ".a", deadline);
    auto sink_b = std::make_unique<EchoSink>(sharded.shard(b).loop(), channel->b_end(),
                                             "ch" + std::to_string(c) + ".b", deadline);
    channel->a_end()->AttachA(sink_a.get());
    channel->b_end()->AttachA(sink_b.get());
    EchoSink* kick_a = sink_a.get();
    EchoSink* kick_b = sink_b.get();
    sharded.shard(a).loop().ScheduleAt(
        Millis(static_cast<SimDuration>(prng.NextBelow(50))), [kick_a] { kick_a->Kick(); });
    sharded.shard(b).loop().ScheduleAt(
        Millis(static_cast<SimDuration>(prng.NextBelow(50))), [kick_b] { kick_b->Kick(); });
    sinks.push_back(std::move(sink_a));
    sinks.push_back(std::move(sink_b));
  }

  // Shard-local churn: competing flows over a two-link route, with a mid-run
  // link flap on some shards.
  for (int s = 0; s < shards; ++s) {
    Simulation& sim = sharded.shard(s);
    Link* first = sim.CreateLink("s" + std::to_string(s) + "-l0", Millis(2), 8'000'000);
    Link* second = sim.CreateLink("s" + std::to_string(s) + "-l1", Millis(3), 6'000'000);
    int flow_count = 1 + static_cast<int>(prng.NextBelow(4));
    for (int f = 0; f < flow_count; ++f) {
      uint64_t bytes = 100'000 + prng.NextBelow(400'000);
      Simulation* sim_ptr = &sim;
      sim.flows().StartFlow(Route::Through({first, second}), bytes, 1.1,
                            [sim_ptr](SimTime) {
                              if (MetricsRegistry* meters = sim_ptr->loop().meters()) {
                                meters->GetCounter("storm.flows_done")->Increment();
                              }
                            });
    }
    if (prng.NextDouble() < 0.5) {
      SimTime down_at = Millis(200 + static_cast<SimDuration>(prng.NextBelow(800)));
      sim.loop().ScheduleAt(down_at, [first] { first->SetDown(true); });
      sim.loop().ScheduleAt(down_at + Millis(150), [first] { first->SetDown(false); });
    }
  }

  sharded.RunUntilIdle();
  sharded.MergeObservability();

  StormResult result;
  result.trace = sharded.merged().trace.ToChromeJson();
  std::ostringstream stats;
  sharded.merged().metrics.WriteJson(stats);
  result.stats = stats.str();
  result.cross_deliveries = sharded.cross_deliveries();
  result.epochs = sharded.epochs();
  return result;
}

TEST(ParallelEquivalenceTest, NetStormSeedSweep) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    StormResult base = RunNetStorm(seed, /*threads=*/1);
    // Non-vacuous: the topology actually exercised the cross-shard path,
    // over multiple synchronization epochs.
    ASSERT_GT(base.cross_deliveries, 0u) << "seed " << seed;
    ASSERT_GT(base.epochs, 1u) << "seed " << seed;
    for (int threads : {2, 4, 8}) {
      StormResult other = RunNetStorm(seed, threads);
      ASSERT_EQ(base.trace, other.trace)
          << "trace diverged: seed " << seed << " threads " << threads;
      ASSERT_EQ(base.stats, other.stats)
          << "stats diverged: seed " << seed << " threads " << threads;
      ASSERT_EQ(base.cross_deliveries, other.cross_deliveries);
      ASSERT_EQ(base.epochs, other.epochs);
    }
  }
}

// ---------------------------------------------------------------------------
// Fleet churn storms

StormResult RunFleetStorm(uint64_t seed, int threads) {
  ShardedSimulation sharded(seed, ShardPlan{2 + static_cast<int>(seed % 2), threads});
  sharded.EnableObservability(/*record_wall_time=*/false);
  FleetOptions options;
  options.nym_count = 4 + static_cast<int>(seed % 5);
  options.nyms_per_host = 2;
  ShardedFleet fleet(sharded, options, seed);
  fleet.Run();
  sharded.MergeObservability();

  StormResult result;
  result.trace = sharded.merged().trace.ToChromeJson();
  std::ostringstream stats;
  sharded.merged().metrics.WriteJson(stats);
  result.stats = stats.str();
  result.epochs = sharded.epochs();
  // Fold the fleet's own aggregates into the identity surface too.
  std::ostringstream extra;
  FleetKsmStats ksm = fleet.ReconcileKsm();
  extra << fleet.visits() << "/" << fleet.churns() << "/" << ksm.pages_sharing << "/"
        << ksm.cross_host_extra_sharing();
  result.stats += extra.str();
  return result;
}

TEST(ParallelEquivalenceTest, FleetChurnSeedSweep) {
  for (uint64_t seed : {7u, 21u, 42u}) {
    StormResult base = RunFleetStorm(seed, /*threads=*/1);
    for (int threads : {2, 4, 8}) {
      StormResult other = RunFleetStorm(seed, threads);
      ASSERT_EQ(base.trace, other.trace)
          << "trace diverged: seed " << seed << " threads " << threads;
      ASSERT_EQ(base.stats, other.stats)
          << "stats diverged: seed " << seed << " threads " << threads;
    }
  }
}

// Repeating the same (seed, threads) run must also be bit-stable — guards
// against leftover process-wide state (the old static id counters).
TEST(ParallelEquivalenceTest, RepeatedRunsAreStable) {
  StormResult first = RunNetStorm(3, /*threads=*/4);
  StormResult second = RunNetStorm(3, /*threads=*/4);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.stats, second.stats);
}

// ---------------------------------------------------------------------------
// Send windows and placement (pure functions)

TEST(SendScheduleTest, NextSendWindow) {
  SendSchedule unconstrained;
  EXPECT_EQ(NextSendWindow(unconstrained, Millis(123)), Millis(123));

  SendSchedule windows{Seconds(5), Millis(2500)};
  EXPECT_EQ(NextSendWindow(windows, 0), Millis(2500));           // before phase
  EXPECT_EQ(NextSendWindow(windows, Millis(2500)), Millis(2500));  // exactly on it
  EXPECT_EQ(NextSendWindow(windows, Millis(2501)), Millis(7500));  // just past
  EXPECT_EQ(NextSendWindow(windows, Millis(7500)), Millis(7500));
  EXPECT_EQ(NextSendWindow(windows, Seconds(60)), Millis(62500));
}

TEST(ShardPlacementTest, LabelAndLookup) {
  ShardPlacement rr;
  EXPECT_TRUE(rr.empty());
  EXPECT_EQ(rr.Label(), "rr");
  EXPECT_EQ(rr.shard_for(5, 4), ShardForIndex(5, 4));

  ShardPlacement table;
  table.shard_of_host = {2, 0, 1};
  EXPECT_EQ(table.Label(), "2,0,1");
  EXPECT_EQ(table.shard_for(0, 3), 2);
  EXPECT_EQ(table.shard_for(2, 3), 1);
}

TEST(ShardPlacementTest, BalancedPlacementIsDeterministicAndBalanced) {
  std::vector<double> weights = {10, 1, 1, 1, 9, 1, 1, 8};
  ShardPlacement a = BalancedPlacement(weights, 3, 99);
  ShardPlacement b = BalancedPlacement(weights, 3, 99);
  ASSERT_EQ(a.shard_of_host, b.shard_of_host);  // pure function of inputs
  ASSERT_EQ(a.shard_of_host.size(), weights.size());
  // Greedy heaviest-first bin-pack: the three heavy hosts must land on
  // three distinct shards.
  EXPECT_NE(a.shard_of_host[0], a.shard_of_host[4]);
  EXPECT_NE(a.shard_of_host[0], a.shard_of_host[7]);
  EXPECT_NE(a.shard_of_host[4], a.shard_of_host[7]);
  std::vector<double> load(3, 0);
  for (size_t i = 0; i < weights.size(); ++i) {
    load[static_cast<size_t>(a.shard_of_host[i])] += weights[i];
  }
  double max_load = std::max({load[0], load[1], load[2]});
  double min_load = std::min({load[0], load[1], load[2]});
  // Round-robin by index would put 10+9 on shard 0 and 1 on shard 1 (19 vs
  // 3); the pack must do much better than that.
  EXPECT_LE(max_load - min_load, 4.0);

  // One shard or no hosts: round-robin default.
  EXPECT_TRUE(BalancedPlacement(weights, 1, 99).empty());
  EXPECT_TRUE(BalancedPlacement({}, 3, 99).empty());
}

// ---------------------------------------------------------------------------
// Cross-shard delivery total order under bursty same-tick traffic

// Records every arrival (virtual time + annotation) in shard-local order.
class OrderRecordingSink : public PacketSink {
 public:
  explicit OrderRecordingSink(EventLoop& loop) : loop_(loop) {}

  void OnPacket(const Packet& packet, Link&, bool) override {
    arrivals_.push_back({loop_.now(), packet.annotation});
  }

  const std::vector<std::pair<SimTime, std::string>>& arrivals() const { return arrivals_; }

 private:
  EventLoop& loop_;
  std::vector<std::pair<SimTime, std::string>> arrivals_;
};

// Bursty, same-tick, multi-channel storm into one destination shard: three
// source shards, two parallel channels from one of them (identical wire
// parameters, so same-tick bursts collide at identical deliver_at), packets
// annotated "b<burst>:s<src>:c<channel>:k<index>". The regression this
// guards: deliveries that tie on deliver_at must drain in (src shard,
// channel id, seq) order, at every thread count.
std::vector<std::pair<SimTime, std::string>> RunBurstStorm(int threads,
                                                           std::string* trace_out) {
  ShardedSimulation sharded(11, ShardPlan{4, threads});
  sharded.EnableObservability(/*record_wall_time=*/false);
  // Channels 0 and 1 both run shard 1 -> shard 0; channel 2 runs 2 -> 0;
  // channel 3 runs 3 -> 0. Identical latency + bandwidth everywhere.
  struct Src {
    int shard;
    CrossShardChannel* channel;
  };
  std::vector<Src> sources;
  sources.push_back({1, sharded.CreateChannel("burst-0", 1, 0, Millis(5), 1'000'000)});
  sources.push_back({1, sharded.CreateChannel("burst-1", 1, 0, Millis(5), 1'000'000)});
  sources.push_back({2, sharded.CreateChannel("burst-2", 2, 0, Millis(5), 1'000'000)});
  sources.push_back({3, sharded.CreateChannel("burst-3", 3, 0, Millis(5), 1'000'000)});

  OrderRecordingSink sink(sharded.shard(0).loop());
  for (Src& src : sources) {
    src.channel->b_end()->AttachA(&sink);
  }
  // Same-tick bursts: every source fires 3 packets per channel at the same
  // virtual instants. Send from the source loop so the outbox single-writer
  // contract holds.
  for (int burst = 0; burst < 4; ++burst) {
    SimTime at = Millis(10 * burst);
    for (size_t s = 0; s < sources.size(); ++s) {
      Src& src = sources[s];
      EventLoop& loop = sharded.shard(src.shard).loop();
      CrossShardChannel* channel = src.channel;
      int shard = src.shard;
      size_t channel_index = s;
      loop.ScheduleAt(at, [burst, channel, shard, channel_index] {
        for (int k = 0; k < 3; ++k) {
          Packet packet;
          packet.payload = Bytes(64);
          packet.annotation = "b" + std::to_string(burst) + ":s" + std::to_string(shard) +
                              ":c" + std::to_string(channel_index) + ":k" + std::to_string(k);
          channel->a_end()->SendFromA(std::move(packet));
        }
      });
    }
  }
  sharded.RunUntilIdle();
  sharded.MergeObservability();
  if (trace_out != nullptr) {
    *trace_out = sharded.merged().trace.ToChromeJson();
  }
  EXPECT_EQ(sharded.cross_deliveries(), 4u * 4u * 3u);
  return sink.arrivals();
}

TEST(ParallelEquivalenceTest, BurstDeliveryTotalOrder) {
  std::string base_trace;
  auto base = RunBurstStorm(/*threads=*/1, &base_trace);
  ASSERT_EQ(base.size(), 48u);
  // Arrival order must be the documented total order: nondecreasing in
  // virtual time, and within one instant ordered by (src shard, channel id,
  // seq) — which the annotation encodes as (s, c, k).
  for (size_t i = 1; i < base.size(); ++i) {
    ASSERT_LE(base[i - 1].first, base[i].first) << "time went backwards at " << i;
    if (base[i - 1].first == base[i].first) {
      ASSERT_LT(base[i - 1].second.substr(3), base[i].second.substr(3))
          << "tie broken out of order at " << i << ": " << base[i - 1].second << " then "
          << base[i].second;
    }
  }
  // Same-tick cross-channel collisions actually happened (the test is
  // vacuous otherwise): bursts on channels 0 and 1 leave shard 1 at the
  // same tick with identical wire parameters, so they tie on deliver_at.
  bool any_tie = false;
  for (size_t i = 1; i < base.size(); ++i) {
    any_tie = any_tie || base[i - 1].first == base[i].first;
  }
  ASSERT_TRUE(any_tie);
  for (int threads : {2, 4, 8}) {
    std::string trace;
    auto other = RunBurstStorm(threads, &trace);
    ASSERT_EQ(base, other) << "arrival order diverged at threads " << threads;
    ASSERT_EQ(base_trace, trace) << "trace diverged at threads " << threads;
  }
}

// ---------------------------------------------------------------------------
// Crossed fleet topology

StormResult RunCrossedFleetStorm(uint64_t seed, int threads, const ShardPlacement& placement) {
  ShardedSimulation sharded(seed, ShardPlan{2 + static_cast<int>(seed % 2), threads});
  sharded.EnableObservability(/*record_wall_time=*/false);
  FleetOptions options;
  options.nym_count = 4 + static_cast<int>(seed % 5);
  options.nyms_per_host = 2;
  options.topology = FleetTopology::kCrossed;
  options.placement = placement;
  ShardedFleet fleet(sharded, options, seed);
  fleet.Run();
  sharded.MergeObservability();

  StormResult result;
  result.trace = sharded.merged().trace.ToChromeJson();
  std::ostringstream stats;
  sharded.merged().metrics.WriteJson(stats);
  result.stats = stats.str();
  result.epochs = sharded.epochs();
  result.cross_deliveries = sharded.cross_deliveries();
  std::ostringstream extra;
  extra << fleet.visits() << "/" << fleet.churns() << "/" << fleet.cloud_fetches();
  result.stats += extra.str();
  return result;
}

TEST(ParallelEquivalenceTest, CrossedFleetSeedSweep) {
  for (uint64_t seed : {5u, 18u, 33u}) {
    StormResult base = RunCrossedFleetStorm(seed, /*threads=*/1, ShardPlacement{});
    // The workload actually crosses shards, over many adaptive epochs.
    ASSERT_GT(base.cross_deliveries, 0u) << "seed " << seed;
    ASSERT_GT(base.epochs, 1u) << "seed " << seed;
    for (int threads : {2, 4, 8}) {
      StormResult other = RunCrossedFleetStorm(seed, threads, ShardPlacement{});
      ASSERT_EQ(base.trace, other.trace)
          << "trace diverged: seed " << seed << " threads " << threads;
      ASSERT_EQ(base.stats, other.stats)
          << "stats diverged: seed " << seed << " threads " << threads;
      ASSERT_EQ(base.epochs, other.epochs);
      ASSERT_EQ(base.cross_deliveries, other.cross_deliveries);
    }
  }
}

TEST(ParallelEquivalenceTest, CrossedFleetBalancedPlacementIdentity) {
  const uint64_t seed = 19;  // -> 3 shards, 8 nyms over 4 hosts in the storm
  const int shards = 2 + static_cast<int>(seed % 2);
  // Calibrate exactly like bench/scale_fleet: serial run with the SAME
  // workload parameters as the measured run, observed weights.
  ShardedSimulation calibration(seed, ShardPlan{shards, 1});
  FleetOptions options;
  options.nym_count = 4 + static_cast<int>(seed % 5);
  options.nyms_per_host = 2;
  options.topology = FleetTopology::kCrossed;
  ShardedFleet probe(calibration, options, seed);
  probe.Run();
  ShardPlacement placement = BalancedPlacement(probe.HostWeights(), shards, seed);
  ASSERT_FALSE(placement.empty());

  StormResult base = RunCrossedFleetStorm(seed, /*threads=*/1, placement);
  ASSERT_GT(base.cross_deliveries, 0u);
  // The placement label is stamped into the merged trace: identity is
  // visibly a function of (seed, shards, placement).
  EXPECT_NE(base.trace.find("shard_plan:" + placement.Label()), std::string::npos);
  for (int threads : {2, 4, 8}) {
    StormResult other = RunCrossedFleetStorm(seed, threads, placement);
    ASSERT_EQ(base.trace, other.trace) << "threads " << threads;
    ASSERT_EQ(base.stats, other.stats) << "threads " << threads;
  }
  // A different placement is a different experiment: the trace must change
  // (the round-robin run has no placement stamp, and host->shard moves).
  StormResult rr = RunCrossedFleetStorm(seed, /*threads=*/1, ShardPlacement{});
  EXPECT_NE(base.trace, rr.trace);
}

// Regression: a crossed fleet whose server shard has no hosts of its own.
// All 8 nyms fit one host (shard 0), leaving shard 1 idle until the first
// cloud fetch arrives. Before the execution-floor fixpoint the executor saw
// an idle neighbor, gave shard 0 an unbounded horizon, and ran it to idle —
// which never came, because the slots were waiting on cloud replies only
// shard 1 could serve (the KSM daemons kept the loop alive forever).
TEST(ParallelEquivalenceTest, CrossedFleetWithHostlessServerShardTerminates) {
  ShardedSimulation sharded(13, ShardPlan{2, 1});
  FleetOptions options;
  options.nym_count = 8;
  options.nyms_per_host = 8;  // one host -> every slot on shard 0
  options.topology = FleetTopology::kCrossed;
  ShardedFleet fleet(sharded, options, 13);
  fleet.Run();
  EXPECT_GT(fleet.cloud_fetches(), 0u);
  EXPECT_GT(sharded.cross_deliveries(), 0u);
  EXPECT_GT(sharded.epochs(), 1u);
}

// The send-window promises are what collapse the epoch count: horizons jump
// to the next cloud window instead of trailing each shard's next local
// event at wire-latency granularity. With ~200ms latency and dense local
// events, latency-granular epochs would number in the thousands for this
// run; windowed horizons need a small handful per cloud round-trip.
TEST(ParallelEquivalenceTest, AdaptiveHorizonsCollapseEpochs) {
  ShardedSimulation sharded(7, ShardPlan{2, 1});
  FleetOptions options;
  options.nym_count = 4;
  options.nyms_per_host = 2;
  options.topology = FleetTopology::kCrossed;
  ShardedFleet fleet(sharded, options, 7);
  fleet.Run();
  ASSERT_GT(sharded.cross_deliveries(), 0u);
  uint64_t rounds = fleet.cloud_fetches();
  ASSERT_GT(rounds, 0u);
  // Generous bound: a few epochs per completed cloud round (request window,
  // delivery, reply window, delivery), plus constant start/drain slack.
  EXPECT_LT(sharded.epochs(), 8 * rounds + 32);
}

}  // namespace
}  // namespace nymix
