// Property suite for the parallel sharded executor (src/parallel): for a
// fixed (seed, shard count, scenario), the merged trace JSON and metrics
// dump must be BYTE-identical at every thread count. Two storm generators
// drive the sweep:
//   * net storms — random cross-shard channel topologies with fault
//     profiles, echo ping-pong traffic, shard-local flow competition and
//     link flaps, swept over >= 20 seeds at 1/2/4/8 threads;
//   * fleet churn storms — full nym lifecycle (boot, Tor, visits,
//     terminate + replace) through ShardedFleet.
// Identity is compared as whole strings: one reordered event, one float
// summed in a different order, one racing counter — anything — fails the
// diff. The cross-delivery assertions keep the property non-vacuous.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/fleet.h"
#include "src/parallel/sharded_sim.h"
#include "src/util/thread_pool.h"

namespace nymix {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool unit tests

TEST(ThreadPoolTest, InlinePoolRunsInOrderOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::vector<size_t> order;
  pool.RunIndexed(5, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 5u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  // Each index's slot is touched by exactly one worker (the RunIndexed
  // contract), so plain ints are race-free here.
  std::vector<int> hits(257, 0);
  pool.RunIndexed(hits.size(), [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<int> hits(16, 0);
    pool.RunIndexed(hits.size(), [&](size_t i) { ++hits[i]; });
    for (int h : hits) {
      ASSERT_EQ(h, 1);
    }
  }
}

TEST(ThreadPoolTest, EmptyBatchAndHardwareThreads) {
  ThreadPool pool(2);
  pool.RunIndexed(0, [&](size_t) { FAIL() << "no indexes to run"; });
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

// ---------------------------------------------------------------------------
// Net storms

// Replies to every packet until `deadline`, counting arrivals in the
// shard's metrics. All state is shard-local: the sink lives on the loop
// that owns its half-link.
class EchoSink : public PacketSink {
 public:
  EchoSink(EventLoop& loop, Link* out, std::string name, SimTime deadline)
      : loop_(loop), out_(out), name_(std::move(name)), deadline_(deadline) {}

  void Kick() { Send(); }

  void OnPacket(const Packet& packet, Link&, bool) override {
    (void)packet;
    if (MetricsRegistry* meters = loop_.meters()) {
      meters->GetCounter("storm.echo." + name_)->Increment();
    }
    if (TraceRecorder* tracer = loop_.tracer()) {
      tracer->AddInstant("storm", "echo:" + name_, name_, loop_.now());
    }
    if (loop_.now() < deadline_) {
      // Reply from a fresh event so a lossy pair can't recurse in zero time.
      loop_.ScheduleAfter(Millis(1), [this] { Send(); });
    }
  }

 private:
  void Send() {
    Packet packet;
    packet.payload = Bytes(64);
    packet.annotation = name_;
    out_->SendFromA(std::move(packet));
  }

  EventLoop& loop_;
  Link* out_;
  std::string name_;
  SimTime deadline_;
};

struct StormResult {
  std::string trace;
  std::string stats;
  uint64_t cross_deliveries = 0;
  uint64_t epochs = 0;
};

// Random cross-shard topology + faults + local flow churn, fully determined
// by (seed); `threads` must not change a byte of the outputs.
StormResult RunNetStorm(uint64_t seed, int threads) {
  Prng prng(Mix64(seed ^ 0x5702a11e1ULL));
  int shards = 2 + static_cast<int>(seed % 3);
  ShardedSimulation sharded(seed, ShardPlan{shards, threads});
  sharded.EnableObservability(/*record_wall_time=*/false);

  const SimTime deadline = Seconds(5);
  std::vector<std::unique_ptr<EchoSink>> sinks;

  int channel_count = 2 + static_cast<int>(prng.NextBelow(3));
  for (int c = 0; c < channel_count; ++c) {
    int a = static_cast<int>(prng.NextBelow(static_cast<uint64_t>(shards)));
    int b = (a + 1 + static_cast<int>(prng.NextBelow(static_cast<uint64_t>(shards - 1)))) %
            shards;
    SimDuration latency = Millis(1 + static_cast<SimDuration>(prng.NextBelow(15)));
    uint64_t bandwidth = (1 + prng.NextBelow(9)) * 1'000'000;
    CrossShardChannel* channel = sharded.CreateChannel(
        "storm-ch" + std::to_string(c), a, b, latency, bandwidth);
    if (prng.NextDouble() < 0.5) {
      LinkFaultProfile profile;
      profile.loss_probability = 0.05;
      profile.spike_probability = 0.10;
      profile.spike_latency = Millis(3);
      channel->SetFaultProfile(profile, Mix64(seed ^ static_cast<uint64_t>(c)));
    }
    auto sink_a = std::make_unique<EchoSink>(sharded.shard(a).loop(), channel->a_end(),
                                             "ch" + std::to_string(c) + ".a", deadline);
    auto sink_b = std::make_unique<EchoSink>(sharded.shard(b).loop(), channel->b_end(),
                                             "ch" + std::to_string(c) + ".b", deadline);
    channel->a_end()->AttachA(sink_a.get());
    channel->b_end()->AttachA(sink_b.get());
    EchoSink* kick_a = sink_a.get();
    EchoSink* kick_b = sink_b.get();
    sharded.shard(a).loop().ScheduleAt(
        Millis(static_cast<SimDuration>(prng.NextBelow(50))), [kick_a] { kick_a->Kick(); });
    sharded.shard(b).loop().ScheduleAt(
        Millis(static_cast<SimDuration>(prng.NextBelow(50))), [kick_b] { kick_b->Kick(); });
    sinks.push_back(std::move(sink_a));
    sinks.push_back(std::move(sink_b));
  }

  // Shard-local churn: competing flows over a two-link route, with a mid-run
  // link flap on some shards.
  for (int s = 0; s < shards; ++s) {
    Simulation& sim = sharded.shard(s);
    Link* first = sim.CreateLink("s" + std::to_string(s) + "-l0", Millis(2), 8'000'000);
    Link* second = sim.CreateLink("s" + std::to_string(s) + "-l1", Millis(3), 6'000'000);
    int flow_count = 1 + static_cast<int>(prng.NextBelow(4));
    for (int f = 0; f < flow_count; ++f) {
      uint64_t bytes = 100'000 + prng.NextBelow(400'000);
      Simulation* sim_ptr = &sim;
      sim.flows().StartFlow(Route::Through({first, second}), bytes, 1.1,
                            [sim_ptr](SimTime) {
                              if (MetricsRegistry* meters = sim_ptr->loop().meters()) {
                                meters->GetCounter("storm.flows_done")->Increment();
                              }
                            });
    }
    if (prng.NextDouble() < 0.5) {
      SimTime down_at = Millis(200 + static_cast<SimDuration>(prng.NextBelow(800)));
      sim.loop().ScheduleAt(down_at, [first] { first->SetDown(true); });
      sim.loop().ScheduleAt(down_at + Millis(150), [first] { first->SetDown(false); });
    }
  }

  sharded.RunUntilIdle();
  sharded.MergeObservability();

  StormResult result;
  result.trace = sharded.merged().trace.ToChromeJson();
  std::ostringstream stats;
  sharded.merged().metrics.WriteJson(stats);
  result.stats = stats.str();
  result.cross_deliveries = sharded.cross_deliveries();
  result.epochs = sharded.epochs();
  return result;
}

TEST(ParallelEquivalenceTest, NetStormSeedSweep) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    StormResult base = RunNetStorm(seed, /*threads=*/1);
    // Non-vacuous: the topology actually exercised the cross-shard path,
    // over multiple synchronization epochs.
    ASSERT_GT(base.cross_deliveries, 0u) << "seed " << seed;
    ASSERT_GT(base.epochs, 1u) << "seed " << seed;
    for (int threads : {2, 4, 8}) {
      StormResult other = RunNetStorm(seed, threads);
      ASSERT_EQ(base.trace, other.trace)
          << "trace diverged: seed " << seed << " threads " << threads;
      ASSERT_EQ(base.stats, other.stats)
          << "stats diverged: seed " << seed << " threads " << threads;
      ASSERT_EQ(base.cross_deliveries, other.cross_deliveries);
      ASSERT_EQ(base.epochs, other.epochs);
    }
  }
}

// ---------------------------------------------------------------------------
// Fleet churn storms

StormResult RunFleetStorm(uint64_t seed, int threads) {
  ShardedSimulation sharded(seed, ShardPlan{2 + static_cast<int>(seed % 2), threads});
  sharded.EnableObservability(/*record_wall_time=*/false);
  FleetOptions options;
  options.nym_count = 4 + static_cast<int>(seed % 5);
  options.nyms_per_host = 2;
  ShardedFleet fleet(sharded, options, seed);
  fleet.Run();
  sharded.MergeObservability();

  StormResult result;
  result.trace = sharded.merged().trace.ToChromeJson();
  std::ostringstream stats;
  sharded.merged().metrics.WriteJson(stats);
  result.stats = stats.str();
  result.epochs = sharded.epochs();
  // Fold the fleet's own aggregates into the identity surface too.
  std::ostringstream extra;
  FleetKsmStats ksm = fleet.ReconcileKsm();
  extra << fleet.visits() << "/" << fleet.churns() << "/" << ksm.pages_sharing << "/"
        << ksm.cross_host_extra_sharing();
  result.stats += extra.str();
  return result;
}

TEST(ParallelEquivalenceTest, FleetChurnSeedSweep) {
  for (uint64_t seed : {7u, 21u, 42u}) {
    StormResult base = RunFleetStorm(seed, /*threads=*/1);
    for (int threads : {2, 4, 8}) {
      StormResult other = RunFleetStorm(seed, threads);
      ASSERT_EQ(base.trace, other.trace)
          << "trace diverged: seed " << seed << " threads " << threads;
      ASSERT_EQ(base.stats, other.stats)
          << "stats diverged: seed " << seed << " threads " << threads;
    }
  }
}

// Repeating the same (seed, threads) run must also be bit-stable — guards
// against leftover process-wide state (the old static id counters).
TEST(ParallelEquivalenceTest, RepeatedRunsAreStable) {
  StormResult first = RunNetStorm(3, /*threads=*/4);
  StormResult second = RunNetStorm(3, /*threads=*/4);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.stats, second.stats);
}

}  // namespace
}  // namespace nymix
