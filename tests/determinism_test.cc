// Regression tests for the determinism contract (DESIGN.md): two runs of
// the same seeded scenario must produce byte-identical trace JSON. This is
// the test that catches pointer-keyed iteration orders (heap addresses
// differ between the two runs inside one process) and any other
// nondeterminism that survives nymlint's static rules.
#include <array>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/nym_manager.h"
#include "src/net/simulation.h"
#include "src/obs/observability.h"
#include "src/workload/website.h"

namespace nymix {
namespace {

// A scenario that exercises the subsystems where iteration order could
// leak: several links sharing flows (FlowScheduler's per-link maps), PRNG-
// driven sizes and routes, and trace spans. Wall-time self-profiling is
// disabled so the exported JSON contains virtual-time content only.
//
// `full_recompute` selects the FlowScheduler mode: the incremental
// dirty-driven rescheduler must emit the same trace bytes as the
// recompute-the-world reference (docs/performance.md).
std::string RunScenario(uint64_t seed, bool full_recompute = false) {
  Simulation sim(seed);
  sim.flows().set_full_recompute(full_recompute);
  Observability obs;
  obs.trace.set_enabled(true);
  obs.trace.set_record_wall_time(false);
  sim.loop().set_observability(&obs);

  Link* uplink = sim.CreateLink("uplink", Millis(5), 8'000'000);
  Link* relay_a = sim.CreateLink("relay-a", Millis(12), 4'000'000);
  Link* relay_b = sim.CreateLink("relay-b", Millis(9), 2'000'000);

  int completed = 0;
  int started = 0;
  for (int i = 0; i < 24; ++i) {
    uint64_t bytes = sim.prng().NextInRange(20'000, 400'000);
    std::vector<Link*> path;
    switch (sim.prng().NextBelow(3)) {
      case 0:
        path = {uplink};
        break;
      case 1:
        path = {uplink, relay_a};
        break;
      default:
        path = {uplink, relay_b};
        break;
    }
    ++started;
    sim.flows().StartFlow(Route::Through(path), bytes, 1.0,
                          [&completed](SimTime) { ++completed; });
    // Stagger the starts so flows overlap and bandwidth gets re-divided
    // across changing sets of contenders (the order-sensitive code path).
    sim.RunFor(Millis(sim.prng().NextBelow(30)));
  }

  {
    TraceSpan span(&obs.trace, sim.loop().clock(), "test", "drain", "main");
    sim.RunUntil([&] { return completed == started; });
  }
  return obs.trace.ToChromeJson();
}

// The fault-injection variant: lossy links, a flapping relay, probabilistic
// injector rolls, and status-form flows with stall deadlines. Every fault
// decision must come from the seeded streams, so two same-seed runs emit
// byte-identical traces — including the fault/retry instants.
std::string RunFaultScenario(uint64_t seed, bool full_recompute = false) {
  Simulation sim(seed);
  sim.flows().set_full_recompute(full_recompute);
  Observability obs;
  obs.trace.set_enabled(true);
  obs.trace.set_record_wall_time(false);
  sim.loop().set_observability(&obs);

  Link* uplink = sim.CreateLink("uplink", Millis(5), 8'000'000);
  Link* relay_a = sim.CreateLink("relay-a", Millis(12), 4'000'000);
  Link* relay_b = sim.CreateLink("relay-b", Millis(9), 2'000'000);

  LinkFaultProfile lossy;
  lossy.loss_probability = 0.04;
  lossy.spike_probability = 0.2;
  lossy.spike_latency = Millis(15);
  relay_a->SetFaultProfile(lossy, sim.faults().SeedFor("relay-a"));
  sim.faults().ConfigureProbability("chaos.extra-load", 0.25);
  // Scheduled outage: relay-b flaps down and back up mid-experiment.
  sim.faults().At(Millis(600), "relay-b-down", [relay_b] { relay_b->SetDown(true); });
  sim.faults().At(Millis(1400), "relay-b-up", [relay_b] { relay_b->SetDown(false); });

  int completed = 0;
  int started = 0;
  FlowOptions options;
  options.stall_timeout = Seconds(3);
  for (int i = 0; i < 24; ++i) {
    uint64_t bytes = sim.prng().NextInRange(20'000, 400'000);
    std::vector<Link*> path;
    switch (sim.prng().NextBelow(3)) {
      case 0:
        path = {uplink};
        break;
      case 1:
        path = {uplink, relay_a};
        break;
      default:
        path = {uplink, relay_b};
        break;
    }
    // Injector-driven extra load: some iterations double up.
    const int copies = sim.faults().Roll("chaos.extra-load") ? 2 : 1;
    for (int c = 0; c < copies; ++c) {
      ++started;
      sim.flows().StartFlow(Route::Through(path), bytes, 1.0, options,
                            [&completed](Result<SimTime>) { ++completed; });
    }
    sim.RunFor(Millis(sim.prng().NextBelow(30)));
  }

  {
    TraceSpan span(&obs.trace, sim.loop().clock(), "test", "drain", "main");
    sim.RunUntil([&] { return completed == started; });
  }
  return obs.trace.ToChromeJson();
}

// A compact version of bench/scale_fleet.cc: two host clusters, each with
// live KSM scanning, a private Tor deployment, and a browsing nym. This
// covers the other incremental hot path (KSM delta scans) and the whole
// boot/visit/terminate machinery, at a size small enough for a unit test.
std::string RunFleetScenario(uint64_t seed, bool full_recompute) {
  Simulation sim(seed);
  sim.flows().set_full_recompute(full_recompute);
  Observability obs;
  obs.trace.set_enabled(true);
  obs.trace.set_record_wall_time(false);
  sim.loop().set_observability(&obs);

  auto image = BaseImage::CreateDistribution("nymix", 42, 4 * kMiB);
  struct Cluster {
    std::unique_ptr<HostMachine> host;
    std::unique_ptr<TorNetwork> tor;
    std::unique_ptr<NymManager> manager;
    std::unique_ptr<Website> site;
  };
  std::vector<Cluster> clusters(2);
  TorNetwork::Config tor_config;
  tor_config.relay_count = 6;
  tor_config.guard_count = 2;
  tor_config.exit_count = 2;
  for (size_t c = 0; c < clusters.size(); ++c) {
    clusters[c].host = std::make_unique<HostMachine>(sim, HostConfig{});
    clusters[c].host->ksm().set_full_rescan(full_recompute);
    clusters[c].tor = std::make_unique<TorNetwork>(sim, tor_config);
    clusters[c].manager =
        std::make_unique<NymManager>(*clusters[c].host, image, clusters[c].tor.get(), nullptr);
    WebsiteProfile profile;
    profile.name = "site-" + std::to_string(c);
    profile.domain = "site" + std::to_string(c) + ".example.com";
    clusters[c].site = std::make_unique<Website>(sim, profile);
    clusters[c].host->ksm().Start(Seconds(2));
  }

  int done = 0;
  for (size_t c = 0; c < clusters.size(); ++c) {
    Cluster& cluster = clusters[c];
    cluster.manager->CreateNym(
        "nym-" + std::to_string(c), NymManager::CreateOptions{},
        [&sim, &cluster, &done](Result<Nym*> nym, NymStartupReport) {
          NYMIX_CHECK(nym.ok());
          (*nym)->browser()->Visit(*cluster.site, [&cluster, nym, &done](Result<SimTime> visit) {
            NYMIX_CHECK(visit.ok());
            NYMIX_CHECK(cluster.manager->TerminateNym(*nym).ok());
            ++done;
          });
        });
  }
  sim.RunUntil([&] { return done == 2; });
  sim.RunFor(Seconds(5));  // a few more KSM ticks after the churn
  for (Cluster& cluster : clusters) {
    cluster.host->ksm().Stop();
  }
  return obs.trace.ToChromeJson();
}

TEST(DeterminismTest, SameSeedProducesIdenticalTraceJson) {
  // Shift heap layout between the runs: if any container orders by pointer
  // value, the second run sees different addresses and the JSON diverges.
  const std::string first = RunScenario(0xA11CE);
  auto pad = std::make_unique<std::array<char, 8192>>();
  pad->fill('x');
  const std::string second = RunScenario(0xA11CE);
  ASSERT_FALSE(first.empty());
  EXPECT_NE(first.find("traceEvents"), std::string::npos);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, RepeatedRunsStayIdentical) {
  const std::string baseline = RunScenario(7);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(baseline, RunScenario(7)) << "run " << i;
  }
}

TEST(DeterminismTest, DifferentSeedsProduceDifferentTraces) {
  // Sanity check that the scenario actually depends on the seed — if it
  // didn't, the identical-JSON assertions above would be vacuous.
  EXPECT_NE(RunScenario(1), RunScenario(2));
}

TEST(DeterminismTest, DisablingWallTimeStripsWallArgs) {
  const std::string json = RunScenario(3);
  EXPECT_EQ(json.find("wall_us"), std::string::npos);
}

TEST(DeterminismTest, FaultScenarioSameSeedIsByteIdentical) {
  const std::string first = RunFaultScenario(0xFA17);
  auto pad = std::make_unique<std::array<char, 8192>>();
  pad->fill('y');
  const std::string second = RunFaultScenario(0xFA17);
  ASSERT_FALSE(first.empty());
  // The scenario genuinely exercises the fault paths: downed links and
  // injector triggers leave their instants in the trace.
  EXPECT_NE(first.find("link_down:relay-b"), std::string::npos);
  EXPECT_NE(first.find("inject:"), std::string::npos);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, FaultScenarioDifferentSeedsDiverge) {
  EXPECT_NE(RunFaultScenario(21), RunFaultScenario(22));
}

// The incremental schedulers' equivalence contract, stated at the trace
// level: a same-seed run in incremental mode and in full-recompute mode
// must not differ by a single byte — not just final rates, but every event
// instant and every pending-event count along the way.
TEST(DeterminismTest, IncrementalAndFullRecomputeTracesAreByteIdentical) {
  for (uint64_t seed : {3ull, 0xA11CEull, 0xBEEFull}) {
    const std::string incremental = RunScenario(seed, /*full_recompute=*/false);
    const std::string full = RunScenario(seed, /*full_recompute=*/true);
    ASSERT_FALSE(incremental.empty());
    EXPECT_EQ(incremental, full) << "seed " << seed;
  }
}

TEST(DeterminismTest, FaultScenarioModesAreByteIdentical) {
  // Link flaps and stall deadlines are exactly the paths where a
  // dirty-driven rescheduler could drift from the reference.
  for (uint64_t seed : {0xFA17ull, 99ull}) {
    const std::string incremental = RunFaultScenario(seed, /*full_recompute=*/false);
    const std::string full = RunFaultScenario(seed, /*full_recompute=*/true);
    ASSERT_FALSE(incremental.empty());
    EXPECT_EQ(incremental, full) << "seed " << seed;
  }
}

TEST(DeterminismTest, FleetScenarioModesAreByteIdentical) {
  const std::string incremental = RunFleetScenario(0x5CA1E, /*full_recompute=*/false);
  const std::string full = RunFleetScenario(0x5CA1E, /*full_recompute=*/true);
  ASSERT_FALSE(incremental.empty());
  // The scenario really ran the hv path: KSM scan events are in the trace.
  EXPECT_NE(incremental.find("ksm_scan"), std::string::npos);
  EXPECT_EQ(incremental, full);
}

TEST(DeterminismTest, FleetScenarioSameSeedIsByteIdentical) {
  const std::string first = RunFleetScenario(7, /*full_recompute=*/false);
  auto pad = std::make_unique<std::array<char, 8192>>();
  pad->fill('z');
  const std::string second = RunFleetScenario(7, /*full_recompute=*/false);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace nymix
