// Regression tests for the determinism contract (DESIGN.md): two runs of
// the same seeded scenario must produce byte-identical trace JSON. This is
// the test that catches pointer-keyed iteration orders (heap addresses
// differ between the two runs inside one process) and any other
// nondeterminism that survives nymlint's static rules.
#include <array>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/fleet.h"
#include "src/core/fleet_checkpoint.h"
#include "src/core/nym_manager.h"
#include "src/core/testbed.h"
#include "src/net/simulation.h"
#include "src/obs/observability.h"
#include "src/store/image_checkpoint.h"
#include "src/store/kv_store.h"
#include "src/workload/website.h"

namespace nymix {
namespace {

// A scenario that exercises the subsystems where iteration order could
// leak: several links sharing flows (FlowScheduler's per-link maps), PRNG-
// driven sizes and routes, and trace spans. Wall-time self-profiling is
// disabled so the exported JSON contains virtual-time content only.
//
// `full_recompute` selects the FlowScheduler mode: the incremental
// dirty-driven rescheduler must emit the same trace bytes as the
// recompute-the-world reference (docs/performance.md).
std::string RunScenario(uint64_t seed, bool full_recompute = false) {
  Simulation sim(seed);
  sim.flows().set_full_recompute(full_recompute);
  Observability obs;
  obs.trace.set_enabled(true);
  obs.trace.set_record_wall_time(false);
  sim.loop().set_observability(&obs);

  Link* uplink = sim.CreateLink("uplink", Millis(5), 8'000'000);
  Link* relay_a = sim.CreateLink("relay-a", Millis(12), 4'000'000);
  Link* relay_b = sim.CreateLink("relay-b", Millis(9), 2'000'000);

  int completed = 0;
  int started = 0;
  for (int i = 0; i < 24; ++i) {
    uint64_t bytes = sim.prng().NextInRange(20'000, 400'000);
    std::vector<Link*> path;
    switch (sim.prng().NextBelow(3)) {
      case 0:
        path = {uplink};
        break;
      case 1:
        path = {uplink, relay_a};
        break;
      default:
        path = {uplink, relay_b};
        break;
    }
    ++started;
    sim.flows().StartFlow(Route::Through(path), bytes, 1.0,
                          [&completed](SimTime) { ++completed; });
    // Stagger the starts so flows overlap and bandwidth gets re-divided
    // across changing sets of contenders (the order-sensitive code path).
    sim.RunFor(Millis(sim.prng().NextBelow(30)));
  }

  {
    TraceSpan span(&obs.trace, sim.loop().clock(), "test", "drain", "main");
    sim.RunUntil([&] { return completed == started; });
  }
  return obs.trace.ToChromeJson();
}

// The fault-injection variant: lossy links, a flapping relay, probabilistic
// injector rolls, and status-form flows with stall deadlines. Every fault
// decision must come from the seeded streams, so two same-seed runs emit
// byte-identical traces — including the fault/retry instants.
std::string RunFaultScenario(uint64_t seed, bool full_recompute = false) {
  Simulation sim(seed);
  sim.flows().set_full_recompute(full_recompute);
  Observability obs;
  obs.trace.set_enabled(true);
  obs.trace.set_record_wall_time(false);
  sim.loop().set_observability(&obs);

  Link* uplink = sim.CreateLink("uplink", Millis(5), 8'000'000);
  Link* relay_a = sim.CreateLink("relay-a", Millis(12), 4'000'000);
  Link* relay_b = sim.CreateLink("relay-b", Millis(9), 2'000'000);

  LinkFaultProfile lossy;
  lossy.loss_probability = 0.04;
  lossy.spike_probability = 0.2;
  lossy.spike_latency = Millis(15);
  relay_a->SetFaultProfile(lossy, sim.faults().SeedFor("relay-a"));
  sim.faults().ConfigureProbability("chaos.extra-load", 0.25);
  // Scheduled outage: relay-b flaps down and back up mid-experiment.
  sim.faults().At(Millis(600), "relay-b-down", [relay_b] { relay_b->SetDown(true); });
  sim.faults().At(Millis(1400), "relay-b-up", [relay_b] { relay_b->SetDown(false); });

  int completed = 0;
  int started = 0;
  FlowOptions options;
  options.stall_timeout = Seconds(3);
  for (int i = 0; i < 24; ++i) {
    uint64_t bytes = sim.prng().NextInRange(20'000, 400'000);
    std::vector<Link*> path;
    switch (sim.prng().NextBelow(3)) {
      case 0:
        path = {uplink};
        break;
      case 1:
        path = {uplink, relay_a};
        break;
      default:
        path = {uplink, relay_b};
        break;
    }
    // Injector-driven extra load: some iterations double up.
    const int copies = sim.faults().Roll("chaos.extra-load") ? 2 : 1;
    for (int c = 0; c < copies; ++c) {
      ++started;
      sim.flows().StartFlow(Route::Through(path), bytes, 1.0, options,
                            [&completed](Result<SimTime>) { ++completed; });
    }
    sim.RunFor(Millis(sim.prng().NextBelow(30)));
  }

  {
    TraceSpan span(&obs.trace, sim.loop().clock(), "test", "drain", "main");
    sim.RunUntil([&] { return completed == started; });
  }
  return obs.trace.ToChromeJson();
}

// A compact version of bench/scale_fleet.cc: two host clusters, each with
// live KSM scanning, a private Tor deployment, and a browsing nym. This
// covers the other incremental hot path (KSM delta scans) and the whole
// boot/visit/terminate machinery, at a size small enough for a unit test.
std::string RunFleetScenario(uint64_t seed, bool full_recompute) {
  Simulation sim(seed);
  sim.flows().set_full_recompute(full_recompute);
  Observability obs;
  obs.trace.set_enabled(true);
  obs.trace.set_record_wall_time(false);
  sim.loop().set_observability(&obs);

  auto image = BaseImage::CreateDistribution("nymix", 42, 4 * kMiB);
  struct Cluster {
    std::unique_ptr<HostMachine> host;
    std::unique_ptr<TorNetwork> tor;
    std::unique_ptr<NymManager> manager;
    std::unique_ptr<Website> site;
  };
  std::vector<Cluster> clusters(2);
  TorNetwork::Config tor_config;
  tor_config.relay_count = 6;
  tor_config.guard_count = 2;
  tor_config.exit_count = 2;
  for (size_t c = 0; c < clusters.size(); ++c) {
    clusters[c].host = std::make_unique<HostMachine>(sim, HostConfig{});
    clusters[c].host->ksm().set_full_rescan(full_recompute);
    clusters[c].tor = std::make_unique<TorNetwork>(sim, tor_config);
    clusters[c].manager =
        std::make_unique<NymManager>(*clusters[c].host, image, clusters[c].tor.get(), nullptr);
    WebsiteProfile profile;
    profile.name = "site-" + std::to_string(c);
    profile.domain = "site" + std::to_string(c) + ".example.com";
    clusters[c].site = std::make_unique<Website>(sim, profile);
    clusters[c].host->ksm().Start(Seconds(2));
  }

  int done = 0;
  for (size_t c = 0; c < clusters.size(); ++c) {
    Cluster& cluster = clusters[c];
    cluster.manager->CreateNym(
        "nym-" + std::to_string(c), NymManager::CreateOptions{},
        [&sim, &cluster, &done](Result<Nym*> nym, NymStartupReport) {
          NYMIX_CHECK(nym.ok());
          (*nym)->browser()->Visit(*cluster.site, [&cluster, nym, &done](Result<SimTime> visit) {
            NYMIX_CHECK(visit.ok());
            NYMIX_CHECK(cluster.manager->TerminateNym(*nym).ok());
            ++done;
          });
        });
  }
  sim.RunUntil([&] { return done == 2; });
  sim.RunFor(Seconds(5));  // a few more KSM ticks after the churn
  for (Cluster& cluster : clusters) {
    cluster.host->ksm().Stop();
  }
  return obs.trace.ToChromeJson();
}

// The warm-start path (bench/scale_fleet --warm-start) in miniature: a
// two-shard fleet whose base images come from src/store image checkpoints
// instead of cold builds. Image content is a pure function of (name, seed,
// size), so the warm run must replay the exact same event stream — the
// merged trace AND the merged metrics dump, byte for byte.
std::string RunShardedFleetTrace(uint64_t seed, int threads, KvStore* warm) {
  ShardedSimulation sharded(seed, ShardPlan{/*shards=*/2, threads});
  sharded.EnableObservability(/*record_wall_time=*/false);
  FleetOptions options;
  options.nym_count = 4;
  options.nyms_per_host = 2;
  if (warm != nullptr) {
    for (int s = 0; s < 2; ++s) {
      auto image = AcquireDistributionImage(*warm, kFleetImageName, kFleetImageSeed,
                                            kFleetImageSizeBytes);
      NYMIX_CHECK_MSG(image.ok(), "warm-start image acquisition failed");
      options.images.push_back(*image);
    }
  }
  ShardedFleet fleet(sharded, options, seed);
  fleet.Run();
  sharded.MergeObservability();
  std::ostringstream out;
  out << sharded.merged().trace.ToChromeJson();
  sharded.merged().metrics.WriteJson(out);
  return out.str();
}

// Whole-host crash → restore-from-checkpoint, PR 3's RecoverNym lifted to
// every nym on the host at once. The run checkpoints a two-nym host into a
// KvStore, crashes both VM pairs, restores the host from the store, drives
// the boots to quiescence, and re-checkpoints into a second store.
struct HostCrashRun {
  std::string trace;
  Bytes checkpoint_log;    // the KvStore log written before the crash
  Bytes recheckpoint_log;  // the log written by the restored host
  std::string draft;       // /home/user/draft.txt as the restored nym sees it
  bool guard_survived = false;
};

HostCrashRun RunHostCrashRestore(uint64_t seed) {
  Testbed bed(seed);
  Observability obs;
  obs.EnableAll();
  obs.trace.set_record_wall_time(false);
  obs.metrics.set_record_wall_time(false);
  bed.sim().loop().set_observability(&obs);

  // Names sort in creation order: RestoreHost boots in store (key) order,
  // so the re-checkpoint enumerates nyms in the same order as the first.
  NymManager::CreateOptions guarded;
  guarded.guard_seed = 1234;
  Nym* alpha = bed.CreateNymBlocking("alpha", guarded);
  Nym* bravo = bed.CreateNymBlocking("bravo");
  auto* tor = static_cast<TorClient*>(alpha->anonymizer());
  NYMIX_CHECK(tor->entry_guard_index().has_value());
  const size_t original_guard = *tor->entry_guard_index();
  NYMIX_CHECK(alpha->anon_vm()
                  ->disk()
                  .fs()
                  .writable_mutable()
                  .WriteFile("/home/user/draft.txt", Blob::FromString("intersection notes"))
                  .ok());

  KvStore checkpoint;
  NYMIX_CHECK(CheckpointHost(bed.manager(), "host/0", checkpoint).ok());
  NYMIX_CHECK_MSG(checkpoint.size() == 2, "expected both nyms in the checkpoint");

  bed.manager().InjectCrash(*alpha);
  bed.manager().InjectCrash(*bravo);

  int restored = 0;
  NYMIX_CHECK(RestoreHost(bed.manager(), "host/0", checkpoint, &restored).ok());
  NYMIX_CHECK_MSG(restored == 2, "expected RestoreHost to boot both nyms");
  bed.sim().RunUntil([&bed] {
    for (const char* name : {"alpha", "bravo"}) {
      Nym* nym = bed.manager().FindNym(name);
      if (nym == nullptr || nym->anonymizer() == nullptr || !nym->anonymizer()->ready()) {
        return false;
      }
    }
    return true;
  });

  KvStore recheckpoint;
  NYMIX_CHECK(CheckpointHost(bed.manager(), "host/0", recheckpoint).ok());

  HostCrashRun out;
  out.trace = obs.trace.ToChromeJson();
  out.checkpoint_log = checkpoint.log();
  out.recheckpoint_log = recheckpoint.log();
  Nym* fresh = bed.manager().FindNym("alpha");
  if (auto blob = fresh->anon_vm()->disk().fs().ReadFile("/home/user/draft.txt"); blob.ok()) {
    out.draft = StringFromBytes(blob->Materialize());
  }
  auto* fresh_tor = static_cast<TorClient*>(fresh->anonymizer());
  out.guard_survived = fresh_tor->entry_guard_index().has_value() &&
                       *fresh_tor->entry_guard_index() == original_guard;
  return out;
}

TEST(DeterminismTest, SameSeedProducesIdenticalTraceJson) {
  // Shift heap layout between the runs: if any container orders by pointer
  // value, the second run sees different addresses and the JSON diverges.
  const std::string first = RunScenario(0xA11CE);
  auto pad = std::make_unique<std::array<char, 8192>>();
  pad->fill('x');
  const std::string second = RunScenario(0xA11CE);
  ASSERT_FALSE(first.empty());
  EXPECT_NE(first.find("traceEvents"), std::string::npos);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, RepeatedRunsStayIdentical) {
  const std::string baseline = RunScenario(7);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(baseline, RunScenario(7)) << "run " << i;
  }
}

TEST(DeterminismTest, DifferentSeedsProduceDifferentTraces) {
  // Sanity check that the scenario actually depends on the seed — if it
  // didn't, the identical-JSON assertions above would be vacuous.
  EXPECT_NE(RunScenario(1), RunScenario(2));
}

TEST(DeterminismTest, DisablingWallTimeStripsWallArgs) {
  const std::string json = RunScenario(3);
  EXPECT_EQ(json.find("wall_us"), std::string::npos);
}

TEST(DeterminismTest, FaultScenarioSameSeedIsByteIdentical) {
  const std::string first = RunFaultScenario(0xFA17);
  auto pad = std::make_unique<std::array<char, 8192>>();
  pad->fill('y');
  const std::string second = RunFaultScenario(0xFA17);
  ASSERT_FALSE(first.empty());
  // The scenario genuinely exercises the fault paths: downed links and
  // injector triggers leave their instants in the trace.
  EXPECT_NE(first.find("link_down:relay-b"), std::string::npos);
  EXPECT_NE(first.find("inject:"), std::string::npos);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, FaultScenarioDifferentSeedsDiverge) {
  EXPECT_NE(RunFaultScenario(21), RunFaultScenario(22));
}

// The incremental schedulers' equivalence contract, stated at the trace
// level: a same-seed run in incremental mode and in full-recompute mode
// must not differ by a single byte — not just final rates, but every event
// instant and every pending-event count along the way.
TEST(DeterminismTest, IncrementalAndFullRecomputeTracesAreByteIdentical) {
  for (uint64_t seed : {3ull, 0xA11CEull, 0xBEEFull}) {
    const std::string incremental = RunScenario(seed, /*full_recompute=*/false);
    const std::string full = RunScenario(seed, /*full_recompute=*/true);
    ASSERT_FALSE(incremental.empty());
    EXPECT_EQ(incremental, full) << "seed " << seed;
  }
}

TEST(DeterminismTest, FaultScenarioModesAreByteIdentical) {
  // Link flaps and stall deadlines are exactly the paths where a
  // dirty-driven rescheduler could drift from the reference.
  for (uint64_t seed : {0xFA17ull, 99ull}) {
    const std::string incremental = RunFaultScenario(seed, /*full_recompute=*/false);
    const std::string full = RunFaultScenario(seed, /*full_recompute=*/true);
    ASSERT_FALSE(incremental.empty());
    EXPECT_EQ(incremental, full) << "seed " << seed;
  }
}

TEST(DeterminismTest, FleetScenarioModesAreByteIdentical) {
  const std::string incremental = RunFleetScenario(0x5CA1E, /*full_recompute=*/false);
  const std::string full = RunFleetScenario(0x5CA1E, /*full_recompute=*/true);
  ASSERT_FALSE(incremental.empty());
  // The scenario really ran the hv path: KSM scan events are in the trace.
  EXPECT_NE(incremental.find("ksm_scan"), std::string::npos);
  EXPECT_EQ(incremental, full);
}

TEST(DeterminismTest, FleetScenarioSameSeedIsByteIdentical) {
  const std::string first = RunFleetScenario(7, /*full_recompute=*/false);
  auto pad = std::make_unique<std::array<char, 8192>>();
  pad->fill('z');
  const std::string second = RunFleetScenario(7, /*full_recompute=*/false);
  EXPECT_EQ(first, second);
}

// Warm start must be invisible in the output: a fleet booted from
// checkpointed images (src/store/image_checkpoint) emits the same trace
// and metrics bytes as a cold-built one, at one thread and at two.
TEST(DeterminismTest, WarmStartFleetTraceIsByteIdenticalToCold) {
  const std::string cold = RunShardedFleetTrace(11, /*threads=*/1, nullptr);

  // The first warm run finds an empty store: shard 0's acquire cold-builds
  // and writes the checkpoint, shard 1's restores it — the two paths mix
  // within one run. The second warm run is pure restore, multi-threaded.
  KvStore store;
  const std::string warm_seeding = RunShardedFleetTrace(11, /*threads=*/1, &store);
  EXPECT_TRUE(
      store.Contains(ImageCheckpointKey(kFleetImageName, kFleetImageSeed, kFleetImageSizeBytes)));
  const std::string warm_restored = RunShardedFleetTrace(11, /*threads=*/2, &store);

  ASSERT_FALSE(cold.empty());
  EXPECT_EQ(cold, warm_seeding);
  EXPECT_EQ(cold, warm_restored);
}

// The whole-host crash/restore round trip is lossless down to the store
// bytes: re-checkpointing the restored host reproduces the pre-crash
// KvStore log exactly — options, both writable layers, guard state, save
// sequence, and the record framing around them.
TEST(DeterminismTest, HostCrashRestoreFromCheckpointIsByteIdentical) {
  HostCrashRun run = RunHostCrashRestore(0xC0FFEE);
  ASSERT_FALSE(run.checkpoint_log.empty());
  EXPECT_EQ(run.checkpoint_log, run.recheckpoint_log);
  EXPECT_EQ(run.draft, "intersection notes");
  EXPECT_TRUE(run.guard_survived);
}

TEST(DeterminismTest, HostCrashRestoreSameSeedIsByteIdentical) {
  const HostCrashRun first = RunHostCrashRestore(5);
  auto pad = std::make_unique<std::array<char, 8192>>();
  pad->fill('w');
  const HostCrashRun second = RunHostCrashRestore(5);
  ASSERT_FALSE(first.trace.empty());
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.checkpoint_log, second.checkpoint_log);
  EXPECT_EQ(first.recheckpoint_log, second.recheckpoint_log);
}

}  // namespace
}  // namespace nymix
