// Regression tests for the determinism contract (DESIGN.md): two runs of
// the same seeded scenario must produce byte-identical trace JSON. This is
// the test that catches pointer-keyed iteration orders (heap addresses
// differ between the two runs inside one process) and any other
// nondeterminism that survives nymlint's static rules.
#include <array>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/net/simulation.h"
#include "src/obs/observability.h"

namespace nymix {
namespace {

// A scenario that exercises the subsystems where iteration order could
// leak: several links sharing flows (FlowScheduler's per-link maps), PRNG-
// driven sizes and routes, and trace spans. Wall-time self-profiling is
// disabled so the exported JSON contains virtual-time content only.
std::string RunScenario(uint64_t seed) {
  Simulation sim(seed);
  Observability obs;
  obs.trace.set_enabled(true);
  obs.trace.set_record_wall_time(false);
  sim.loop().set_observability(&obs);

  Link* uplink = sim.CreateLink("uplink", Millis(5), 8'000'000);
  Link* relay_a = sim.CreateLink("relay-a", Millis(12), 4'000'000);
  Link* relay_b = sim.CreateLink("relay-b", Millis(9), 2'000'000);

  int completed = 0;
  int started = 0;
  for (int i = 0; i < 24; ++i) {
    uint64_t bytes = sim.prng().NextInRange(20'000, 400'000);
    std::vector<Link*> path;
    switch (sim.prng().NextBelow(3)) {
      case 0:
        path = {uplink};
        break;
      case 1:
        path = {uplink, relay_a};
        break;
      default:
        path = {uplink, relay_b};
        break;
    }
    ++started;
    sim.flows().StartFlow(Route::Through(path), bytes, 1.0,
                          [&completed](SimTime) { ++completed; });
    // Stagger the starts so flows overlap and bandwidth gets re-divided
    // across changing sets of contenders (the order-sensitive code path).
    sim.RunFor(Millis(sim.prng().NextBelow(30)));
  }

  {
    TraceSpan span(&obs.trace, sim.loop().clock(), "test", "drain", "main");
    sim.RunUntil([&] { return completed == started; });
  }
  return obs.trace.ToChromeJson();
}

// The fault-injection variant: lossy links, a flapping relay, probabilistic
// injector rolls, and status-form flows with stall deadlines. Every fault
// decision must come from the seeded streams, so two same-seed runs emit
// byte-identical traces — including the fault/retry instants.
std::string RunFaultScenario(uint64_t seed) {
  Simulation sim(seed);
  Observability obs;
  obs.trace.set_enabled(true);
  obs.trace.set_record_wall_time(false);
  sim.loop().set_observability(&obs);

  Link* uplink = sim.CreateLink("uplink", Millis(5), 8'000'000);
  Link* relay_a = sim.CreateLink("relay-a", Millis(12), 4'000'000);
  Link* relay_b = sim.CreateLink("relay-b", Millis(9), 2'000'000);

  LinkFaultProfile lossy;
  lossy.loss_probability = 0.04;
  lossy.spike_probability = 0.2;
  lossy.spike_latency = Millis(15);
  relay_a->SetFaultProfile(lossy, sim.faults().SeedFor("relay-a"));
  sim.faults().ConfigureProbability("chaos.extra-load", 0.25);
  // Scheduled outage: relay-b flaps down and back up mid-experiment.
  sim.faults().At(Millis(600), "relay-b-down", [relay_b] { relay_b->SetDown(true); });
  sim.faults().At(Millis(1400), "relay-b-up", [relay_b] { relay_b->SetDown(false); });

  int completed = 0;
  int started = 0;
  FlowOptions options;
  options.stall_timeout = Seconds(3);
  for (int i = 0; i < 24; ++i) {
    uint64_t bytes = sim.prng().NextInRange(20'000, 400'000);
    std::vector<Link*> path;
    switch (sim.prng().NextBelow(3)) {
      case 0:
        path = {uplink};
        break;
      case 1:
        path = {uplink, relay_a};
        break;
      default:
        path = {uplink, relay_b};
        break;
    }
    // Injector-driven extra load: some iterations double up.
    const int copies = sim.faults().Roll("chaos.extra-load") ? 2 : 1;
    for (int c = 0; c < copies; ++c) {
      ++started;
      sim.flows().StartFlow(Route::Through(path), bytes, 1.0, options,
                            [&completed](Result<SimTime>) { ++completed; });
    }
    sim.RunFor(Millis(sim.prng().NextBelow(30)));
  }

  {
    TraceSpan span(&obs.trace, sim.loop().clock(), "test", "drain", "main");
    sim.RunUntil([&] { return completed == started; });
  }
  return obs.trace.ToChromeJson();
}

TEST(DeterminismTest, SameSeedProducesIdenticalTraceJson) {
  // Shift heap layout between the runs: if any container orders by pointer
  // value, the second run sees different addresses and the JSON diverges.
  const std::string first = RunScenario(0xA11CE);
  auto pad = std::make_unique<std::array<char, 8192>>();
  pad->fill('x');
  const std::string second = RunScenario(0xA11CE);
  ASSERT_FALSE(first.empty());
  EXPECT_NE(first.find("traceEvents"), std::string::npos);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, RepeatedRunsStayIdentical) {
  const std::string baseline = RunScenario(7);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(baseline, RunScenario(7)) << "run " << i;
  }
}

TEST(DeterminismTest, DifferentSeedsProduceDifferentTraces) {
  // Sanity check that the scenario actually depends on the seed — if it
  // didn't, the identical-JSON assertions above would be vacuous.
  EXPECT_NE(RunScenario(1), RunScenario(2));
}

TEST(DeterminismTest, DisablingWallTimeStripsWallArgs) {
  const std::string json = RunScenario(3);
  EXPECT_EQ(json.find("wall_us"), std::string::npos);
}

TEST(DeterminismTest, FaultScenarioSameSeedIsByteIdentical) {
  const std::string first = RunFaultScenario(0xFA17);
  auto pad = std::make_unique<std::array<char, 8192>>();
  pad->fill('y');
  const std::string second = RunFaultScenario(0xFA17);
  ASSERT_FALSE(first.empty());
  // The scenario genuinely exercises the fault paths: downed links and
  // injector triggers leave their instants in the trace.
  EXPECT_NE(first.find("link_down:relay-b"), std::string::npos);
  EXPECT_NE(first.find("inject:"), std::string::npos);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, FaultScenarioDifferentSeedsDiverge) {
  EXPECT_NE(RunFaultScenario(21), RunFaultScenario(22));
}

}  // namespace
}  // namespace nymix
