// Regression tests for the determinism contract (DESIGN.md): two runs of
// the same seeded scenario must produce byte-identical trace JSON. This is
// the test that catches pointer-keyed iteration orders (heap addresses
// differ between the two runs inside one process) and any other
// nondeterminism that survives nymlint's static rules.
#include <array>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/net/simulation.h"
#include "src/obs/observability.h"

namespace nymix {
namespace {

// A scenario that exercises the subsystems where iteration order could
// leak: several links sharing flows (FlowScheduler's per-link maps), PRNG-
// driven sizes and routes, and trace spans. Wall-time self-profiling is
// disabled so the exported JSON contains virtual-time content only.
std::string RunScenario(uint64_t seed) {
  Simulation sim(seed);
  Observability obs;
  obs.trace.set_enabled(true);
  obs.trace.set_record_wall_time(false);
  sim.loop().set_observability(&obs);

  Link* uplink = sim.CreateLink("uplink", Millis(5), 8'000'000);
  Link* relay_a = sim.CreateLink("relay-a", Millis(12), 4'000'000);
  Link* relay_b = sim.CreateLink("relay-b", Millis(9), 2'000'000);

  int completed = 0;
  int started = 0;
  for (int i = 0; i < 24; ++i) {
    uint64_t bytes = sim.prng().NextInRange(20'000, 400'000);
    std::vector<Link*> path;
    switch (sim.prng().NextBelow(3)) {
      case 0:
        path = {uplink};
        break;
      case 1:
        path = {uplink, relay_a};
        break;
      default:
        path = {uplink, relay_b};
        break;
    }
    ++started;
    sim.flows().StartFlow(Route::Through(path), bytes, 1.0,
                          [&completed](SimTime) { ++completed; });
    // Stagger the starts so flows overlap and bandwidth gets re-divided
    // across changing sets of contenders (the order-sensitive code path).
    sim.RunFor(Millis(sim.prng().NextBelow(30)));
  }

  {
    TraceSpan span(&obs.trace, sim.loop().clock(), "test", "drain", "main");
    sim.RunUntil([&] { return completed == started; });
  }
  return obs.trace.ToChromeJson();
}

TEST(DeterminismTest, SameSeedProducesIdenticalTraceJson) {
  // Shift heap layout between the runs: if any container orders by pointer
  // value, the second run sees different addresses and the JSON diverges.
  const std::string first = RunScenario(0xA11CE);
  auto pad = std::make_unique<std::array<char, 8192>>();
  pad->fill('x');
  const std::string second = RunScenario(0xA11CE);
  ASSERT_FALSE(first.empty());
  EXPECT_NE(first.find("traceEvents"), std::string::npos);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, RepeatedRunsStayIdentical) {
  const std::string baseline = RunScenario(7);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(baseline, RunScenario(7)) << "run " << i;
  }
}

TEST(DeterminismTest, DifferentSeedsProduceDifferentTraces) {
  // Sanity check that the scenario actually depends on the seed — if it
  // didn't, the identical-JSON assertions above would be vacuous.
  EXPECT_NE(RunScenario(1), RunScenario(2));
}

TEST(DeterminismTest, DisablingWallTimeStripsWallArgs) {
  const std::string json = RunScenario(3);
  EXPECT_EQ(json.find("wall_us"), std::string::npos);
}

}  // namespace
}  // namespace nymix
