// Tests for src/store: CRC-32C vectors, record-log framing and
// longest-valid-prefix recovery, the KV store (including torn-tail
// recovery and compaction determinism), the NBT trace/metrics codec with
// a seeded corruption fuzz, and the image-checkpoint warm-start path.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/store/crc32.h"
#include "src/store/image_checkpoint.h"
#include "src/store/kv_store.h"
#include "src/store/nbt.h"
#include "src/store/record_log.h"
#include "src/unionfs/disk_image.h"
#include "src/util/prng.h"

namespace nymix {
namespace {

Bytes B(std::string_view text) { return BytesFromString(text); }

// --- CRC-32C ---------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 B.4 check value for "123456789".
  EXPECT_EQ(Crc32c(B("123456789")), 0xE3069283u);
  EXPECT_EQ(Crc32c(ByteSpan()), 0x00000000u);
  EXPECT_EQ(Crc32c(B("a")), 0xC1D04330u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  Bytes data = B("the quick brown fox jumps over the lazy dog");
  for (size_t split = 0; split <= data.size(); split += 7) {
    uint32_t state = kCrc32cInit;
    state = Crc32cUpdate(state, ByteSpan(data.data(), split));
    state = Crc32cUpdate(state, ByteSpan(data.data() + split, data.size() - split));
    EXPECT_EQ(Crc32cFinish(state), Crc32c(data)) << "split at " << split;
  }
}

// --- record log ------------------------------------------------------------

TEST(RecordLogTest, FreshLogIsHeaderOnly) {
  RecordLogWriter writer;
  EXPECT_EQ(writer.bytes().size(), 12u);  // magic[8] + u32 version
  ScanResult scan = ScanRecordLog(writer.bytes());
  EXPECT_TRUE(scan.clean());
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, writer.bytes().size());
}

TEST(RecordLogTest, RoundTrip) {
  RecordLogWriter writer;
  writer.Append(1, B("alpha"));
  writer.Append(2, ByteSpan());  // empty payloads are legal
  writer.Append(7, B("gamma gamma"));
  Result<std::vector<Record>> records = ReadRecordLog(writer.bytes());
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].type, 1u);
  EXPECT_EQ(StringFromBytes((*records)[0].payload), "alpha");
  EXPECT_EQ((*records)[1].type, 2u);
  EXPECT_TRUE((*records)[1].payload.empty());
  EXPECT_EQ(StringFromBytes((*records)[2].payload), "gamma gamma");
}

TEST(RecordLogTest, ResumeAppendsToExistingLog) {
  RecordLogWriter first;
  first.Append(1, B("one"));
  RecordLogWriter resumed(first.TakeBytes());
  resumed.Append(2, B("two"));
  Result<std::vector<Record>> records = ReadRecordLog(resumed.bytes());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ(StringFromBytes((*records)[1].payload), "two");
}

TEST(RecordLogTest, EncodingIsDeterministic) {
  RecordLogWriter a;
  RecordLogWriter b;
  for (RecordLogWriter* writer : {&a, &b}) {
    writer->Append(3, B("same bytes"));
    writer->Append(4, B("every time"));
  }
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(RecordLogTest, TornTailRecoversPrefix) {
  RecordLogWriter writer;
  writer.Append(1, B("kept"));
  writer.Append(2, B("torn away"));
  Bytes torn = writer.bytes();
  torn.resize(torn.size() - 3);  // rip into the final record

  ScanResult scan = ScanRecordLog(torn);
  EXPECT_EQ(scan.tail, LogTail::kTruncated);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(StringFromBytes(scan.records[0].payload), "kept");

  // The valid prefix is a clean log in its own right — resume and go on.
  Bytes prefix(torn.begin(), torn.begin() + static_cast<long>(scan.valid_bytes));
  EXPECT_TRUE(ScanRecordLog(prefix).clean());
  RecordLogWriter resumed(std::move(prefix));
  resumed.Append(3, B("after crash"));
  EXPECT_TRUE(ScanRecordLog(resumed.bytes()).clean());
}

TEST(RecordLogTest, CorruptPayloadDetected) {
  RecordLogWriter writer;
  writer.Append(1, B("kept"));
  writer.Append(2, B("flipped"));
  Bytes data = writer.bytes();
  data[data.size() - 6] ^= 0x40;  // inside the last record's payload

  ScanResult scan = ScanRecordLog(data);
  EXPECT_EQ(scan.tail, LogTail::kCorrupt);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(StringFromBytes(scan.records[0].payload), "kept");
  EXPECT_FALSE(ReadRecordLog(data).ok());
}

TEST(RecordLogTest, CorruptMiddleRecordLosesSuffix) {
  RecordLogWriter writer;
  writer.Append(1, B("first"));
  writer.Append(2, B("damaged"));
  writer.Append(3, B("unreachable"));
  Bytes data = writer.bytes();
  // Offset of record 2's payload: header 12 + record 1 (12 + 5 + 4) + 12.
  data[12 + 21 + 12] ^= 0x01;

  ScanResult scan = ScanRecordLog(data);
  EXPECT_EQ(scan.tail, LogTail::kCorrupt);
  ASSERT_EQ(scan.records.size(), 1u);  // everything after the damage is gone
  EXPECT_EQ(StringFromBytes(scan.records[0].payload), "first");
}

TEST(RecordLogTest, BadHeaderScansNothing) {
  Bytes garbage = B("not a nymix log at all");
  ScanResult scan = ScanRecordLog(garbage);
  EXPECT_EQ(scan.tail, LogTail::kBadHeader);
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_FALSE(ReadRecordLog(garbage).ok());
}

TEST(RecordLogTest, InsaneLengthFieldIsCorruption) {
  RecordLogWriter writer;
  Bytes data = writer.TakeBytes();
  AppendU32(data, kMaxRecordPayload + 1);  // length field beyond the cap
  AppendU32(data, 1);                      // type
  AppendU32(data, 0);                      // "crc" — never reached
  ScanResult scan = ScanRecordLog(data);
  EXPECT_EQ(scan.tail, LogTail::kCorrupt);
  EXPECT_EQ(scan.valid_bytes, 12u);
}

// --- KV store --------------------------------------------------------------

TEST(KvStoreTest, PutGetDelete) {
  KvStore store;
  store.PutString("nym/alice", "anon state");
  store.PutString("nym/bob", "other state");
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains("nym/alice"));
  ASSERT_TRUE(store.GetString("nym/alice").ok());
  EXPECT_EQ(*store.GetString("nym/alice"), "anon state");

  store.PutString("nym/alice", "updated");  // overwrite wins
  EXPECT_EQ(*store.GetString("nym/alice"), "updated");
  EXPECT_EQ(store.size(), 2u);

  store.Delete("nym/bob");
  EXPECT_FALSE(store.Contains("nym/bob"));
  EXPECT_FALSE(store.Get("nym/bob").ok());
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, OpenRoundTrip) {
  KvStore store;
  store.PutString("a", "1");
  store.PutString("b", "2");
  store.Delete("a");
  Result<KvStore> reopened = KvStore::Open(store.log());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->size(), 1u);
  EXPECT_EQ(*reopened->GetString("b"), "2");
  EXPECT_FALSE(reopened->Contains("a"));
  // Replaying a log reproduces the byte-identical log.
  EXPECT_EQ(reopened->log(), store.log());
}

TEST(KvStoreTest, LogImageIsDeterministic) {
  KvStore a;
  KvStore b;
  for (KvStore* store : {&a, &b}) {
    store->PutString("x", "same");
    store->Delete("x");
    store->PutString("y", "ops");
  }
  EXPECT_EQ(a.log(), b.log());
}

TEST(KvStoreTest, CompactDropsHistoryKeepsContent) {
  KvStore store;
  for (int i = 0; i < 10; ++i) {
    store.PutString("hot", "version " + std::to_string(i));
  }
  store.PutString("doomed", "bytes");
  store.Delete("doomed");
  size_t before = store.log().size();
  store.Compact();
  EXPECT_LT(store.log().size(), before);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(*store.GetString("hot"), "version 9");

  // Compaction normalizes: stores with equal content but different
  // histories compact to the same bytes.
  KvStore direct;
  direct.PutString("hot", "version 9");
  direct.Compact();
  EXPECT_EQ(store.log(), direct.log());
}

TEST(KvStoreTest, RecoverTornTail) {
  KvStore store;
  store.PutString("survives", "yes");
  store.PutString("torn", "this record will be ripped");
  Bytes data = store.log();
  data.resize(data.size() - 5);

  EXPECT_FALSE(KvStore::Open(data).ok());  // strict refuses damage
  Result<KvRecoverResult> recovered = KvStore::Recover(data);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->clean);
  EXPECT_GT(recovered->lost_bytes, 0u);
  EXPECT_TRUE(recovered->store.Contains("survives"));
  EXPECT_FALSE(recovered->store.Contains("torn"));
}

TEST(KvStoreTest, RecoverRejectsForeignBytes) {
  EXPECT_FALSE(KvStore::Recover(B("some other file format")).ok());
}

TEST(KvStoreTest, SaveLoadFile) {
  std::string path = testing::TempDir() + "/kv_store_test.nymlog";
  KvStore store;
  store.PutString("k", "v");
  ASSERT_TRUE(store.Save(path).ok());
  Result<KvStore> loaded = KvStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded->GetString("k"), "v");
}

// --- NBT codec -------------------------------------------------------------

// A recorder exercising every event phase, with exact-float values.
TraceRecorder MakeSampleTrace() {
  TraceRecorder trace;
  trace.set_enabled(true);
  trace.set_record_wall_time(false);
  trace.AddComplete("core", "boot", "nym0", Millis(1), Millis(40));
  trace.AddComplete("core", "profiled", "nym0", Millis(2), Millis(3), /*wall_us=*/17.25);
  trace.AddInstant("net", "flap", "uplink", Millis(5));
  trace.AddCounter("loop", "queue_depth", Millis(6), 3.5);
  trace.AddAsyncBegin("net", "flow", 42, Millis(7));
  trace.AddAsyncEnd("net", "flow", 42, Millis(9));
  return trace;
}

MetricsRegistry MakeSampleMetrics() {
  MetricsRegistry metrics;
  metrics.set_enabled(true);
  metrics.GetCounter("core.boots")->Increment(3);
  metrics.GetGauge("mem.resident_mib")->Set(123.456789);
  Histogram* hist = metrics.GetHistogram("net.rtt_us");
  for (double v : {0.0, 1.0, 2.5, 40000.0, 123456.0, -3.0}) {
    hist->Record(v);
  }
  return metrics;
}

TEST(NbtTest, TraceRoundTripIsByteIdentical) {
  TraceRecorder trace = MakeSampleTrace();
  Bytes encoded = EncodeNbt(&trace, nullptr);
  Result<NbtDocument> decoded = DecodeNbt(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->has_trace);
  EXPECT_FALSE(decoded->has_metrics);
  EXPECT_EQ(decoded->trace.ToChromeJson(), trace.ToChromeJson());
  EXPECT_EQ(NbtToJson(*decoded), trace.ToChromeJson());
}

TEST(NbtTest, MetricsRoundTripIsByteIdentical) {
  MetricsRegistry metrics = MakeSampleMetrics();
  Bytes encoded = EncodeNbt(nullptr, &metrics);
  Result<NbtDocument> decoded = DecodeNbt(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded->has_trace);
  ASSERT_TRUE(decoded->has_metrics);
  std::ostringstream expected;
  metrics.WriteJson(expected);
  EXPECT_EQ(NbtToJson(*decoded), expected.str());
}

TEST(NbtTest, CombinedDocumentMatchesJsonFormatOutput) {
  TraceRecorder trace = MakeSampleTrace();
  MetricsRegistry metrics = MakeSampleMetrics();
  Bytes encoded = EncodeNbt(&trace, &metrics);
  Result<NbtDocument> decoded = DecodeNbt(encoded);
  ASSERT_TRUE(decoded.ok());
  std::ostringstream expected;
  expected << trace.ToChromeJson();
  metrics.WriteJson(expected);
  EXPECT_EQ(NbtToJson(*decoded), expected.str());
}

TEST(NbtTest, RestoredRecorderKeepsRecording) {
  TraceRecorder trace = MakeSampleTrace();
  Bytes encoded = EncodeNbt(&trace, nullptr);
  Result<NbtDocument> decoded = DecodeNbt(encoded);
  ASSERT_TRUE(decoded.ok());
  // New events on a restored recorder land after the decoded ones and on
  // fresh tracks — the derived tid/timeline counters were recomputed.
  decoded->trace.AddInstant("core", "post_restore", "new_track", Millis(50));
  trace.AddInstant("core", "post_restore", "new_track", Millis(50));
  EXPECT_EQ(decoded->trace.ToChromeJson(), trace.ToChromeJson());
}

TEST(NbtTest, StrictDecodeRejectsDamage) {
  TraceRecorder trace = MakeSampleTrace();
  Bytes encoded = EncodeNbt(&trace, nullptr);
  Bytes torn = encoded;
  torn.resize(torn.size() - 2);
  EXPECT_FALSE(DecodeNbt(torn).ok());
  Bytes flipped = encoded;
  flipped[flipped.size() - 1] ^= 0xFF;
  EXPECT_FALSE(DecodeNbt(flipped).ok());
}

// Seeded fuzz: random event streams, then a torn or corrupted tail. The
// recovery contract under test: RecoverNbt never fails past a valid
// header, recovers a strict prefix of the original event stream, and the
// recovered prefix re-exports byte-identically to a recorder holding just
// those events.
TEST(NbtTest, FuzzTornAndCorruptTailRecovery) {
  Prng prng(0xA11CE5EED);
  const char* kCategories[] = {"core", "net", "hv"};
  for (int round = 0; round < 40; ++round) {
    TraceRecorder trace;
    trace.set_enabled(true);
    trace.set_record_wall_time(false);
    int events = static_cast<int>(prng.NextBelow(30));
    for (int e = 0; e < events; ++e) {
      const char* category = kCategories[prng.NextBelow(3)];
      std::string name = "ev" + std::to_string(prng.NextBelow(5));
      std::string track = "t" + std::to_string(prng.NextBelow(4));
      SimTime ts = static_cast<SimTime>(prng.NextBelow(1'000'000));
      switch (prng.NextBelow(5)) {
        case 0:
          trace.AddComplete(category, name, track, ts,
                            static_cast<SimDuration>(prng.NextBelow(10'000)));
          break;
        case 1:
          trace.AddComplete(category, name, track, ts,
                            static_cast<SimDuration>(prng.NextBelow(10'000)),
                            prng.NextDouble() * 100.0);
          break;
        case 2:
          trace.AddInstant(category, name, track, ts);
          break;
        case 3:
          trace.AddCounter(category, name, ts, prng.NextDouble() * 1e6 - 1e3);
          break;
        default:
          trace.AddAsyncBegin(category, name, prng.NextU64(), ts);
          break;
      }
    }
    Bytes encoded = EncodeNbt(&trace, nullptr);

    // Clean decode first: the fuzz stream itself must round-trip.
    Result<NbtDocument> clean = DecodeNbt(encoded);
    ASSERT_TRUE(clean.ok()) << "round " << round << ": " << clean.status().ToString();
    ASSERT_EQ(clean->trace.ToChromeJson(), trace.ToChromeJson()) << "round " << round;

    // Now damage the tail: torn write or a flipped byte past the header.
    Bytes damaged = encoded;
    bool torn = prng.NextBelow(2) == 0;
    if (torn && damaged.size() > 13) {
      damaged.resize(12 + prng.NextBelow(damaged.size() - 12));
    } else if (damaged.size() > 12) {
      damaged[12 + prng.NextBelow(damaged.size() - 12)] ^= 1u << prng.NextBelow(8);
    }
    Result<NbtRecovered> recovered = RecoverNbt(damaged);
    ASSERT_TRUE(recovered.ok()) << "round " << round << ": " << recovered.status().ToString();
    EXPECT_EQ(recovered->lost_bytes, damaged.size() - recovered->valid_bytes);
    ASSERT_LE(recovered->events_recovered, trace.events().size()) << "round " << round;
    if (recovered->doc.has_trace) {
      // The recovered events are exactly the first events_recovered of the
      // original stream.
      const std::vector<TraceRecorder::Event>& got = recovered->doc.trace.events();
      ASSERT_EQ(got.size(), recovered->events_recovered);
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].phase, trace.events()[i].phase) << "round " << round;
        EXPECT_EQ(got[i].name, trace.events()[i].name) << "round " << round;
        EXPECT_EQ(got[i].ts, trace.events()[i].ts) << "round " << round;
      }
    }
  }
}

// --- image checkpoint ------------------------------------------------------

TEST(ImageCheckpointTest, KeyFormat) {
  EXPECT_EQ(ImageCheckpointKey("nymix", 42, 64 * kMiB), "image/nymix/42/67108864");
}

TEST(ImageCheckpointTest, EncodeDecodeRoundTrip) {
  auto image = BaseImage::CreateDistribution("tiny", 7, kMiB);
  Bytes payload = EncodeImageCheckpoint(*image);
  Result<std::shared_ptr<BaseImage>> restored = DecodeImageCheckpoint(payload);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->name(), "tiny");
  EXPECT_EQ((*restored)->seed(), 7u);
  EXPECT_EQ((*restored)->size_bytes(), kMiB);
  EXPECT_EQ((*restored)->block_digests(), image->block_digests());
  EXPECT_EQ((*restored)->merkle_root(), image->merkle_root());
}

TEST(ImageCheckpointTest, DecodeRejectsDamage) {
  auto image = BaseImage::CreateDistribution("tiny", 7, kMiB);
  Bytes payload = EncodeImageCheckpoint(*image);
  Bytes truncated(payload.begin(), payload.begin() + 10);
  EXPECT_FALSE(DecodeImageCheckpoint(truncated).ok());
  // Flip a byte of the first block digest (offset: lp name "tiny" = 8,
  // seed + size = 16, digest count = 4): the leaf spot-check catches the
  // digest table and Merkle tree drifting apart.
  Bytes flipped = payload;
  flipped[28] ^= 0x01;
  EXPECT_FALSE(DecodeImageCheckpoint(flipped).ok());
}

TEST(ImageCheckpointTest, AcquireColdThenWarm) {
  KvStore store;
  bool cold_built = false;
  Result<std::shared_ptr<BaseImage>> first =
      AcquireDistributionImage(store, "img", 9, kMiB, &cold_built);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(cold_built);
  EXPECT_TRUE(store.Contains(ImageCheckpointKey("img", 9, kMiB)));

  Result<std::shared_ptr<BaseImage>> second =
      AcquireDistributionImage(store, "img", 9, kMiB, &cold_built);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(cold_built);  // warm path
  // Bit-equal artifacts: the restored image is indistinguishable.
  EXPECT_EQ((*second)->merkle_root(), (*first)->merkle_root());
  EXPECT_EQ((*second)->block_digests(), (*first)->block_digests());
  // Distinct objects — callers may hand them to different shards.
  EXPECT_NE(second->get(), first->get());
}

TEST(ImageCheckpointTest, MalformedCheckpointFallsBackToColdBuild) {
  KvStore store;
  store.PutString(ImageCheckpointKey("img", 9, kMiB), "not a checkpoint");
  bool cold_built = false;
  Result<std::shared_ptr<BaseImage>> image =
      AcquireDistributionImage(store, "img", 9, kMiB, &cold_built);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_TRUE(cold_built);
  // The bad entry was repaired in place; the next acquire is warm.
  Result<std::shared_ptr<BaseImage>> again =
      AcquireDistributionImage(store, "img", 9, kMiB, &cold_built);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(cold_built);
}

}  // namespace
}  // namespace nymix
