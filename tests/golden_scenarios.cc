#include "tests/golden_scenarios.h"

#include <sstream>
#include <utility>

#include "src/core/fleet.h"
#include "src/core/testbed.h"
#include "src/fuzz/runner.h"
#include "src/fuzz/scenario.h"
#include "src/obs/observability.h"
#include "src/store/file_io.h"
#include "src/store/nbt.h"

namespace nymix {
namespace {

// Each scenario is a run helper handing its finished recorder (and, for the
// fleet, the merged registry) to an emitter, so the JSON and NBT goldens
// are two encodings of one run rather than two runs that could drift.
template <typename Emit>
auto RunFig5(Emit emit) {
  Simulation sim(5);
  Observability obs;
  obs.EnableAll();
  obs.trace.set_record_wall_time(false);
  obs.metrics.set_record_wall_time(false);
  sim.loop().set_observability(&obs);

  Link* uplink = sim.CreateLink("uplink", Millis(40), 10'000'000);
  Link* relay = sim.CreateLink("relay", Millis(5), 100'000'000);
  Link* exit = sim.CreateLink("exit", Millis(5), 50'000'000);

  int done = 0;
  for (int f = 0; f < 3; ++f) {
    sim.flows().StartFlow(Route::Through({uplink, relay, exit}), 400'000 + 100'000 * f, 1.12,
                          [&done](SimTime) { ++done; });
  }
  // A competing short flow on the uplink only, plus a flap mid-transfer.
  sim.flows().StartFlow(Route::Through({uplink}), 250'000, 1.0, [&done](SimTime) { ++done; });
  sim.loop().ScheduleAt(Millis(400), [relay] { relay->SetDown(true); });
  sim.loop().ScheduleAt(Millis(700), [relay] { relay->SetDown(false); });
  sim.RunUntil([&done] { return done == 4; });

  return emit(obs.trace, static_cast<const MetricsRegistry*>(nullptr));
}

template <typename Emit>
auto RunFig7(Emit emit) {
  Testbed bed(7);
  Observability obs;
  obs.EnableAll();
  obs.trace.set_record_wall_time(false);
  obs.metrics.set_record_wall_time(false);
  bed.sim().loop().set_observability(&obs);

  Nym* nym = bed.CreateNymBlocking("golden");
  NYMIX_CHECK(bed.VisitBlocking(nym, bed.sites().ByName("BBC")).ok());
  NYMIX_CHECK(bed.manager().TerminateNym(nym).ok());

  return emit(obs.trace, static_cast<const MetricsRegistry*>(nullptr));
}

template <typename Emit>
auto RunScaleFleet(Emit emit) {
  ShardedSimulation sharded(11, ShardPlan{/*shards=*/2, /*threads=*/1});
  sharded.EnableObservability(/*record_wall_time=*/false);
  FleetOptions options;
  options.nym_count = 4;
  options.nyms_per_host = 2;
  ShardedFleet fleet(sharded, options, 11);
  fleet.Run();
  sharded.MergeObservability();

  // Trace plus the metrics dump: the fleet scenario is the one place the
  // corpus covers the merged multi-shard registry format too.
  return emit(sharded.merged().trace, &sharded.merged().metrics);
}

// Promoted fuzz survivors: the checked-in .nymfuzz corpus entry is the
// single source of truth for the scenario; its base (threads=1) run is
// re-emitted through the fuzz runner's golden hook. A digest drift shows
// up here as a reviewable golden diff AND in `nymfuzz --corpus` replay.
template <typename Emit>
auto RunCorpusSurvivor(const char* basename, Emit emit) {
  std::string path = std::string(NYMIX_CORPUS_DIR) + "/" + basename;
  Result<Bytes> data = ReadFileBytes(path);
  NYMIX_CHECK_MSG(data.ok(), "golden corpus survivor unreadable: " + path);
  Result<ReproFile> repro = ReproFromText(StringFromBytes(*data));
  NYMIX_CHECK_MSG(repro.ok(), "golden corpus survivor unparsable: " + path);
  decltype(emit(std::declval<const TraceRecorder&>(),
                static_cast<const MetricsRegistry*>(nullptr))) out;
  Status ran = RunScenarioGolden(
      repro->scenario, [&out, &emit](const TraceRecorder& trace, const MetricsRegistry& metrics) {
        out = emit(trace, &metrics);
      });
  NYMIX_CHECK_MSG(ran.ok(), "golden corpus survivor failed to run: " + path);
  return out;
}

std::string EmitJson(const TraceRecorder& trace, const MetricsRegistry* metrics) {
  std::ostringstream out;
  out << trace.ToChromeJson();
  if (metrics != nullptr) {
    metrics->WriteJson(out);
  }
  return out.str();
}

Bytes EmitNbt(const TraceRecorder& trace, const MetricsRegistry* metrics) {
  return EncodeNbt(&trace, metrics);
}

std::string Fig5Small() { return RunFig5(EmitJson); }
std::string Fig7Small() { return RunFig7(EmitJson); }
std::string ScaleFleetSmall() { return RunScaleFleet(EmitJson); }
Bytes Fig5SmallNbt() { return RunFig5(EmitNbt); }
Bytes Fig7SmallNbt() { return RunFig7(EmitNbt); }
Bytes ScaleFleetSmallNbt() { return RunScaleFleet(EmitNbt); }

constexpr char kParallelBurst[] = "parallel-burst-collision-23.nymfuzz";
constexpr char kParallelEcho[] = "parallel-windowed-echo-17.nymfuzz";
constexpr char kAdversaryCookie[] = "adversary-planted-cookie-23.nymfuzz";

std::string ParallelBurstCollision() { return RunCorpusSurvivor(kParallelBurst, EmitJson); }
std::string ParallelWindowedEcho() { return RunCorpusSurvivor(kParallelEcho, EmitJson); }
std::string AdversaryPlantedCookie() { return RunCorpusSurvivor(kAdversaryCookie, EmitJson); }
Bytes ParallelBurstCollisionNbt() { return RunCorpusSurvivor(kParallelBurst, EmitNbt); }
Bytes ParallelWindowedEchoNbt() { return RunCorpusSurvivor(kParallelEcho, EmitNbt); }
Bytes AdversaryPlantedCookieNbt() { return RunCorpusSurvivor(kAdversaryCookie, EmitNbt); }

}  // namespace

const std::vector<GoldenScenario>& GoldenScenarios() {
  static const std::vector<GoldenScenario> kScenarios = {
      {"fig5_small", &Fig5Small, &Fig5SmallNbt},
      {"fig7_small", &Fig7Small, &Fig7SmallNbt},
      {"scale_fleet_small", &ScaleFleetSmall, &ScaleFleetSmallNbt},
      {"parallel_burst_collision_23", &ParallelBurstCollision, &ParallelBurstCollisionNbt},
      {"parallel_windowed_echo_17", &ParallelWindowedEcho, &ParallelWindowedEchoNbt},
      {"adversary_planted_cookie_23", &AdversaryPlantedCookie, &AdversaryPlantedCookieNbt},
  };
  return kScenarios;
}

}  // namespace nymix
