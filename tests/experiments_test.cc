// Shape tests for the evaluation harnesses: miniature versions of each
// figure/table asserting the paper's qualitative claims, so a regression
// that would bend a curve fails here before anyone reads bench output.
// Also pins end-to-end determinism: equal seeds must reproduce equal
// results bit-for-bit.
#include <gtest/gtest.h>

#include "src/core/testbed.h"

namespace nymix {
namespace {

// ---------------------------------------------------------------- Fig. 3 shape

TEST(ExperimentShapeTest, MemoryScalesLinearlyAndKsmSaves) {
  Testbed bed(1);
  bed.host().ksm().Start(Seconds(2));
  std::vector<uint64_t> used;
  for (int n = 0; n < 3; ++n) {
    Nym* nym = bed.CreateNymBlocking("m-" + std::to_string(n));
    ASSERT_TRUE(bed.VisitBlocking(nym, *bed.sites().all()[static_cast<size_t>(n)]).ok());
    bed.host().ksm().ScanNow();
    used.push_back(bed.host().UsedMemoryBytes());
  }
  // Increments are per-nymbox-sized and roughly equal (±15%).
  uint64_t inc1 = used[1] - used[0];
  uint64_t inc2 = used[2] - used[1];
  EXPECT_GT(inc1, 400 * kMiB);
  EXPECT_LT(inc1, 700 * kMiB);
  EXPECT_NEAR(static_cast<double>(inc2), static_cast<double>(inc1), 0.15 * inc1);
  // KSM produces real savings with multiple VMs up.
  EXPECT_GT(bed.host().ksm().stats().bytes_saved(), 20 * kMiB);
}

// ---------------------------------------------------------------- Fig. 4 shape

TEST(ExperimentShapeTest, PeacekeeperActualBeatsExpectedPastCoreCount) {
  Testbed bed(2);
  double single = 0;
  Peacekeeper::Run(bed.host(), true, [&](double score) { single = score; });
  bed.sim().loop().RunUntilIdle();
  std::vector<double> scores;
  for (int i = 0; i < 6; ++i) {
    Peacekeeper::Run(bed.host(), true, [&](double score) { scores.push_back(score); });
  }
  bed.sim().RunUntil([&] { return scores.size() == 6; });
  double avg = 0;
  for (double score : scores) {
    avg += score;
  }
  avg /= 6;
  double expected = Peacekeeper::ExpectedScore(single, 6, bed.host().config().cores);
  EXPECT_GT(avg, expected * 1.01);
  EXPECT_LT(avg, single);
}

// ---------------------------------------------------------------- Fig. 5 shape

TEST(ExperimentShapeTest, DownloadsScaleLinearlyWithFixedTorOverhead) {
  auto run = [](int nyms) {
    Testbed bed(40 + nyms);
    std::vector<Nym*> all;
    for (int i = 0; i < nyms; ++i) {
      all.push_back(bed.CreateNymBlocking("d-" + std::to_string(i)));
    }
    std::vector<double> times;
    for (Nym* nym : all) {
      DownloadKernel(*nym->anonymizer(), bed.mirror(), bed.sim(), [&](Result<double> r) {
        times.push_back(*r);
      });
    }
    bed.sim().RunUntil([&] { return times.size() == static_cast<size_t>(nyms); });
    double worst = 0;
    for (double t : times) {
      worst = std::max(worst, t);
    }
    return worst;
  };
  double one = run(1);
  double three = run(3);
  double ideal_one = kLinuxKernelTarballBytes * 8.0 / 10'000'000;
  // Overhead within 10-15% of ideal, and 3 nyms cost ~3x one.
  EXPECT_GT(one, ideal_one * 1.08);
  EXPECT_LT(one, ideal_one * 1.16);
  EXPECT_NEAR(three, 3 * one, 0.05 * three);
}

// ---------------------------------------------------------------- Fig. 6 shape

TEST(ExperimentShapeTest, ArchiveSizesGrowMonotonically) {
  Testbed bed(4);
  ASSERT_TRUE(bed.cloud().CreateAccount("u", "cp").ok());
  Website& site = bed.sites().ByName("Facebook");
  Nym* nym = bed.CreateNymBlocking("grow");
  std::vector<uint64_t> sizes;
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(bed.VisitBlocking(nym, site).ok());
    auto receipt = bed.SaveBlocking(nym, "u", "cp", "np");
    ASSERT_TRUE(receipt.ok());
    sizes.push_back(receipt->logical_size);
    ASSERT_TRUE(bed.manager().TerminateNym(nym).ok());
    auto restored = bed.LoadBlocking("grow", "u", "cp", "np");
    ASSERT_TRUE(restored.ok());
    nym = *restored;
  }
  EXPECT_LT(sizes[0], sizes[1]);
  EXPECT_LT(sizes[1], sizes[2]);
  // Revisit growth is much smaller than the initial payload.
  EXPECT_LT(sizes[2] - sizes[1], sizes[0]);
}

// ---------------------------------------------------------------- Fig. 7 shape

TEST(ExperimentShapeTest, WarmTorBeatsColdButLoadsPayEphemeralPhase) {
  Testbed bed(5);
  ASSERT_TRUE(bed.cloud().CreateAccount("u", "cp").ok());
  NymStartupReport fresh;
  Nym* nym = bed.CreateNymBlocking("f", {}, &fresh);
  ASSERT_TRUE(bed.SaveBlocking(nym, "u", "cp", "np").ok());
  ASSERT_TRUE(bed.manager().TerminateNym(nym).ok());
  NymStartupReport restored;
  auto loaded = bed.LoadBlocking("f", "u", "cp", "np", {}, &restored);
  ASSERT_TRUE(loaded.ok());
  EXPECT_LT(restored.start_anonymizer, fresh.start_anonymizer / 2);
  EXPECT_GT(restored.ephemeral_nym, Seconds(5));
  EXPECT_EQ(fresh.ephemeral_nym, 0);
  EXPECT_GT(restored.Total(), fresh.Total());  // the ephemeral phase dominates
}

// ---------------------------------------------------------------- Determinism

TEST(DeterminismTest, SameSeedReproducesExactly) {
  auto run = []() {
    Testbed bed(777);
    NymStartupReport report;
    Nym* nym = bed.CreateNymBlocking("det", {}, &report);
    NYMIX_CHECK(bed.VisitBlocking(nym, bed.sites().ByName("Gmail")).ok());
    NYMIX_CHECK(bed.cloud().CreateAccount("u", "cp").ok());
    auto receipt = bed.SaveBlocking(nym, "u", "cp", "np");
    NYMIX_CHECK(receipt.ok());
    struct Outcome {
      SimDuration total;
      uint64_t archive;
      std::string cookie;
      size_t guard;
      SimTime end;
    };
    return Outcome{report.Total(), receipt->logical_size,
                   nym->browser()->CookieFor("mail.google.com"),
                   *static_cast<TorClient*>(nym->anonymizer())->entry_guard_index(),
                   bed.sim().now()};
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first.total, second.total);
  EXPECT_EQ(first.archive, second.archive);
  EXPECT_EQ(first.cookie, second.cookie);
  EXPECT_EQ(first.guard, second.guard);
  EXPECT_EQ(first.end, second.end);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  auto cookie_for = [](uint64_t seed) {
    Testbed bed(seed);
    Nym* nym = bed.CreateNymBlocking("det");
    NYMIX_CHECK(bed.VisitBlocking(nym, bed.sites().ByName("Gmail")).ok());
    return nym->browser()->CookieFor("mail.google.com");
  };
  EXPECT_NE(cookie_for(1), cookie_for(2));
}

}  // namespace
}  // namespace nymix
