#include <gtest/gtest.h>

#include "src/compress/nymzip.h"
#include "src/util/prng.h"

namespace nymix {
namespace {

TEST(NymzipTest, EmptyInput) {
  Bytes frame = NymzipCompress({});
  auto out = NymzipDecompress(frame);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  EXPECT_EQ(*NymzipUncompressedSize(frame), 0u);
}

TEST(NymzipTest, ShortInputsRoundTrip) {
  for (size_t n : {1u, 2u, 3u, 4u, 5u}) {
    Bytes input(n, 'x');
    auto out = NymzipDecompress(NymzipCompress(input));
    ASSERT_TRUE(out.ok()) << n;
    EXPECT_EQ(*out, input);
  }
}

TEST(NymzipTest, TextRoundTripAndShrinks) {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "the quick brown fox jumps over the lazy dog. ";
  }
  Bytes input = BytesFromString(text);
  Bytes frame = NymzipCompress(input);
  EXPECT_LT(frame.size(), input.size() / 4);
  auto out = NymzipDecompress(frame);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(NymzipTest, AllZerosCompressesHard) {
  Bytes input(1 * kMiB, 0);
  Bytes frame = NymzipCompress(input);
  EXPECT_LT(frame.size(), input.size() / 100);
  auto out = NymzipDecompress(frame);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), input.size());
  EXPECT_EQ(*out, input);
}

TEST(NymzipTest, RandomDataRoundTripsWithoutBlowup) {
  Prng prng(3);
  Bytes input = prng.NextBytes(256 * 1024);
  Bytes frame = NymzipCompress(input);
  // Incompressible data should cost at most a couple of percent overhead.
  EXPECT_LT(frame.size(), input.size() + input.size() / 32 + 64);
  auto out = NymzipDecompress(frame);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(NymzipTest, OverlappingMatchesDecodeCorrectly) {
  // "abcabcabc..." forces matches whose source overlaps their destination.
  Bytes input;
  for (int i = 0; i < 10000; ++i) {
    input.push_back(static_cast<uint8_t>('a' + (i % 3)));
  }
  auto out = NymzipDecompress(NymzipCompress(input));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(NymzipTest, LongRangeMatchesBeyondWindowStillRoundTrip) {
  // Repeat a 100 KiB chunk (larger than the 64 KiB window) twice.
  Prng prng(4);
  Bytes chunk = prng.NextBytes(100 * 1024);
  Bytes input = chunk;
  input.insert(input.end(), chunk.begin(), chunk.end());
  auto out = NymzipDecompress(NymzipCompress(input));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(NymzipTest, RejectsGarbageFrame) {
  EXPECT_FALSE(NymzipDecompress(BytesFromString("not a frame")).ok());
  EXPECT_FALSE(NymzipDecompress({}).ok());
  EXPECT_FALSE(NymzipUncompressedSize(BytesFromString("xx")).ok());
}

TEST(NymzipTest, RejectsTruncatedFrame) {
  Bytes input = BytesFromString("hello hello hello hello hello hello");
  Bytes frame = NymzipCompress(input);
  frame.resize(frame.size() - 3);
  EXPECT_FALSE(NymzipDecompress(frame).ok());
}

TEST(NymzipTest, RejectsCorruptOpcode) {
  Bytes input = BytesFromString("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
  Bytes frame = NymzipCompress(input);
  frame[11] = 0x7f;  // first opcode byte
  EXPECT_FALSE(NymzipDecompress(frame).ok());
}

TEST(NymzipTest, RejectsBadMatchDistance) {
  // Hand-craft a frame whose match refers before the start of output.
  Bytes frame = {'N', 'Z', '1'};
  AppendU64(frame, 4);
  frame.push_back(0x01);               // match opcode
  AppendU16(frame, 4);                 // length
  AppendU16(frame, 9);                 // distance > output so far (0)
  EXPECT_FALSE(NymzipDecompress(frame).ok());
}

class NymzipSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(NymzipSweep, RoundTripMixedContent) {
  Prng prng(GetParam());
  Bytes input;
  // Alternating compressible runs and random spans of varying lengths.
  while (input.size() < GetParam() * 1000) {
    if (prng.NextBelow(2) == 0) {
      size_t run = 1 + prng.NextBelow(500);
      uint8_t byte = static_cast<uint8_t>(prng.NextBelow(256));
      input.insert(input.end(), run, byte);
    } else {
      Bytes random = prng.NextBytes(1 + prng.NextBelow(500));
      input.insert(input.end(), random.begin(), random.end());
    }
  }
  auto out = NymzipDecompress(NymzipCompress(input));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NymzipSweep, ::testing::Values(1, 5, 17, 50, 111, 200));

}  // namespace
}  // namespace nymix
