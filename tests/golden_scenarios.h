// Golden-trace scenario library: small, fixed-seed runs whose merged trace
// JSON is checked into tests/golden/ and compared byte-for-byte by
// tests/golden_trace_test.cc. The corpus pins the simulator's observable
// behavior: any change that moves an event, reorders a tie, renames a
// track or perturbs a float shows up as a golden diff that must be
// reviewed (and regenerated with tools/regolden.sh) rather than slipping
// through as silent drift.
//
// Scenario outputs must be deterministic byte streams: traces are recorded
// with wall-clock self-profiling off, and the fleet scenario runs through
// the sharded executor at threads=1 (any thread count produces the same
// bytes — that is src/parallel's contract, proven separately by
// tests/parallel_equivalence_test.cc).
#ifndef TESTS_GOLDEN_SCENARIOS_H_
#define TESTS_GOLDEN_SCENARIOS_H_

#include <string>
#include <vector>

#include "src/util/bytes.h"

namespace nymix {

struct GoldenScenario {
  // Basename of the checked-in file: tests/golden/<name>.json (or .nbt).
  const char* name;
  // Runs the scenario and returns the exact bytes the JSON golden holds.
  std::string (*generate)();
  // Same run, NBT-encoded (src/store/nbt.h). NbtToJson of this value is
  // byte-identical to generate() — one run, two encodings.
  Bytes (*generate_nbt)();
};

// fig5_small:      flow fair-sharing over a three-link topology with a
//                  mid-run flap (the Figure 5 bandwidth machinery, small).
// fig7_small:      one nym's full startup on the §5.2 testbed plus a page
//                  visit (the Figure 7 phases: boot, Tor bootstrap, load).
// scale_fleet_small: four nyms over two hosts in two shards through the
//                  parallel executor — merged multi-shard trace format.
// parallel_burst_collision_23, parallel_windowed_echo_17,
// adversary_planted_cookie_23: clean fuzz survivors promoted from
//                  tests/fuzz_corpus/ — the .nymfuzz entry is the source
//                  of truth and its base run is re-emitted here.
const std::vector<GoldenScenario>& GoldenScenarios();

}  // namespace nymix

#endif  // TESTS_GOLDEN_SCENARIOS_H_
