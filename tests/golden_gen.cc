// Regenerates the golden-trace corpus. Run via tools/regolden.sh, which
// rebuilds this binary and rewrites tests/golden/*.json in place; review
// the diff like any other source change.
//
// Usage: golden_gen [--format=json|nbt] <output-dir> [scenario...]
//   --format=json (default) writes <name>.json, the checked-in corpus
//   --format=nbt writes <name>.nbt, the binary encoding of the same run
// Naming a scenario that does not exist is a hard error (exit 2) listing
// the library — a typo must not silently regenerate nothing.
#include <cstdio>
#include <cstring>
// nymlint:allow-file(store-raw-io): writes the human-reviewable golden JSON
// corpus; see golden_trace_test.cc for why it stays outside the record log.
#include <fstream>
#include <string>
#include <vector>

#include "tests/golden_scenarios.h"

namespace {

bool WriteFileOrComplain(const std::string& path, const char* data, size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "golden_gen: cannot write %s\n", path.c_str());
    return false;
  }
  out.write(data, static_cast<std::streamsize>(size));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "golden_gen: write failed for %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "json";
  std::string out_dir;
  std::vector<std::string> wanted;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--format=", 9) == 0) {
      format = argv[i] + 9;
    } else if (out_dir.empty()) {
      out_dir = argv[i];
    } else {
      wanted.push_back(argv[i]);
    }
  }
  if (out_dir.empty()) {
    std::fprintf(stderr, "usage: golden_gen [--format=json|nbt] <output-dir> [scenario...]\n");
    return 2;
  }
  if (format != "json" && format != "nbt") {
    std::fprintf(stderr, "golden_gen: --format must be json or nbt, got \"%s\"\n",
                 format.c_str());
    return 2;
  }
  for (const std::string& name : wanted) {
    bool known = false;
    for (const nymix::GoldenScenario& scenario : nymix::GoldenScenarios()) {
      known = known || name == scenario.name;
    }
    if (!known) {
      std::fprintf(stderr, "golden_gen: unknown scenario \"%s\"; the library has:\n",
                   name.c_str());
      for (const nymix::GoldenScenario& scenario : nymix::GoldenScenarios()) {
        std::fprintf(stderr, "  %s\n", scenario.name);
      }
      return 2;
    }
  }
  for (const nymix::GoldenScenario& scenario : nymix::GoldenScenarios()) {
    if (!wanted.empty()) {
      bool selected = false;
      for (const std::string& name : wanted) {
        selected = selected || name == scenario.name;
      }
      if (!selected) {
        continue;
      }
    }
    std::string path = out_dir + "/" + scenario.name + "." + format;
    bool ok;
    if (format == "nbt") {
      nymix::Bytes data = scenario.generate_nbt();
      ok = WriteFileOrComplain(path, reinterpret_cast<const char*>(data.data()), data.size());
    } else {
      std::string data = scenario.generate();
      ok = WriteFileOrComplain(path, data.data(), data.size());
    }
    if (!ok) {
      return 1;
    }
    std::printf("golden_gen: wrote %s\n", path.c_str());
  }
  return 0;
}
