// Regenerates the golden-trace corpus. Run via tools/regolden.sh, which
// rebuilds this binary and rewrites tests/golden/*.json in place; review
// the diff like any other source change.
//
// Usage: golden_gen <output-dir> [scenario...]
#include <cstdio>
#include <fstream>
#include <string>

#include "tests/golden_scenarios.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: golden_gen <output-dir> [scenario...]\n");
    return 2;
  }
  std::string out_dir = argv[1];
  for (const nymix::GoldenScenario& scenario : nymix::GoldenScenarios()) {
    if (argc > 2) {
      bool wanted = false;
      for (int i = 2; i < argc; ++i) {
        wanted = wanted || scenario.name == std::string(argv[i]);
      }
      if (!wanted) {
        continue;
      }
    }
    std::string path = out_dir + "/" + scenario.name + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "golden_gen: cannot write %s\n", path.c_str());
      return 1;
    }
    out << scenario.generate();
    out.flush();
    if (!out) {
      std::fprintf(stderr, "golden_gen: write failed for %s\n", path.c_str());
      return 1;
    }
    std::printf("golden_gen: wrote %s\n", path.c_str());
  }
  return 0;
}
