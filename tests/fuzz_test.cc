// Property suite for the scenario fuzzer (src/fuzz, docs/fuzzing.md).
// These are the guarantees the whole lane rests on:
//   - generation is a pure function of (seed, options);
//   - the .nymfuzz text form round-trips exactly and parses totally;
//   - the runner is deterministic (same scenario, same digest) and total
//     (arbitrary step soup executes without crashing the harness);
//   - the planted NAT leak is caught, shrinks to a tiny repro, and that
//     repro replays bit-for-bit — proof the oracle suite is live;
//   - the shrinker is deterministic, monotonic in ScenarioWeight, and
//     terminates within its candidate budget.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fuzz/entropy.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/oracle.h"
#include "src/fuzz/runner.h"
#include "src/fuzz/scenario.h"
#include "src/fuzz/shrink.h"

namespace nymix {
namespace {

// ---------------------------------------------------------------- generator

TEST(FuzzGeneratorTest, SameSeedSameScenario) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    EXPECT_EQ(GenerateScenario(seed), GenerateScenario(seed)) << "seed " << seed;
  }
}

TEST(FuzzGeneratorTest, DifferentSeedsDiffer) {
  int distinct = 0;
  for (uint64_t seed = 1; seed < 32; ++seed) {
    if (!(GenerateScenario(seed) == GenerateScenario(seed + 1))) {
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 25);  // near-all neighbours must differ
}

TEST(FuzzGeneratorTest, FamilyPinIsRespected) {
  for (ScenarioFamily family : {ScenarioFamily::kNet, ScenarioFamily::kHost,
                                ScenarioFamily::kFleet, ScenarioFamily::kDecoder,
                                ScenarioFamily::kParallel}) {
    GeneratorOptions options;
    options.family = family;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      Scenario scenario = GenerateScenario(seed, options);
      EXPECT_EQ(scenario.family, family) << "seed " << seed;
      for (const ScenarioStep& step : scenario.steps) {
        EXPECT_EQ(FamilyOfStep(step.kind), family)
            << "seed " << seed << " step " << StepKindName(step.kind);
      }
    }
  }
}

TEST(FuzzGeneratorTest, MaxStepsIsHonoured) {
  GeneratorOptions options;
  options.max_steps = 3;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    EXPECT_LE(GenerateScenario(seed, options).steps.size(), 3u);
  }
}

TEST(FuzzEntropyTest, ForkedStreamsAreStableAndLabelled) {
  EntropySource a(42);
  EntropySource b(42);
  EXPECT_EQ(a.Fork("host").prng().NextU64(), b.Fork("host").prng().NextU64());
  EXPECT_NE(a.Fork("host").prng().NextU64(), a.Fork("net").prng().NextU64());
}

// ---------------------------------------------------------------- text form

TEST(FuzzScenarioTextTest, RoundTripsAcrossFamiliesAndSeeds) {
  for (ScenarioFamily family : {ScenarioFamily::kNet, ScenarioFamily::kHost,
                                ScenarioFamily::kFleet, ScenarioFamily::kDecoder,
                                ScenarioFamily::kParallel}) {
    GeneratorOptions options;
    options.family = family;
    for (uint64_t seed = 1; seed <= 12; ++seed) {
      Scenario scenario = GenerateScenario(seed, options);
      Result<Scenario> parsed = ScenarioFromText(ScenarioToText(scenario));
      ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
      EXPECT_EQ(*parsed, scenario) << ScenarioFamilyName(family) << " seed " << seed;
    }
  }
}

TEST(FuzzScenarioTextTest, ReproFileRoundTrips) {
  ReproFile repro;
  repro.scenario = GenerateScenario(7);
  repro.oracle = "nat-isolation";
  repro.detail = "3 of 5 AnonVM probes were ANSWERED";
  repro.digest = std::string(64, 'a');
  Result<ReproFile> parsed = ReproFromText(ReproToText(repro));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->scenario, repro.scenario);
  EXPECT_EQ(parsed->oracle, repro.oracle);
  EXPECT_EQ(parsed->detail, repro.detail);
  EXPECT_EQ(parsed->digest, repro.digest);
}

TEST(FuzzScenarioTextTest, ParserIsTotalOnGarbage) {
  // Every input must yield a Status or a Scenario, never a crash. Inputs
  // chosen to hit the distinct failure shapes: empty, wrong magic, torn
  // header, bad numbers, junk after end, embedded NULs.
  const std::vector<std::string> garbage = {
      "",
      "nymfuzz",
      "nymfuzz 2\n",
      "nymfuzz 1\nfamily mars\n",
      "nymfuzz 1\nfamily host\nseed banana\n",
      "nymfuzz 1\nfamily host\nseed 1\nstep warp a=1\nend\n",
      "nymfuzz 1\nfamily host\nseed 1\nstep host_visit a=\nend\n",
      "nymfuzz 1\nfamily host\nseed 1\nstep host_scrub payload=zz\nend\n",
      std::string("nymfuzz 1\nfamily host\x00seed 1\n", 28),
  };
  for (const std::string& text : garbage) {
    Result<Scenario> parsed = ScenarioFromText(text);
    if (parsed.ok()) {
      // Acceptable only if it parsed into something that re-serializes.
      EXPECT_FALSE(ScenarioToText(*parsed).empty());
    }
  }
}

// ------------------------------------------------------------------- runner

// The cheapest-possible scenario per family: empty step list, tiny
// topology. Verifies the runner's boot/teardown spine is clean and that the
// digest is stable run-to-run (the property --replay depends on).
TEST(FuzzRunnerTest, EmptyScenarioIsCleanAndDeterministicPerFamily) {
  for (ScenarioFamily family : {ScenarioFamily::kNet, ScenarioFamily::kHost,
                                ScenarioFamily::kFleet, ScenarioFamily::kDecoder,
                                ScenarioFamily::kParallel}) {
    Scenario scenario;
    scenario.family = family;
    scenario.seed = 5;
    scenario.topology.shards = 1;
    scenario.topology.threads = 1;
    scenario.topology.nym_count = 1;
    scenario.topology.nyms_per_host = 1;
    RunReport first = RunScenario(scenario);
    EXPECT_TRUE(first.ok) << ScenarioFamilyName(family) << ": " << first.oracle << " — "
                          << first.detail;
    RunReport second = RunScenario(scenario);
    EXPECT_EQ(first.digest, second.digest) << ScenarioFamilyName(family);
    EXPECT_FALSE(first.digest.empty());
  }
}

// Regression: a recovered nym re-enters the manager's list at the back, so
// checkpoint order must not follow manager order or a restored host
// re-checkpoints with the same bytes in a different log order. Found by the
// 200-run CI sweep (host family, seed 8945735177216552375), fixed by
// sorting CheckpointHost by nym name.
TEST(FuzzRunnerTest, CheckpointRoundtripSurvivesCrashRecovery) {
  Scenario scenario;
  scenario.family = ScenarioFamily::kHost;
  scenario.seed = 8945735177216552375ull;
  scenario.topology.shards = 1;
  scenario.topology.threads = 2;
  scenario.topology.nym_count = 2;
  scenario.topology.nyms_per_host = 1;
  scenario.topology.checkpoint_roundtrip = true;
  ScenarioStep crash;
  crash.kind = StepKind::kHostCrashRecover;
  scenario.steps.push_back(crash);
  RunReport report = RunScenario(scenario);
  EXPECT_TRUE(report.ok) << report.oracle << " — " << report.detail;
}

// Totality: step soup with hostile arguments must execute without crashing
// the harness — wrong-family steps no-op, out-of-range arguments clamp.
TEST(FuzzRunnerTest, RunnerIsClosedUnderHostileEdits) {
  Scenario scenario = GenerateScenario(11);
  scenario.family = ScenarioFamily::kHost;
  ScenarioStep hostile;
  hostile.kind = StepKind::kNetLinkFlap;  // foreign family
  hostile.a = -9999999;
  scenario.steps.push_back(hostile);
  hostile.kind = StepKind::kHostVisit;
  hostile.a = 1 << 30;  // nym index far out of range (wraps)
  hostile.b = -(1 << 30);
  scenario.steps.push_back(hostile);
  hostile.kind = StepKind::kHostUnionUnlink;
  hostile.b = 987654321;
  scenario.steps.push_back(hostile);
  RunReport report = RunScenario(scenario);
  EXPECT_FALSE(report.digest.empty());  // it ran to completion
}

// --------------------------------------------- planted leak + full pipeline

// End-to-end proof the oracles are live: sabotage the packet policy, watch
// nat-isolation catch it, shrink the repro to something tiny, and verify
// the shrunk scenario still replays to the identical failure. This is the
// in-process twin of CI's --plant=nat-leak self-test.
TEST(FuzzPlantedLeakTest, CaughtShrunkAndReplayable) {
  GeneratorOptions gen;
  gen.family = ScenarioFamily::kHost;
  Scenario scenario = GenerateScenario(7, gen);
  RunnerOptions options;
  options.plant_nat_leak = true;

  RunReport report = RunScenario(scenario, options);
  ASSERT_FALSE(report.ok) << "planted leak was NOT caught — oracle suite is blind";
  EXPECT_EQ(report.oracle, "nat-isolation") << report.detail;

  ShrinkResult shrunk = ShrinkScenario(scenario, report, options);
  EXPECT_EQ(shrunk.report.oracle, "nat-isolation");
  EXPECT_LE(shrunk.scenario.steps.size(), 10u);
  EXPECT_LE(ScenarioWeight(shrunk.scenario), ScenarioWeight(scenario));

  // The shrunk scenario must reproduce the exact same failure, twice.
  RunReport replay_a = RunScenario(shrunk.scenario, options);
  RunReport replay_b = RunScenario(shrunk.scenario, options);
  EXPECT_FALSE(replay_a.ok);
  EXPECT_EQ(replay_a.oracle, "nat-isolation");
  EXPECT_EQ(replay_a.digest, shrunk.report.digest);
  EXPECT_EQ(replay_a.digest, replay_b.digest);

  // And it must survive the text round-trip that --replay exercises.
  Result<Scenario> reparsed = ScenarioFromText(ScenarioToText(shrunk.scenario));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(RunScenario(*reparsed, options).digest, shrunk.report.digest);
}

// ----------------------------------------------------------------- shrinker

TEST(FuzzShrinkTest, WeightOrdersStepsAbovePayloadAboveArguments) {
  Scenario small;
  small.family = ScenarioFamily::kDecoder;
  ScenarioStep step;
  step.kind = StepKind::kDecodeKv;
  step.payload = Bytes(100, 0xab);
  small.steps.push_back(step);

  Scenario more_steps = small;
  more_steps.steps.push_back(step);
  EXPECT_GT(ScenarioWeight(more_steps), ScenarioWeight(small));

  Scenario bigger_payload = small;
  bigger_payload.steps[0].payload = Bytes(5000, 0xab);
  EXPECT_GT(ScenarioWeight(bigger_payload), ScenarioWeight(small));
  // One extra step outweighs any payload growth.
  EXPECT_GT(ScenarioWeight(more_steps), ScenarioWeight(bigger_payload));

  Scenario bigger_args = small;
  bigger_args.steps[0].a = 1 << 20;
  EXPECT_GT(ScenarioWeight(bigger_args), ScenarioWeight(small));
  EXPECT_GT(ScenarioWeight(bigger_payload), ScenarioWeight(bigger_args));
}

TEST(FuzzShrinkTest, DeterministicAndMonotonicAndTerminating) {
  GeneratorOptions gen;
  gen.family = ScenarioFamily::kHost;
  Scenario scenario = GenerateScenario(13, gen);
  RunnerOptions options;
  options.plant_nat_leak = true;
  RunReport report = RunScenario(scenario, options);
  ASSERT_FALSE(report.ok);

  ShrinkResult first = ShrinkScenario(scenario, report, options, /*max_candidates=*/200);
  ShrinkResult second = ShrinkScenario(scenario, report, options, /*max_candidates=*/200);
  // Deterministic: bit-identical minimization both times.
  EXPECT_EQ(first.scenario, second.scenario);
  EXPECT_EQ(first.report.digest, second.report.digest);
  EXPECT_EQ(first.candidates_tried, second.candidates_tried);
  // Monotonic: never worse than the input.
  EXPECT_LE(ScenarioWeight(first.scenario), ScenarioWeight(scenario));
  // Terminating: the budget is respected.
  EXPECT_LE(first.candidates_tried, 200);
  // Still fails the same oracle.
  EXPECT_EQ(first.report.oracle, report.oracle);
}

TEST(FuzzShrinkTest, CleanScenarioHasStableWeightZeroFloor) {
  Scenario empty;
  empty.steps.clear();
  EXPECT_GE(ScenarioWeight(empty), 0u);
  Scenario one = GenerateScenario(3);
  EXPECT_GT(ScenarioWeight(one) + 1, ScenarioWeight(one));  // no overflow at the top
}

// ------------------------------------------------------------------ oracles

TEST(FuzzOracleTest, SuiteRecordsFirstFailureOnly) {
  OracleSuite suite;
  EXPECT_TRUE(suite.ok());
  EXPECT_TRUE(suite.Fail("nat-isolation", "first"));
  EXPECT_FALSE(suite.Fail("ops-terminate", "second"));
  EXPECT_EQ(suite.failed_oracle(), "nat-isolation");
  EXPECT_EQ(suite.detail(), "first");
}

TEST(FuzzOracleTest, DisabledOracleNeverFires) {
  OracleSuite suite({"nat-isolation"});
  EXPECT_FALSE(suite.enabled("nat-isolation"));
  EXPECT_FALSE(suite.Fail("nat-isolation", "masked"));
  EXPECT_TRUE(suite.ok());
  EXPECT_TRUE(suite.Fail("ops-terminate", "real"));
}

TEST(FuzzOracleTest, AllOraclesHaveStableKnownNames) {
  for (const OracleInfo& info : AllOracles()) {
    EXPECT_TRUE(IsKnownOracle(info.name));
    EXPECT_NE(std::string_view(info.property), "");
  }
  EXPECT_FALSE(IsKnownOracle("made-up-oracle"));
}

}  // namespace
}  // namespace nymix
