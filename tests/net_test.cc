#include <gtest/gtest.h>

#include "src/net/nat.h"
#include "src/net/simulation.h"

namespace nymix {
namespace {

// ---------------------------------------------------------------- Addresses

TEST(AddressTest, MacFormatting) {
  EXPECT_EQ(MacAddress::StandardGuest().ToString(), "52:54:00:12:34:56");
  EXPECT_EQ(MacAddress::Broadcast().ToString(), "ff:ff:ff:ff:ff:ff");
}

TEST(AddressTest, Ipv4FormattingAndParsing) {
  Ipv4Address ip(192, 168, 1, 100);
  EXPECT_EQ(ip.ToString(), "192.168.1.100");
  auto parsed = ParseIpv4("192.168.1.100");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, ip);
  EXPECT_FALSE(ParseIpv4("300.1.1.1").ok());
  EXPECT_FALSE(ParseIpv4("1.2.3").ok());
  EXPECT_FALSE(ParseIpv4("1.2.3.4.5").ok());
}

TEST(AddressTest, PrivateRanges) {
  EXPECT_TRUE(Ipv4Address(10, 0, 2, 15).IsPrivate());
  EXPECT_TRUE(Ipv4Address(192, 168, 0, 1).IsPrivate());
  EXPECT_TRUE(Ipv4Address(172, 16, 0, 1).IsPrivate());
  EXPECT_FALSE(Ipv4Address(172, 32, 0, 1).IsPrivate());
  EXPECT_FALSE(Ipv4Address(203, 0, 113, 1).IsPrivate());
}

TEST(PacketTest, SummaryAndWireSize) {
  Packet packet;
  packet.src_ip = Ipv4Address(10, 0, 2, 15);
  packet.dst_ip = Ipv4Address(203, 0, 113, 1);
  packet.src_port = 1234;
  packet.dst_port = 80;
  packet.payload = BytesFromString("hello");
  packet.annotation = "Probe";
  EXPECT_EQ(packet.WireSize(), 14u + 20 + 8 + 5);
  EXPECT_NE(packet.Summary().find("10.0.2.15:1234 -> 203.0.113.1:80"), std::string::npos);
  EXPECT_NE(packet.Summary().find("[Probe]"), std::string::npos);
}

// ---------------------------------------------------------------- Link

class RecordingSink : public PacketSink {
 public:
  void OnPacket(const Packet& packet, Link& link, bool from_a) override {
    (void)link;
    (void)from_a;
    packets.push_back(packet);
  }
  std::vector<Packet> packets;
};

TEST(LinkTest, DeliversAfterLatencyAndSerialization) {
  Simulation sim(1);
  Link* link = sim.CreateLink("wire", Millis(10), 1'000'000);  // 1 Mbit/s
  RecordingSink sink;
  link->AttachB(&sink);
  Packet packet;
  packet.payload = Bytes(1000 - 42, 0);  // wire size exactly 1000 bytes
  link->SendFromA(packet);
  sim.loop().RunUntilIdle();
  ASSERT_EQ(sink.packets.size(), 1u);
  // 10 ms latency + 8000 bits / 1 Mbit/s = 8 ms.
  EXPECT_EQ(sim.now(), Millis(18));
  EXPECT_EQ(link->packets_delivered(), 1u);
}

TEST(LinkTest, MissingSinkDropsSilently) {
  Simulation sim(1);
  Link* link = sim.CreateLink("wire", Millis(1), 1'000'000'000);
  link->SendFromA(Packet{});
  sim.loop().RunUntilIdle();
  EXPECT_EQ(link->packets_dropped(), 1u);
  EXPECT_EQ(link->packets_delivered(), 0u);
}

TEST(LinkTest, CaptureSeesBothDirections) {
  Simulation sim(1);
  Link* link = sim.CreateLink("wire", Millis(1), 1'000'000'000);
  RecordingSink a, b;
  link->AttachA(&a);
  link->AttachB(&b);
  PacketCapture capture;
  link->AttachCapture(&capture);
  Packet up;
  up.annotation = "Up";
  Packet down;
  down.annotation = "Down";
  link->SendFromA(up);
  link->SendFromB(down);
  sim.loop().RunUntilIdle();
  EXPECT_EQ(capture.size(), 2u);
  EXPECT_EQ(capture.CountAnnotation("Up"), 1u);
  EXPECT_EQ(capture.CountAnnotation("Down"), 1u);
  EXPECT_TRUE(capture.OnlyContains({"Up", "Down"}));
  EXPECT_FALSE(capture.OnlyContains({"Up"}));
}

// ---------------------------------------------------------------- Flows

TEST(FlowTest, SingleFlowTakesFullBandwidth) {
  Simulation sim(1);
  Link* uplink = sim.CreateLink("uplink", Millis(40), 10'000'000);  // 10 Mbit/s
  SimTime finished = 0;
  sim.flows().StartFlow(Route::Through({uplink}), 10'000'000 / 8, 1.0,
                        [&](SimTime t) { finished = t; });
  sim.loop().RunUntilIdle();
  // 80 ms setup RTT + 1 second of transfer at 10 Mbit/s.
  EXPECT_NEAR(ToSeconds(finished), 1.08, 0.01);
}

TEST(FlowTest, TwoFlowsShareBottleneckFairly) {
  Simulation sim(1);
  Link* uplink = sim.CreateLink("uplink", Millis(0), 10'000'000);
  std::vector<double> times;
  for (int i = 0; i < 2; ++i) {
    sim.flows().StartFlow(Route::Through({uplink}), 10'000'000 / 8, 1.0,
                          [&](SimTime t) { times.push_back(ToSeconds(t)); });
  }
  sim.loop().RunUntilIdle();
  ASSERT_EQ(times.size(), 2u);
  // Each gets 5 Mbit/s: both finish around 2 s.
  EXPECT_NEAR(times[0], 2.0, 0.01);
  EXPECT_NEAR(times[1], 2.0, 0.01);
}

TEST(FlowTest, LateFlowSpeedsUpAfterFirstFinishes) {
  Simulation sim(1);
  Link* uplink = sim.CreateLink("uplink", Millis(0), 8'000'000);  // 1 MB/s
  double t_small = 0, t_big = 0;
  sim.flows().StartFlow(Route::Through({uplink}), 1'000'000, 1.0,
                        [&](SimTime t) { t_small = ToSeconds(t); });
  sim.flows().StartFlow(Route::Through({uplink}), 3'000'000, 1.0,
                        [&](SimTime t) { t_big = ToSeconds(t); });
  sim.loop().RunUntilIdle();
  // Shared 0.5 MB/s until the small flow's 1 MB is done at t=2; the big flow
  // then has 2 MB left at full rate: t=2+2=4.
  EXPECT_NEAR(t_small, 2.0, 0.02);
  EXPECT_NEAR(t_big, 4.0, 0.02);
}

TEST(FlowTest, OverheadFactorInflatesBytes) {
  Simulation sim(1);
  Link* uplink = sim.CreateLink("uplink", Millis(0), 8'000'000);
  double t = 0;
  sim.flows().StartFlow(Route::Through({uplink}), 1'000'000, 1.12,
                        [&](SimTime when) { t = ToSeconds(when); });
  sim.loop().RunUntilIdle();
  EXPECT_NEAR(t, 1.12, 0.01);
}

TEST(FlowTest, MultiLinkRouteBottleneckedByNarrowest) {
  Simulation sim(1);
  Link* fast = sim.CreateLink("fast", Millis(5), 1'000'000'000);
  Link* slow = sim.CreateLink("slow", Millis(5), 8'000'000);
  double t = 0;
  sim.flows().StartFlow(Route::Through({fast, slow}), 1'000'000, 1.0,
                        [&](SimTime when) { t = ToSeconds(when); });
  sim.loop().RunUntilIdle();
  // Setup 2*(5+5)=20 ms, then 1 MB at 1 MB/s.
  EXPECT_NEAR(t, 1.02, 0.01);
}

TEST(FlowTest, CancelStopsFlow) {
  Simulation sim(1);
  Link* uplink = sim.CreateLink("uplink", Millis(0), 8'000'000);
  bool done = false;
  FlowId id = sim.flows().StartFlow(Route::Through({uplink}), 1'000'000, 1.0,
                                    [&](SimTime) { done = true; });
  sim.RunFor(Millis(100));
  EXPECT_TRUE(sim.flows().CancelFlow(id));
  sim.loop().RunUntilIdle();
  EXPECT_FALSE(done);
  EXPECT_FALSE(sim.flows().CancelFlow(id));
}

TEST(FlowTest, EightFlowsScaleLinearly) {
  // The Figure 5 shape: N flows over one bottleneck finish in ~N x single.
  Simulation sim(1);
  Link* uplink = sim.CreateLink("uplink", Millis(40), 10'000'000);
  const uint64_t kernel_tarball = 77 * 1000 * 1000 / 10;  // scaled down 10x
  int completed = 0;
  SimTime last = 0;
  for (int i = 0; i < 8; ++i) {
    sim.flows().StartFlow(Route::Through({uplink}), kernel_tarball, 1.0, [&](SimTime t) {
      ++completed;
      last = t;
    });
  }
  sim.loop().RunUntilIdle();
  EXPECT_EQ(completed, 8);
  double single = 8.0 * kernel_tarball / 10'000'000;  // seconds
  EXPECT_NEAR(ToSeconds(last), 8 * single, 8 * single * 0.02);
}

TEST(FlowTest, FlowRateVisible) {
  Simulation sim(1);
  Link* uplink = sim.CreateLink("uplink", Millis(1), 10'000'000);
  FlowId id = sim.flows().StartFlow(Route::Through({uplink}), 100'000'000, 1.0, nullptr);
  sim.RunFor(Millis(50));
  EXPECT_NEAR(static_cast<double>(sim.flows().FlowRateBps(id)), 10'000'000, 200'000);
}

// ---------------------------------------------------------------- NAT

struct NatFixture {
  NatFixture(Simulation& sim)
      : inside(sim.CreateLink("inside", Millis(1), 1'000'000'000)),
        outside(sim.CreateLink("outside", Millis(1), 1'000'000'000)),
        nat("nat", outside, Ipv4Address(203, 0, 113, 77)) {
    nat.AttachInside(inside);
    inside->AttachA(&guest);
    outside->AttachB(&world);
  }
  Link* inside;
  Link* outside;
  NatGateway nat;
  RecordingSink guest;
  RecordingSink world;
};

Packet GuestPacket() {
  Packet packet;
  packet.src_ip = kGuestCommVmIp;
  packet.src_port = 5555;
  packet.dst_ip = Ipv4Address(203, 0, 113, 1);
  packet.dst_port = 80;
  return packet;
}

TEST(NatTest, MasqueradesOutbound) {
  Simulation sim(1);
  NatFixture fixture(sim);
  fixture.inside->SendFromA(GuestPacket());
  sim.loop().RunUntilIdle();
  ASSERT_EQ(fixture.world.packets.size(), 1u);
  const Packet& seen = fixture.world.packets[0];
  EXPECT_EQ(seen.src_ip, fixture.nat.public_ip());
  EXPECT_NE(seen.src_ip, kGuestCommVmIp);
  EXPECT_GE(seen.src_port, 32768);
  EXPECT_EQ(fixture.nat.mapping_count(), 1u);
}

TEST(NatTest, ReusesMappingPerSource) {
  Simulation sim(1);
  NatFixture fixture(sim);
  fixture.inside->SendFromA(GuestPacket());
  fixture.inside->SendFromA(GuestPacket());
  sim.loop().RunUntilIdle();
  ASSERT_EQ(fixture.world.packets.size(), 2u);
  EXPECT_EQ(fixture.world.packets[0].src_port, fixture.world.packets[1].src_port);
  EXPECT_EQ(fixture.nat.mapping_count(), 1u);
}

TEST(NatTest, ReverseTranslationForReplies) {
  Simulation sim(1);
  NatFixture fixture(sim);
  fixture.inside->SendFromA(GuestPacket());
  sim.loop().RunUntilIdle();
  Packet reply;
  reply.src_ip = Ipv4Address(203, 0, 113, 1);
  reply.src_port = 80;
  reply.dst_ip = fixture.nat.public_ip();
  reply.dst_port = fixture.world.packets[0].src_port;
  fixture.outside->SendFromB(reply);
  sim.loop().RunUntilIdle();
  ASSERT_EQ(fixture.guest.packets.size(), 1u);
  EXPECT_EQ(fixture.guest.packets[0].dst_ip, kGuestCommVmIp);
  EXPECT_EQ(fixture.guest.packets[0].dst_port, 5555);
}

TEST(NatTest, DropsUnsolicitedInbound) {
  Simulation sim(1);
  NatFixture fixture(sim);
  Packet probe;
  probe.src_ip = Ipv4Address(203, 0, 113, 9);
  probe.dst_ip = fixture.nat.public_ip();
  probe.dst_port = 4444;  // no mapping
  fixture.outside->SendFromB(probe);
  Packet misaddressed;
  misaddressed.dst_ip = Ipv4Address(203, 0, 113, 200);
  fixture.outside->SendFromB(misaddressed);
  sim.loop().RunUntilIdle();
  EXPECT_TRUE(fixture.guest.packets.empty());
  EXPECT_EQ(fixture.nat.dropped_unsolicited(), 2u);
}

TEST(NatTest, MultipleInsideLinksGetDistinctMappings) {
  Simulation sim(1);
  Link* outside = sim.CreateLink("outside", Millis(1), 1'000'000'000);
  NatGateway nat("router", outside, Ipv4Address(203, 0, 113, 88));
  Link* inside1 = sim.CreateLink("in1", Millis(1), 1'000'000'000);
  Link* inside2 = sim.CreateLink("in2", Millis(1), 1'000'000'000);
  nat.AttachInside(inside1);
  nat.AttachInside(inside2);
  RecordingSink guest1, guest2, world;
  inside1->AttachA(&guest1);
  inside2->AttachA(&guest2);
  outside->AttachB(&world);

  // Both CommVMs use the *same* guest IP and port (Nymix homogeneity) but
  // must still be distinguishable by the NAT.
  inside1->SendFromA(GuestPacket());
  inside2->SendFromA(GuestPacket());
  sim.loop().RunUntilIdle();
  ASSERT_EQ(world.packets.size(), 2u);
  EXPECT_NE(world.packets[0].src_port, world.packets[1].src_port);

  // Reply to the second mapping reaches only guest2.
  Packet reply;
  reply.src_ip = Ipv4Address(203, 0, 113, 1);
  reply.dst_ip = nat.public_ip();
  reply.dst_port = world.packets[1].src_port;
  outside->SendFromB(reply);
  sim.loop().RunUntilIdle();
  EXPECT_TRUE(guest1.packets.empty());
  ASSERT_EQ(guest2.packets.size(), 1u);
}

// ---------------------------------------------------------------- Internet

class EchoHost : public InternetHost {
 public:
  void OnDatagram(const Packet& packet, const std::function<void(Packet)>& reply) override {
    ++requests;
    Packet response;
    response.src_ip = packet.dst_ip;
    response.src_port = packet.dst_port;
    response.dst_ip = packet.src_ip;
    response.dst_port = packet.src_port;
    response.payload = packet.payload;
    response.annotation = "Echo";
    reply(response);
  }
  int requests = 0;
};

TEST(InternetTest, DnsAndRouting) {
  Simulation sim(1);
  EchoHost echo;
  Ipv4Address ip = sim.internet().RegisterHost("echo.example.com", &echo);
  auto resolved = sim.internet().Resolve("echo.example.com");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, ip);
  EXPECT_FALSE(sim.internet().Resolve("missing.example.com").ok());

  Link* uplink = sim.CreateLink("uplink", Millis(40), 10'000'000);
  sim.internet().AttachUplink(uplink);
  RecordingSink client;
  uplink->AttachA(&client);

  Packet request;
  request.src_ip = Ipv4Address(203, 0, 113, 50);
  request.src_port = 999;
  request.dst_ip = ip;
  request.dst_port = 80;
  request.payload = BytesFromString("ping");
  uplink->SendFromA(request);
  sim.loop().RunUntilIdle();
  EXPECT_EQ(echo.requests, 1);
  ASSERT_EQ(client.packets.size(), 1u);
  EXPECT_EQ(StringFromBytes(client.packets[0].payload), "ping");
}

TEST(InternetTest, UnroutableDstDropped) {
  Simulation sim(1);
  Link* uplink = sim.CreateLink("uplink", Millis(1), 10'000'000);
  sim.internet().AttachUplink(uplink);
  Packet request;
  request.dst_ip = Ipv4Address(203, 0, 113, 254);
  uplink->SendFromA(request);
  sim.loop().RunUntilIdle();
  EXPECT_EQ(sim.internet().dropped_no_route(), 1u);
}

TEST(InternetTest, UnregisterRemovesHost) {
  Simulation sim(1);
  EchoHost echo;
  sim.internet().RegisterHost("temp.example.com", &echo);
  sim.internet().UnregisterHost("temp.example.com");
  EXPECT_FALSE(sim.internet().Resolve("temp.example.com").ok());
}

}  // namespace
}  // namespace nymix
