// Fault injection and failure recovery: seeded fault schedules, retry and
// backoff math, exactly-once completion guards, per-reason link drops, flow
// stall/abort semantics, Tor circuit retry + guard failover, and VM
// crash -> NymManager recovery. The overarching contract: every fault is
// seeded (identical runs inject identically), and every failure surfaces as
// a Status — nothing hangs, nothing completes silently twice.
#include <gtest/gtest.h>

#include "src/core/testbed.h"
#include "src/net/nat.h"
#include "src/util/fault.h"

namespace nymix {
namespace {

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjectorTest, UnconfiguredPointNeverFires) {
  Simulation sim(1);
  FaultInjector injector(sim.loop(), 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.Roll("never.configured"));
  }
  EXPECT_EQ(injector.rolls("never.configured"), 0u);
  EXPECT_EQ(injector.total_triggers(), 0u);
  EXPECT_FALSE(injector.any_configured());
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  Simulation sim_a(1);
  Simulation sim_b(1);
  FaultInjector a(sim_a.loop(), 99);
  FaultInjector b(sim_b.loop(), 99);
  FaultInjector c(sim_b.loop(), 100);
  for (FaultInjector* injector : {&a, &b, &c}) {
    injector->ConfigureProbability("link.loss", 0.3);
    injector->ConfigureProbability("relay.crash", 0.1);
  }
  int differences_from_c = 0;
  for (int i = 0; i < 200; ++i) {
    const bool roll_a = a.Roll("link.loss");
    EXPECT_EQ(roll_a, b.Roll("link.loss")) << "roll " << i;
    EXPECT_EQ(a.Roll("relay.crash"), b.Roll("relay.crash")) << "roll " << i;
    if (roll_a != c.Roll("link.loss")) {
      ++differences_from_c;
    }
  }
  EXPECT_EQ(a.triggers("link.loss"), b.triggers("link.loss"));
  EXPECT_EQ(a.triggers("relay.crash"), b.triggers("relay.crash"));
  // ~30% hit rate over 200 rolls: plenty of triggers, and a different seed
  // must disagree somewhere.
  EXPECT_GT(a.triggers("link.loss"), 20u);
  EXPECT_GT(differences_from_c, 0);
}

TEST(FaultInjectorTest, PointStreamsAreIndependentOfRegistrationOrder) {
  Simulation sim(1);
  FaultInjector forward(sim.loop(), 7);
  forward.ConfigureProbability("alpha", 0.5);
  forward.ConfigureProbability("beta", 0.5);
  FaultInjector reversed(sim.loop(), 7);
  reversed.ConfigureProbability("beta", 0.5);
  reversed.ConfigureProbability("alpha", 0.5);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(forward.Roll("alpha"), reversed.Roll("alpha"));
    EXPECT_EQ(forward.Roll("beta"), reversed.Roll("beta"));
  }
}

TEST(FaultInjectorTest, MaxTriggersHealsThePoint) {
  Simulation sim(1);
  FaultInjector injector(sim.loop(), 5);
  FaultPointConfig config;
  config.probability = 1.0;
  config.max_triggers = 3;
  injector.Configure("flaky.disk", config);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.Roll("flaky.disk")) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(injector.triggers("flaky.disk"), 3u);
  EXPECT_EQ(injector.rolls("flaky.disk"), 10u);
}

TEST(FaultInjectorTest, ActiveWindowGatesInjection) {
  Simulation sim(1);
  FaultPointConfig config;
  config.probability = 1.0;
  config.active_from = Seconds(1);
  config.active_until = Seconds(2);
  sim.faults().Configure("window", config);
  EXPECT_FALSE(sim.faults().Roll("window"));  // t=0, before the window
  sim.RunFor(Millis(1500));
  EXPECT_TRUE(sim.faults().Roll("window"));
  sim.RunFor(Seconds(1));
  EXPECT_FALSE(sim.faults().Roll("window"));  // t=2.5s, after the window
}

TEST(FaultInjectorTest, ScheduledFaultFiresAtExactVirtualTime) {
  Simulation sim(1);
  SimTime fired_at = 0;
  sim.faults().At(Millis(750), "relay-crash", [&] { fired_at = sim.now(); });
  sim.loop().RunUntilIdle();
  EXPECT_EQ(fired_at, Millis(750));
  EXPECT_EQ(sim.faults().total_triggers(), 1u);
}

TEST(FaultInjectorTest, SeedForIsStableAndNameDependent) {
  Simulation sim(1);
  FaultInjector a(sim.loop(), 1234);
  FaultInjector b(sim.loop(), 1234);
  EXPECT_EQ(a.SeedFor("net.flows"), b.SeedFor("net.flows"));
  EXPECT_NE(a.SeedFor("net.flows"), a.SeedFor("net.uplink"));
  FaultInjector other(sim.loop(), 1235);
  EXPECT_NE(a.SeedFor("net.flows"), other.SeedFor("net.flows"));
}

// ----------------------------------------------------------------- Backoff

TEST(BackoffTest, ExponentialSequenceThenExhausted) {
  BackoffPolicy policy;
  policy.initial_delay = Millis(500);
  policy.multiplier = 2.0;
  policy.max_delay = Seconds(30);
  policy.max_attempts = 4;
  Backoff backoff(policy, /*seed=*/1);

  auto first = backoff.NextDelay();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, Millis(500));
  auto second = backoff.NextDelay();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, Seconds(1));
  auto third = backoff.NextDelay();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, Seconds(2));
  EXPECT_TRUE(backoff.exhausted());

  auto fourth = backoff.NextDelay();
  ASSERT_FALSE(fourth.ok());
  EXPECT_EQ(fourth.status().code(), StatusCode::kResourceExhausted);

  backoff.Reset();
  EXPECT_FALSE(backoff.exhausted());
  auto again = backoff.NextDelay();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, Millis(500));
}

TEST(BackoffTest, MaxDelayClampsGrowth) {
  BackoffPolicy policy;
  policy.initial_delay = Seconds(10);
  policy.multiplier = 10.0;
  policy.max_delay = Seconds(15);
  policy.max_attempts = 4;
  Backoff backoff(policy, 1);
  EXPECT_EQ(*backoff.NextDelay(), Seconds(10));
  EXPECT_EQ(*backoff.NextDelay(), Seconds(15));
  EXPECT_EQ(*backoff.NextDelay(), Seconds(15));
}

TEST(BackoffTest, JitterIsSeededAndBounded) {
  BackoffPolicy policy;
  policy.initial_delay = Seconds(1);
  policy.multiplier = 2.0;
  policy.max_attempts = 6;
  policy.jitter = 0.5;
  Backoff a(policy, 77);
  Backoff b(policy, 77);
  Backoff c(policy, 78);
  bool c_differs = false;
  SimDuration nominal = Seconds(1);
  for (int i = 0; i < 5; ++i) {
    auto delay_a = a.NextDelay();
    auto delay_b = b.NextDelay();
    auto delay_c = c.NextDelay();
    ASSERT_TRUE(delay_a.ok() && delay_b.ok() && delay_c.ok());
    EXPECT_EQ(*delay_a, *delay_b) << "attempt " << i;
    c_differs = c_differs || *delay_a != *delay_c;
    EXPECT_GE(*delay_a, nominal / 2);
    EXPECT_LE(*delay_a, nominal * 3 / 2);
    nominal *= 2;
  }
  EXPECT_TRUE(c_differs);
}

// ------------------------------------------------------------- OnceCallback

TEST(OnceCallbackTest, FiresExactlyOnce) {
  int calls = 0;
  Status seen = OkStatus();
  OnceCallback<Status> once([&](Status status) {
    ++calls;
    seen = std::move(status);
  });
  EXPECT_TRUE(static_cast<bool>(once));
  once(UnavailableError("boom"));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(static_cast<bool>(once));
  EXPECT_TRUE(once.fired());
}

TEST(OnceCallbackTest, DroppingWithoutFiringDeliversCancelled) {
  Status seen = OkStatus();
  int calls = 0;
  {
    OnceCallback<Status> once([&](Status status) {
      ++calls;
      seen = std::move(status);
    });
    // Copies share one fire state; dropping every copy fires the guard.
    OnceCallback<Status> copy = once;
    (void)copy;
  }
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen.code(), StatusCode::kCancelled);
}

TEST(OnceCallbackTest, ResultValuedDropDeliversStatus) {
  Result<SimTime> seen = InternalError("pending");
  { OnceCallback<Result<SimTime>> once([&](Result<SimTime> r) { seen = std::move(r); }); }
  EXPECT_FALSE(seen.ok());
  EXPECT_EQ(seen.status().code(), StatusCode::kCancelled);
}

TEST(OnceCallbackTest, DismissSuppressesTheDropStatus) {
  int calls = 0;
  {
    OnceCallback<Status> once([&](Status) { ++calls; });
    once.Dismiss();
  }
  EXPECT_EQ(calls, 0);
}

TEST(OnceCallbackTest, NullCallbackIsInert) {
  OnceCallback<Status> once{std::function<void(Status)>()};
  EXPECT_FALSE(static_cast<bool>(once));
  once(OkStatus());  // must not crash
}

// --------------------------------------------------------- RetryWithBackoff

TEST(RetryTest, SucceedsAfterTransientFailures) {
  Simulation sim(1);
  BackoffPolicy policy;
  policy.initial_delay = Millis(500);
  policy.max_attempts = 5;
  int attempts = 0;
  Status final = UnavailableError("pending");
  RetryWithBackoff(
      sim.loop(), policy, /*seed=*/1, "test.op",
      [&](std::function<void(Status)> finish) {
        ++attempts;
        finish(attempts < 3 ? UnavailableError("transient") : OkStatus());
      },
      [&](Status status) { final = std::move(status); });
  sim.loop().RunUntilIdle();
  EXPECT_TRUE(final.ok());
  EXPECT_EQ(attempts, 3);
  // Two backoff waits: 500 ms + 1 s of virtual time.
  EXPECT_EQ(sim.now(), Millis(1500));
}

TEST(RetryTest, ExhaustionAnnotatesTheFinalStatus) {
  Simulation sim(1);
  BackoffPolicy policy;
  policy.initial_delay = Millis(100);
  policy.max_attempts = 3;
  int attempts = 0;
  Status final = OkStatus();
  RetryWithBackoff(
      sim.loop(), policy, 1, "test.op",
      [&](std::function<void(Status)> finish) {
        ++attempts;
        finish(UnavailableError("server down"));
      },
      [&](Status status) { final = std::move(status); });
  sim.loop().RunUntilIdle();
  EXPECT_EQ(attempts, 3);
  // Exhaustion is reported as kResourceExhausted carrying both the attempt
  // budget and the last underlying error, so the root cause survives into
  // logs and shrunk fuzz repros.
  EXPECT_EQ(final.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(final.message().find("after 3 attempts"), std::string::npos) << final.ToString();
  EXPECT_NE(final.message().find("UNAVAILABLE: server down"), std::string::npos)
      << final.ToString();
}

TEST(RetryTest, DroppedAttemptCompletionCountsAsFailure) {
  Simulation sim(1);
  BackoffPolicy policy;
  policy.initial_delay = Millis(100);
  policy.max_attempts = 3;
  int attempts = 0;
  Status final = UnavailableError("pending");
  RetryWithBackoff(
      sim.loop(), policy, 1, "test.op",
      [&](std::function<void(Status)> finish) {
        ++attempts;
        if (attempts == 1) {
          return;  // drop the completion: the guard reports kCancelled
        }
        finish(OkStatus());
      },
      [&](Status status) { final = std::move(status); });
  sim.loop().RunUntilIdle();
  EXPECT_TRUE(final.ok());
  EXPECT_EQ(attempts, 2);
}

// -------------------------------------------------------------- Link faults

class CountingSink : public PacketSink {
 public:
  void OnPacket(const Packet&, Link&, bool) override { ++received; }
  int received = 0;
};

TEST(LinkFaultTest, PerReasonDropAccounting) {
  Simulation sim(1);
  CountingSink sink;

  // kNoSink: delivery finds nobody attached.
  Link* orphan = sim.CreateLink("orphan", Millis(1), 1'000'000);
  orphan->SendFromA(Packet{});
  sim.loop().RunUntilIdle();
  EXPECT_EQ(orphan->packets_dropped(LinkDropReason::kNoSink), 1u);

  // kDown: an administratively-down link drops at send time.
  Link* down = sim.CreateLink("down", Millis(1), 1'000'000);
  down->AttachB(&sink);
  down->SetDown(true);
  down->SendFromA(Packet{});
  sim.loop().RunUntilIdle();
  EXPECT_EQ(down->packets_dropped(LinkDropReason::kDown), 1u);
  down->SetDown(false);
  down->SendFromA(Packet{});
  sim.loop().RunUntilIdle();
  EXPECT_EQ(sink.received, 1);

  // kFault: seeded loss at probability 1 drops everything.
  Link* lossy = sim.CreateLink("lossy", Millis(1), 1'000'000);
  lossy->AttachB(&sink);
  LinkFaultProfile all_loss;
  all_loss.loss_probability = 1.0;
  lossy->SetFaultProfile(all_loss, sim.faults().SeedFor("lossy"));
  for (int i = 0; i < 5; ++i) {
    lossy->SendFromA(Packet{});
  }
  sim.loop().RunUntilIdle();
  EXPECT_EQ(lossy->packets_dropped(LinkDropReason::kFault), 5u);

  // kQueueOverflow: a bounded queue sheds the burst beyond max_in_flight.
  Link* bounded = sim.CreateLink("bounded", Millis(1), 1'000'000);
  bounded->AttachB(&sink);
  LinkFaultProfile queue;
  queue.max_in_flight = 1;
  bounded->SetFaultProfile(queue, sim.faults().SeedFor("bounded"));
  bounded->SendFromA(Packet{});
  bounded->SendFromA(Packet{});
  bounded->SendFromA(Packet{});
  sim.loop().RunUntilIdle();
  EXPECT_EQ(bounded->packets_dropped(LinkDropReason::kQueueOverflow), 2u);

  // The back-compat total is the sum over reasons.
  EXPECT_EQ(bounded->packets_dropped(), 2u);
  EXPECT_EQ(lossy->packets_dropped(), 5u);
}

TEST(LinkFaultTest, SeededLossIsReproducible) {
  auto run = [](uint64_t seed) {
    Simulation sim(1);
    CountingSink sink;
    Link* link = sim.CreateLink("flaky", Millis(1), 10'000'000);
    link->AttachB(&sink);
    LinkFaultProfile profile;
    profile.loss_probability = 0.4;
    link->SetFaultProfile(profile, seed);
    for (int i = 0; i < 200; ++i) {
      link->SendFromA(Packet{});
    }
    sim.loop().RunUntilIdle();
    return std::pair<int, uint64_t>{sink.received, link->packets_dropped(LinkDropReason::kFault)};
  };
  auto first = run(42);
  auto second = run(42);
  auto other = run(43);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);
  EXPECT_GT(first.second, 40u);   // ~80 of 200 lost
  EXPECT_GT(first.first, 80);     // ~120 delivered
}

// -------------------------------------------------------------- Flow faults

TEST(FlowFaultTest, StalledFlowFailsWithStatusInsteadOfHanging) {
  Simulation sim(1);
  Link* link = sim.CreateLink("path", Millis(5), 1'000'000);
  link->SetDown(true);
  FlowOptions options;
  options.stall_timeout = Seconds(2);
  Result<SimTime> outcome = InternalError("pending");
  bool done = false;
  sim.flows().StartFlow(Route::Through({link}), 500'000, 1.0, options,
                        [&](Result<SimTime> finished) {
                          outcome = std::move(finished);
                          done = true;
                        });
  sim.loop().RunUntilIdle();
  ASSERT_TRUE(done);
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
  // Stall clock starts once the flow would have begun (after the setup RTT).
  EXPECT_EQ(sim.now(), Millis(10) + Seconds(2));
}

TEST(FlowFaultTest, StalledFlowRecoversWhenRouteComesBack) {
  Simulation sim(1);
  Link* link = sim.CreateLink("path", Millis(5), 8'000'000);
  link->SetDown(true);
  FlowOptions options;
  options.stall_timeout = Seconds(5);
  Result<SimTime> outcome = UnavailableError("pending");
  sim.flows().StartFlow(Route::Through({link}), 100'000, 1.0, options,
                        [&](Result<SimTime> finished) { outcome = std::move(finished); });
  // The route flaps back up before the stall deadline; the deadline event
  // notices and the flow rejoins the competition instead of dying.
  sim.faults().At(Seconds(1), "link-up", [&] { link->SetDown(false); });
  sim.loop().RunUntilIdle();
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(*outcome, Seconds(5));  // finished after the deadline re-check
}

TEST(FlowFaultTest, LossDoomsFlowsDeterministically) {
  Simulation sim(1);
  Link* link = sim.CreateLink("lossy", Millis(5), 8'000'000);
  LinkFaultProfile profile;
  profile.loss_probability = 0.3;  // x4 abort multiplier => certain abort
  link->SetFaultProfile(profile, sim.faults().SeedFor("lossy"));
  Result<SimTime> outcome = InternalError("pending");
  bool done = false;
  sim.flows().StartFlow(Route::Through({link}), 1'000'000, 1.0, FlowOptions{},
                        [&](Result<SimTime> finished) {
                          outcome = std::move(finished);
                          done = true;
                        });
  sim.loop().RunUntilIdle();
  ASSERT_TRUE(done);
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);

  // The legacy callback form swallows the failure but must not hang the
  // loop: the flow dies at the end of its setup RTT.
  bool legacy_fired = false;
  sim.flows().StartFlow(Route::Through({link}), 1'000'000, 1.0,
                        [&](SimTime) { legacy_fired = true; });
  sim.loop().RunUntilIdle();
  EXPECT_FALSE(legacy_fired);
  EXPECT_EQ(sim.flows().active_flows(), 0u);
}

TEST(FlowFaultTest, CancelDeliversCancelledStatus) {
  Simulation sim(1);
  Link* link = sim.CreateLink("path", Millis(5), 8'000'000);
  Result<SimTime> outcome = InternalError("pending");
  FlowId id = sim.flows().StartFlow(Route::Through({link}), 1'000'000, 1.0, FlowOptions{},
                                    [&](Result<SimTime> finished) {
                                      outcome = std::move(finished);
                                    });
  sim.RunFor(Millis(50));
  EXPECT_TRUE(sim.flows().CancelFlow(id));
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
}

// ------------------------------------------------------------ Tor robustness

// The anon_test harness, reused: one vm uplink behind a host NAT and the
// 10 Mbit host uplink.
struct TorFaultHarness {
  explicit TorFaultHarness(uint64_t seed = 1)
      : sim(seed),
        uplink(sim.CreateLink("host-uplink", Millis(40), 10'000'000)),
        public_ip(sim.internet().AllocatePublicIp()),
        router("host-router", uplink, public_ip),
        vm_uplink(sim.CreateLink("vm-uplink", Micros(100), 1'000'000'000)),
        network(sim) {
    sim.internet().AttachUplink(uplink);
    router.AttachInside(vm_uplink);
    server_link = sim.CreateLink("server", Millis(5), 100'000'000);
    server_ip = sim.internet().RegisterHost("files.example.com", &server, server_link);
  }

  ClientAttachment Attachment() {
    ClientAttachment attachment;
    attachment.sim = &sim;
    attachment.vm_uplink = vm_uplink;
    attachment.client_links = {vm_uplink, uplink};
    attachment.host_public_ip = public_ip;
    return attachment;
  }

  void AttachGuest(Anonymizer* anonymizer) {
    adapter = std::make_unique<AnonymizerPortAdapter>(anonymizer);
    vm_uplink->AttachA(adapter.get());
  }

  class NullServer : public InternetHost {
   public:
    void OnDatagram(const Packet&, const std::function<void(Packet)>&) override {}
  };

  Simulation sim;
  Link* uplink;
  Ipv4Address public_ip;
  NatGateway router;
  Link* vm_uplink;
  TorNetwork network;
  NullServer server;
  Link* server_link;
  Ipv4Address server_ip;
  std::unique_ptr<AnonymizerPortAdapter> adapter;
};

TEST(TorFaultTest, CrashedRelayVanishesUntilRestart) {
  TorFaultHarness harness;
  EXPECT_TRUE(harness.network.RelayUp(0));
  harness.network.CrashRelay(0);
  EXPECT_FALSE(harness.network.RelayUp(0));
  EXPECT_TRUE(harness.network.RelayAccessLink(0)->is_down());
  EXPECT_EQ(harness.sim.internet().FindHost(harness.network.relays()[0].ip), nullptr);
  harness.network.RestartRelay(0);
  EXPECT_TRUE(harness.network.RelayUp(0));
  EXPECT_FALSE(harness.network.RelayAccessLink(0)->is_down());
}

TEST(TorFaultTest, DeadGuardTimesOutThenFailsOver) {
  TorFaultHarness harness;
  TorClient client(harness.Attachment(), harness.network, /*seed=*/7);
  harness.AttachGuest(&client);
  // Seeded guard choice (§3.5): guard_seed 0 derives guard index 0. Crash
  // it before bootstrap so every CREATE2 cell dies on the floor.
  client.SeedGuardSelection(0);
  harness.network.CrashRelay(0);

  Result<SimTime> ready = UnavailableError("pending");
  client.Start([&](Result<SimTime> r) { ready = std::move(r); });
  harness.sim.loop().RunUntilIdle();

  ASSERT_TRUE(ready.ok()) << ready.status().ToString();
  EXPECT_TRUE(client.ready());
  // Two timed-out attempts hit the guard_failure_threshold, the dead guard
  // was marked failed, and the re-derived guard finished the build.
  ASSERT_TRUE(client.entry_guard_index().has_value());
  EXPECT_NE(*client.entry_guard_index(), 0u);
  EXPECT_EQ(client.failed_guards().count(0), 1u);
  // Failure detection cost real (virtual) time: two 10 s timeouts.
  EXPECT_GT(ToSeconds(*ready), 20.0);
}

TEST(TorFaultTest, GuardFailoverIsDeterministic) {
  auto run = [](uint64_t sim_seed) {
    TorFaultHarness harness(sim_seed);
    TorClient client(harness.Attachment(), harness.network, /*seed=*/7);
    harness.AttachGuest(&client);
    client.SeedGuardSelection(0);
    harness.network.CrashRelay(0);
    Result<SimTime> ready = UnavailableError("pending");
    client.Start([&](Result<SimTime> r) { ready = std::move(r); });
    harness.sim.loop().RunUntilIdle();
    NYMIX_CHECK(ready.ok());
    return std::tuple<size_t, SimTime, std::set<size_t>>{*client.entry_guard_index(), *ready,
                                                         client.failed_guards()};
  };
  EXPECT_EQ(run(3), run(3));
}

TEST(TorFaultTest, AllGuardsDeadAbandonsWithStatus) {
  TorFaultHarness harness;
  TorClientConfig config;
  config.circuit_build_timeout = Seconds(2);
  config.circuit_retry.initial_delay = Millis(200);
  config.circuit_retry.max_attempts = 4;
  TorClient client(harness.Attachment(), harness.network, /*seed=*/7, config);
  harness.AttachGuest(&client);
  for (size_t g : harness.network.GuardIndices()) {
    harness.network.CrashRelay(g);
  }
  Result<SimTime> ready = InternalError("pending");
  client.Start([&](Result<SimTime> r) { ready = std::move(r); });
  harness.sim.loop().RunUntilIdle();
  ASSERT_FALSE(ready.ok());
  EXPECT_EQ(ready.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(ready.status().message().find("abandoned after 4 attempts"), std::string::npos)
      << ready.status().ToString();
  // The last underlying error (the circuit-build timeout) rides along.
  EXPECT_NE(ready.status().message().find("DEADLINE_EXCEEDED"), std::string::npos)
      << ready.status().ToString();
  EXPECT_FALSE(client.ready());
}

TEST(TorFaultTest, NewIdentityCancelsInFlightBuildCleanly) {
  // Regression: NewIdentity during an in-flight circuit build used to race
  // the pending ready callback. The superseded build must observe
  // kCancelled — exactly once — and the new build must complete.
  TorFaultHarness harness;
  TorClient client(harness.Attachment(), harness.network, /*seed=*/7);
  harness.AttachGuest(&client);
  client.Start(nullptr);
  harness.sim.loop().RunUntilIdle();
  ASSERT_TRUE(client.ready());

  int first_calls = 0;
  Status first_status = OkStatus();
  client.NewIdentity([&](Result<SimTime> r) {
    ++first_calls;
    first_status = r.status();
  });
  // Supersede immediately, while the first rebuild's CREATE2 is in flight.
  Result<SimTime> second = UnavailableError("pending");
  client.NewIdentity([&](Result<SimTime> r) { second = std::move(r); });
  harness.sim.loop().RunUntilIdle();

  EXPECT_EQ(first_calls, 1);
  EXPECT_EQ(first_status.code(), StatusCode::kCancelled);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(client.ready());
}

TEST(TorFaultTest, FetchRetriesOntoAFreshExitAfterExitCrash) {
  TorFaultHarness harness;
  TorClient client(harness.Attachment(), harness.network, /*seed=*/7);
  harness.AttachGuest(&client);
  client.Start(nullptr);
  harness.sim.loop().RunUntilIdle();
  ASSERT_TRUE(client.ready());

  // Bind the destination to an exit, then crash that exit: the first fetch
  // attempt stalls on the dead access link, fails, drops the binding, and
  // the retry re-rolls a live exit (stream isolation preserved).
  size_t doomed_exit = client.ExitIndexForDestination("files.example.com");
  harness.network.CrashRelay(doomed_exit);

  Result<FetchReceipt> receipt = UnavailableError("pending");
  SimTime start = harness.sim.now();
  client.Fetch("files.example.com", 2'000, 100'000,
               [&](Result<FetchReceipt> r) { receipt = std::move(r); });
  harness.sim.loop().RunUntilIdle();

  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  size_t new_exit = client.ExitIndexForDestination("files.example.com");
  EXPECT_NE(new_exit, doomed_exit);
  EXPECT_EQ(receipt->observed_source, harness.network.relays()[new_exit].ip);
  // The failure path cost at least the fetch stall timeout (30 s default).
  EXPECT_GT(ToSeconds(harness.sim.now() - start), 30.0);
}

// ------------------------------------------------------- VM crash recovery

TEST(NymRecoveryTest, CrashThenRecoverRestoresStateAndGuard) {
  Testbed bed(/*seed=*/11);
  NymManager::CreateOptions options;
  options.guard_seed = 1234;  // §3.5 location-derived guard
  Nym* nym = bed.CreateNymBlocking("whistleblower", options);
  auto* tor = static_cast<TorClient*>(nym->anonymizer());
  ASSERT_TRUE(tor->entry_guard_index().has_value());
  size_t original_guard = *tor->entry_guard_index();

  // User data lands in the AnonVM's writable layer; the anonymizer's state
  // file is checkpointed into the CommVM layer (tor's periodic state sync).
  ASSERT_TRUE(nym->anon_vm()
                  ->disk()
                  .fs()
                  .writable_mutable()
                  .WriteFile("/home/user/draft.txt", Blob::FromString("leak notes"))
                  .ok());
  ASSERT_TRUE(bed.manager().CheckpointNym(*nym).ok());

  bed.manager().InjectCrash(*nym);
  EXPECT_EQ(nym->anon_vm()->state(), VmState::kCrashed);
  EXPECT_EQ(nym->comm_vm()->state(), VmState::kCrashed);

  auto recovered = bed.RecoverNymBlocking(nym);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Nym* fresh = *recovered;
  EXPECT_EQ(fresh->name(), "whistleblower");
  EXPECT_EQ(fresh->anon_vm()->state(), VmState::kRunning);
  EXPECT_EQ(fresh->comm_vm()->state(), VmState::kRunning);
  EXPECT_TRUE(fresh->anonymizer()->ready());

  // The writable-layer snapshot rode through the recovery.
  auto draft = fresh->anon_vm()->disk().fs().ReadFile("/home/user/draft.txt");
  ASSERT_TRUE(draft.ok());
  EXPECT_EQ(StringFromBytes(draft->Materialize()), "leak notes");

  // Guard persistence across the crash (§3.5): the restored client re-lands
  // on the same entry guard.
  auto* fresh_tor = static_cast<TorClient*>(fresh->anonymizer());
  ASSERT_TRUE(fresh_tor->entry_guard_index().has_value());
  EXPECT_EQ(*fresh_tor->entry_guard_index(), original_guard);
}

TEST(NymRecoveryTest, CrashLeavesGuestPagesForColdBootScan) {
  // A crash is the one teardown path where §3.4's secure wipe cannot run:
  // guest pages must remain in host RAM (the Dunn et al. remanence window).
  Testbed bed(12);
  Nym* nym = bed.CreateNymBlocking("victim");
  uint64_t unique_before = nym->anon_vm()->memory().unique_pages();
  ASSERT_GT(unique_before, 0u);
  bed.manager().InjectCrash(*nym);
  EXPECT_EQ(nym->anon_vm()->memory().unique_pages(), unique_before);
}

TEST(NymRecoveryTest, RecoverUnknownNymReturnsNotFound) {
  Testbed bed(13);
  Nym ghost("ghost", NymMode::kEphemeral, bed.sim());
  Result<Nym*> result = InternalError("pending");
  bool done = false;
  bed.manager().RecoverNym(&ghost, [&](Result<Nym*> r, NymStartupReport) {
    result = std::move(r);
    done = true;
  });
  bed.sim().RunUntil([&] { return done; });
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace nymix
