#include <gtest/gtest.h>

#include "src/anon/dcnet.h"

namespace nymix {
namespace {

// ---------------------------------------------------------------- Core XOR math

TEST(DcNetTest, PadsCancelPairwise) {
  DcNetGroup group(4, 64, 42);
  // All members silent: the combined round must be exactly zero.
  std::vector<Bytes> ciphertexts;
  for (size_t member = 0; member < 4; ++member) {
    auto ciphertext = group.MemberCiphertext(member, member, {}, /*round=*/1);
    ASSERT_TRUE(ciphertext.ok());
    // Individual ciphertexts are NOT zero (they are pad XORs)...
    bool all_zero = std::all_of(ciphertext->begin(), ciphertext->end(),
                                [](uint8_t b) { return b == 0; });
    EXPECT_FALSE(all_zero);
    ciphertexts.push_back(std::move(*ciphertext));
  }
  auto combined = group.CombineRound(ciphertexts);
  ASSERT_TRUE(combined.ok());
  // ...but they cancel exactly.
  for (uint8_t byte : *combined) {
    ASSERT_EQ(byte, 0);
  }
}

TEST(DcNetTest, SingleSenderMessageRecovered) {
  DcNetGroup group(5, 64, 7);
  std::vector<Bytes> messages(5);
  messages[2] = BytesFromString("the protest is at nine");
  std::vector<size_t> slots = group.SlotPermutation(3);
  auto result = group.RunRound(messages, slots, 3);
  EXPECT_TRUE(result.corrupted_slots.empty());
  auto payload = group.SlotPayload(result.plaintext, slots[2]);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(StringFromBytes(*payload), "the protest is at nine");
  // All other slots are empty.
  for (size_t member = 0; member < 5; ++member) {
    if (member == 2) {
      continue;
    }
    auto other = group.SlotPayload(result.plaintext, slots[member]);
    ASSERT_TRUE(other.ok());
    EXPECT_TRUE(other->empty());
  }
}

TEST(DcNetTest, AllMembersTransmitSimultaneously) {
  DcNetGroup group(4, 32, 9);
  std::vector<Bytes> messages;
  for (int member = 0; member < 4; ++member) {
    messages.push_back(BytesFromString("msg-" + std::to_string(member)));
  }
  std::vector<size_t> slots = group.SlotPermutation(11);
  auto result = group.RunRound(messages, slots, 11);
  EXPECT_TRUE(result.corrupted_slots.empty());
  for (size_t member = 0; member < 4; ++member) {
    auto payload = group.SlotPayload(result.plaintext, slots[member]);
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ(StringFromBytes(*payload), "msg-" + std::to_string(member));
  }
}

TEST(DcNetTest, CiphertextRevealsNothingAboutSender) {
  // The transcript distribution must not depend on WHO transmitted: every
  // member's transmission is pad-XOR data; the only information is in the
  // combined output. Sanity-check the first-order property: a silent
  // member's ciphertext and a transmitting member's ciphertext are both
  // high-entropy, and each member's ciphertext changes every round.
  DcNetGroup group(3, 128, 21);
  auto silent = group.MemberCiphertext(0, 0, {}, 1);
  auto talking = group.MemberCiphertext(0, 0, BytesFromString("hello"), 1);
  ASSERT_TRUE(silent.ok() && talking.ok());
  EXPECT_NE(*silent, *talking);  // they differ...
  // ...but both look uniformly random (rough byte-diversity check).
  auto diversity = [](const Bytes& data) {
    bool seen[256] = {false};
    size_t distinct = 0;
    for (uint8_t byte : data) {
      if (!seen[byte]) {
        seen[byte] = true;
        ++distinct;
      }
    }
    return distinct;
  };
  EXPECT_GT(diversity(*silent), 150u);
  EXPECT_GT(diversity(*talking), 150u);
  auto next_round = group.MemberCiphertext(0, 0, {}, 2);
  ASSERT_TRUE(next_round.ok());
  EXPECT_NE(*silent, *next_round);
}

TEST(DcNetTest, RejectsBadArguments) {
  DcNetGroup group(3, 16, 1);
  EXPECT_FALSE(group.MemberCiphertext(3, 0, {}, 1).ok());
  EXPECT_FALSE(group.MemberCiphertext(0, 3, {}, 1).ok());
  EXPECT_FALSE(group.MemberCiphertext(0, 0, Bytes(17, 0), 1).ok());
  EXPECT_FALSE(group.CombineRound({}).ok());
  EXPECT_FALSE(group.SlotPayload(Bytes(5, 0), 0).ok());
}

// ---------------------------------------------------------------- Disruption

TEST(DcNetTest, DisruptionDetectedByChecksums) {
  DcNetGroup group(6, 64, 5);
  std::vector<Bytes> messages(6);
  messages[1] = BytesFromString("legit message");
  std::vector<size_t> slots = group.SlotPermutation(4);
  auto result = group.RunRound(messages, slots, 4, /*disruptor=*/4);
  EXPECT_FALSE(result.corrupted_slots.empty());
}

TEST(DcNetTest, BlameIdentifiesTheDisruptor) {
  DcNetGroup group(6, 64, 5);
  std::vector<Bytes> messages(6);
  messages[1] = BytesFromString("legit message");
  std::vector<size_t> slots = group.SlotPermutation(4);

  // Reconstruct the transmissions as RunRound builds them.
  std::vector<Bytes> transmitted;
  for (size_t member = 0; member < 6; ++member) {
    transmitted.push_back(*group.MemberCiphertext(member, slots[member], messages[member], 4));
  }
  Prng noise(Mix64(4 ^ 0xbadc0deULL));
  for (auto& byte : transmitted[4]) {
    byte ^= static_cast<uint8_t>(noise.NextBelow(256));
  }
  auto disruptors = group.Blame(transmitted, messages, slots, 4);
  ASSERT_EQ(disruptors.size(), 1u);
  EXPECT_EQ(disruptors[0], 4u);
  // An honest round blames nobody.
  transmitted[4] = *group.MemberCiphertext(4, slots[4], messages[4], 4);
  EXPECT_TRUE(group.Blame(transmitted, messages, slots, 4).empty());
}

// ---------------------------------------------------------------- Shuffle

TEST(DcNetTest, SlotPermutationIsBijectiveAndRoundVarying) {
  DcNetGroup group(8, 16, 77);
  auto p1 = group.SlotPermutation(1);
  auto p2 = group.SlotPermutation(2);
  std::vector<bool> hit(8, false);
  for (size_t slot : p1) {
    ASSERT_LT(slot, 8u);
    EXPECT_FALSE(hit[slot]);
    hit[slot] = true;
  }
  EXPECT_NE(p1, p2);                       // fresh assignment per round
  EXPECT_EQ(p1, group.SlotPermutation(1));  // but deterministic
}

}  // namespace
}  // namespace nymix
