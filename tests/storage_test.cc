#include <gtest/gtest.h>

#include "src/storage/cloud.h"
#include "src/storage/local_store.h"
#include "src/storage/nym_archive.h"

namespace nymix {
namespace {

// ---------------------------------------------------------------- Cloud

TEST(CloudTest, AccountLifecycle) {
  Simulation sim(1);
  CloudService cloud(sim, "drop.example.com");
  EXPECT_TRUE(cloud.CreateAccount("nym-user-1", "pw1").ok());
  EXPECT_FALSE(cloud.CreateAccount("nym-user-1", "pw2").ok());
  EXPECT_TRUE(cloud.Authenticate("nym-user-1", "pw1").ok());
  EXPECT_FALSE(cloud.Authenticate("nym-user-1", "wrong").ok());
  // Unknown account and wrong password are indistinguishable.
  EXPECT_EQ(cloud.Authenticate("ghost", "pw").code(),
            cloud.Authenticate("nym-user-1", "wrong").code());
}

TEST(CloudTest, ObjectStorage) {
  Simulation sim(1);
  CloudService cloud(sim, "drop.example.com");
  ASSERT_TRUE(cloud.CreateAccount("user", "pw").ok());
  StoredObject object;
  object.data = BytesFromString("ciphertext");
  object.logical_size = 5 * kMiB;
  ASSERT_TRUE(cloud.Put("user", "nym-a", object).ok());
  auto got = cloud.Get("user", "nym-a");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->logical_size, 5 * kMiB);
  auto names = cloud.List("user");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"nym-a"});
  EXPECT_TRUE(cloud.Delete("user", "nym-a").ok());
  EXPECT_FALSE(cloud.Get("user", "nym-a").ok());
  EXPECT_FALSE(cloud.Put("ghost", "x", StoredObject{}).ok());
}

TEST(CloudTest, FreeTierQuotaEnforced) {
  Simulation sim(1);
  CloudService::Config config;
  config.free_quota_bytes = 10 * kMiB;
  CloudService cloud(sim, "drop.example.com", config);
  ASSERT_TRUE(cloud.CreateAccount("user", "pw").ok());

  StoredObject big;
  big.logical_size = 6 * kMiB;
  ASSERT_TRUE(cloud.Put("user", "nym-a", big).ok());
  EXPECT_EQ(*cloud.UsageBytes("user"), 6 * kMiB);
  // A second 6 MiB object would exceed the 10 MiB free tier.
  EXPECT_EQ(cloud.Put("user", "nym-b", big).code(), StatusCode::kResourceExhausted);
  // Overwriting replaces, it doesn't add.
  StoredObject bigger;
  bigger.logical_size = 9 * kMiB;
  EXPECT_TRUE(cloud.Put("user", "nym-a", bigger).ok());
  EXPECT_EQ(*cloud.UsageBytes("user"), 9 * kMiB);
  // Deleting frees quota.
  ASSERT_TRUE(cloud.Delete("user", "nym-a").ok());
  EXPECT_TRUE(cloud.Put("user", "nym-b", big).ok());
  EXPECT_FALSE(cloud.UsageBytes("ghost").ok());
}

TEST(CloudTest, AccessLogRecordsObservedSource) {
  Simulation sim(1);
  CloudService cloud(sim, "drop.example.com");
  Ipv4Address exit(203, 0, 113, 42);
  cloud.LogAccess(Seconds(10), exit, "login");
  cloud.LogAccess(Seconds(12), exit, "put nym-a");
  ASSERT_EQ(cloud.access_log().size(), 2u);
  // What the provider knows: an exit relay touched an account. Nothing else.
  EXPECT_EQ(cloud.access_log()[0].observed_source, exit);
  EXPECT_TRUE(cloud.access_link() != nullptr);
  EXPECT_TRUE(sim.internet().Resolve("drop.example.com").ok());
}

// ---------------------------------------------------------------- NymArchive

struct ArchiveFixture {
  ArchiveFixture() {
    NYMIX_CHECK(anon.WriteFile("/home/user/.config/chromium/prefs",
                               Blob::FromString("theme=dark\nlogin=alice-nym\n"))
                    .ok());
    NYMIX_CHECK(anon.WriteFile("/home/user/.cache/chromium/f_000001",
                               Blob::Synthetic(8 * kMiB, 11, 0.85))
                    .ok());
    NYMIX_CHECK(comm.WriteFile("/var/lib/tor/state",
                               Blob::FromString("guard=relay2\nconsensus-cached=1\n"))
                    .ok());
  }
  MemFs anon;
  MemFs comm;
};

TEST(NymArchiveTest, SealOpenRoundTrip) {
  ArchiveFixture fixture;
  auto archive = NymArchiver::Seal(fixture.anon, fixture.comm, "my-nym", "hunter2", 1);
  ASSERT_TRUE(archive.ok());
  auto contents = NymArchiver::Open(archive->sealed, "my-nym", "hunter2", 1);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(StringFromBytes(
                contents->anonvm_writable->ReadFile("/home/user/.config/chromium/prefs")
                    ->Materialize()),
            "theme=dark\nlogin=alice-nym\n");
  EXPECT_EQ(StringFromBytes(
                contents->commvm_writable->ReadFile("/var/lib/tor/state")->Materialize()),
            "guard=relay2\nconsensus-cached=1\n");
  auto cache = contents->anonvm_writable->ReadFile("/home/user/.cache/chromium/f_000001");
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ(cache->size(), 8 * kMiB);
}

TEST(NymArchiveTest, WrongPasswordRejected) {
  ArchiveFixture fixture;
  auto archive = NymArchiver::Seal(fixture.anon, fixture.comm, "my-nym", "hunter2", 1);
  ASSERT_TRUE(archive.ok());
  EXPECT_EQ(NymArchiver::Open(archive->sealed, "my-nym", "wrong", 1).status().code(),
            StatusCode::kUnauthenticated);
}

TEST(NymArchiveTest, NameAndSequenceAreAuthenticated) {
  ArchiveFixture fixture;
  auto archive = NymArchiver::Seal(fixture.anon, fixture.comm, "my-nym", "hunter2", 3);
  ASSERT_TRUE(archive.ok());
  // A provider replaying version 3 as version 4 (or under another name)
  // must be detected.
  EXPECT_FALSE(NymArchiver::Open(archive->sealed, "my-nym", "hunter2", 4).ok());
  EXPECT_FALSE(NymArchiver::Open(archive->sealed, "other-nym", "hunter2", 3).ok());
  EXPECT_TRUE(NymArchiver::Open(archive->sealed, "my-nym", "hunter2", 3).ok());
}

TEST(NymArchiveTest, TamperedCiphertextRejected) {
  ArchiveFixture fixture;
  auto archive = NymArchiver::Seal(fixture.anon, fixture.comm, "my-nym", "hunter2", 1);
  ASSERT_TRUE(archive.ok());
  archive->sealed[archive->sealed.size() / 2] ^= 0x40;
  EXPECT_FALSE(NymArchiver::Open(archive->sealed, "my-nym", "hunter2", 1).ok());
}

TEST(NymArchiveTest, LogicalSizeIncludesSyntheticCache) {
  ArchiveFixture fixture;
  auto archive = NymArchiver::Seal(fixture.anon, fixture.comm, "my-nym", "hunter2", 1);
  ASSERT_TRUE(archive.ok());
  // The 8 MiB synthetic cache dominates: logical size must reflect its
  // compressed estimate even though the sealed bytes are tiny.
  EXPECT_GT(archive->logical_size, 6 * kMiB);
  EXPECT_LT(archive->sealed.size(), 64 * kKiB);
  EXPECT_GT(NymArchiver::AnonVmFraction(fixture.anon, fixture.comm), 0.95);
}

TEST(NymArchiveTest, EmptyFilesystemsRoundTrip) {
  MemFs anon, comm;
  auto archive = NymArchiver::Seal(anon, comm, "fresh", "pw", 0);
  ASSERT_TRUE(archive.ok());
  auto contents = NymArchiver::Open(archive->sealed, "fresh", "pw", 0);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->anonvm_writable->FileCount(), 0u);
  EXPECT_EQ(contents->commvm_writable->FileCount(), 0u);
}

TEST(NymArchiveTest, DifferentSequencesProduceDifferentCiphertexts) {
  ArchiveFixture fixture;
  auto a = NymArchiver::Seal(fixture.anon, fixture.comm, "nym", "pw", 1);
  auto b = NymArchiver::Seal(fixture.anon, fixture.comm, "nym", "pw", 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->sealed, b->sealed);
}

TEST(GuardSeedTest, DeterministicAndDistinct) {
  uint64_t a = DeriveGuardSeed("drop.example.com/user1", "pw");
  uint64_t b = DeriveGuardSeed("drop.example.com/user1", "pw");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, DeriveGuardSeed("drop.example.com/user2", "pw"));
  EXPECT_NE(a, DeriveGuardSeed("drop.example.com/user1", "pw2"));
}

TEST(BlindObjectNameTest, DeterministicDistinctAndNameFree) {
  // The nymflow identity-taint rule flagged raw nym names reaching the
  // cloud provider's object index; BlindObjectName is the declassifier
  // that severed the path. Same (name, password) -> same object name, so
  // the owner can always re-derive it...
  std::string a = BlindObjectName("deniable", "nympw");
  EXPECT_EQ(a, BlindObjectName("deniable", "nympw"));
  // ...but neither the name nor the password alone determines it, and the
  // pseudonym never appears in the provider-visible string.
  EXPECT_NE(a, BlindObjectName("other-nym", "nympw"));
  EXPECT_NE(a, BlindObjectName("deniable", "other-pw"));
  EXPECT_EQ(a.find("deniable"), std::string::npos);
  EXPECT_EQ(a.rfind("obj-", 0), 0u);
}

// ---------------------------------------------------------------- LocalStore

TEST(LocalStoreTest, PutGetDelete) {
  LocalStore store("usb-2");
  NymArchive archive;
  archive.sealed = BytesFromString("ciphertext-bytes");
  archive.logical_size = 123;
  ASSERT_TRUE(store.Put("nym-a", archive).ok());
  auto got = store.Get("nym-a");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->logical_size, 123u);
  EXPECT_TRUE(store.Delete("nym-a").ok());
  EXPECT_FALSE(store.Get("nym-a").ok());
  EXPECT_FALSE(store.Delete("nym-a").ok());
}

TEST(LocalStoreTest, ForensicInspectionShowsEncryptedBlobs) {
  LocalStore store("usb-2");
  EXPECT_FALSE(store.HasSuspiciousState());
  NymArchive archive;
  archive.sealed = Bytes(1000, 0xaa);
  ASSERT_TRUE(store.Put("twitter-nym", archive).ok());
  EXPECT_TRUE(store.HasSuspiciousState());
  auto entries = store.InspectDevice();
  ASSERT_EQ(entries.size(), 1u);
  // Confiscation reveals the blob's existence, name, and size — exactly the
  // deniability gap that cloud storage closes (§3.5).
  EXPECT_EQ(entries[0].name, "twitter-nym");
  EXPECT_EQ(entries[0].stored_bytes, 1000u);
}

}  // namespace
}  // namespace nymix
