#include <gtest/gtest.h>

#include "src/unionfs/disk_image.h"
#include "src/unionfs/mem_fs.h"
#include "src/unionfs/path.h"
#include "src/unionfs/serialize.h"
#include "src/unionfs/union_fs.h"

namespace nymix {
namespace {

// ---------------------------------------------------------------- Path

TEST(PathTest, SplitAndJoin) {
  auto parts = SplitPath("/etc/rc.local");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(*parts, (std::vector<std::string>{"etc", "rc.local"}));
  EXPECT_EQ(JoinPath(*parts), "/etc/rc.local");
  EXPECT_EQ(JoinPath({}), "/");
}

TEST(PathTest, RootSplitsEmpty) {
  auto parts = SplitPath("/");
  ASSERT_TRUE(parts.ok());
  EXPECT_TRUE(parts->empty());
}

TEST(PathTest, RejectsBadPaths) {
  EXPECT_FALSE(SplitPath("").ok());
  EXPECT_FALSE(SplitPath("relative/path").ok());
  EXPECT_FALSE(SplitPath("//double").ok());
  EXPECT_FALSE(SplitPath("/a/../b").ok());
  EXPECT_FALSE(SplitPath("/a/./b").ok());
}

TEST(PathTest, ParentAndBasename) {
  EXPECT_EQ(ParentPath("/a/b/c"), "/a/b");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(BasenameOf("/a/b"), "b");
  EXPECT_EQ(BasenameOf("/"), "");
}

// ---------------------------------------------------------------- MemFs

TEST(MemFsTest, WriteReadRoundTrip) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("/home/user/note.txt", Blob::FromString("hi")).ok());
  auto blob = fs.ReadFile("/home/user/note.txt");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(StringFromBytes(blob->Materialize()), "hi");
  EXPECT_TRUE(fs.IsDirectory("/home/user"));
  EXPECT_EQ(fs.FileCount(), 1u);
}

TEST(MemFsTest, OverwriteUpdatesAccounting) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("/f", Blob::Synthetic(100, 1)).ok());
  EXPECT_EQ(fs.TotalBytes(), 100u);
  ASSERT_TRUE(fs.WriteFile("/f", Blob::Synthetic(40, 2)).ok());
  EXPECT_EQ(fs.TotalBytes(), 40u);
  EXPECT_EQ(fs.FileCount(), 1u);
}

TEST(MemFsTest, MkdirSemantics) {
  MemFs fs;
  EXPECT_FALSE(fs.Mkdir("/a/b/c").ok());             // parent missing
  EXPECT_TRUE(fs.Mkdir("/a/b/c", true).ok());        // recursive
  EXPECT_TRUE(fs.Mkdir("/a/b/c", true).ok());        // idempotent with recursive
  EXPECT_FALSE(fs.Mkdir("/a/b/c").ok());             // already exists
  ASSERT_TRUE(fs.WriteFile("/file", Blob::FromString("x")).ok());
  EXPECT_FALSE(fs.Mkdir("/file").ok());              // file in the way
}

TEST(MemFsTest, UnlinkAndRemove) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("/d/one", Blob::Synthetic(10, 1)).ok());
  ASSERT_TRUE(fs.WriteFile("/d/two", Blob::Synthetic(20, 2)).ok());
  EXPECT_FALSE(fs.Unlink("/d").ok());                // directory
  EXPECT_TRUE(fs.Unlink("/d/one").ok());
  EXPECT_FALSE(fs.Unlink("/d/one").ok());
  EXPECT_FALSE(fs.Remove("/d").ok());                // not empty
  EXPECT_TRUE(fs.Remove("/d", true).ok());
  EXPECT_EQ(fs.TotalBytes(), 0u);
  EXPECT_EQ(fs.FileCount(), 0u);
}

TEST(MemFsTest, RenameMovesSubtree) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("/old/a", Blob::FromString("1")).ok());
  ASSERT_TRUE(fs.WriteFile("/old/b", Blob::FromString("2")).ok());
  ASSERT_TRUE(fs.Rename("/old", "/new/place").ok());
  EXPECT_FALSE(fs.Exists("/old"));
  EXPECT_TRUE(fs.Exists("/new/place/a"));
  EXPECT_TRUE(fs.Exists("/new/place/b"));
  EXPECT_FALSE(fs.Rename("/missing", "/x").ok());
  ASSERT_TRUE(fs.WriteFile("/target", Blob::FromString("t")).ok());
  EXPECT_FALSE(fs.Rename("/new/place/a", "/target").ok());  // destination exists
}

TEST(MemFsTest, ListSortedWithSizes) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("/dir/banana", Blob::Synthetic(5, 1)).ok());
  ASSERT_TRUE(fs.WriteFile("/dir/apple", Blob::Synthetic(3, 2)).ok());
  ASSERT_TRUE(fs.Mkdir("/dir/sub").ok());
  auto entries = fs.List("/dir");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].name, "apple");
  EXPECT_EQ((*entries)[0].size, 3u);
  EXPECT_EQ((*entries)[1].name, "banana");
  EXPECT_TRUE((*entries)[2].is_directory);
}

TEST(MemFsTest, CloneIsDeep) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("/a", Blob::FromString("orig")).ok());
  auto copy = fs.Clone();
  ASSERT_TRUE(copy->WriteFile("/a", Blob::FromString("changed")).ok());
  EXPECT_EQ(StringFromBytes(fs.ReadFile("/a")->Materialize()), "orig");
  EXPECT_EQ(copy->TotalBytes(), 7u);
}

TEST(MemFsTest, WipeAllClearsEverything) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("/secret/cookie", Blob::Synthetic(1000, 3)).ok());
  fs.WipeAll();
  EXPECT_FALSE(fs.Exists("/secret/cookie"));
  EXPECT_EQ(fs.TotalBytes(), 0u);
  EXPECT_EQ(fs.FileCount(), 0u);
}

TEST(MemFsTest, ForEachFileVisitsAll) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("/a/x", Blob::Synthetic(1, 1)).ok());
  ASSERT_TRUE(fs.WriteFile("/a/y", Blob::Synthetic(2, 2)).ok());
  ASSERT_TRUE(fs.WriteFile("/b", Blob::Synthetic(3, 3)).ok());
  std::vector<std::string> paths;
  fs.ForEachFile([&](const std::string& path, const Blob&) { paths.push_back(path); });
  EXPECT_EQ(paths, (std::vector<std::string>{"/a/x", "/a/y", "/b"}));
}

// ---------------------------------------------------------------- UnionFs

struct UnionFixture {
  UnionFixture() {
    auto base_fs = std::make_shared<MemFs>();
    NYMIX_CHECK(base_fs->WriteFile("/etc/rc.local", Blob::FromString("base-rc")).ok());
    NYMIX_CHECK(base_fs->WriteFile("/etc/hosts", Blob::FromString("hosts")).ok());
    NYMIX_CHECK(base_fs->WriteFile("/usr/bin/tor", Blob::Synthetic(1000, 9)).ok());
    base = base_fs;

    auto config_fs = std::make_shared<MemFs>();
    NYMIX_CHECK(config_fs->WriteFile("/etc/rc.local", Blob::FromString("commvm-rc")).ok());
    config = config_fs;

    writable = std::make_shared<MemFs>();
    fs = std::make_unique<UnionFs>(
        std::vector<std::shared_ptr<const MemFs>>{base, config}, writable);
  }

  std::shared_ptr<const MemFs> base;
  std::shared_ptr<const MemFs> config;
  std::shared_ptr<MemFs> writable;
  std::unique_ptr<UnionFs> fs;
};

TEST(UnionFsTest, ConfigLayerMasksBase) {
  UnionFixture fixture;
  EXPECT_EQ(StringFromBytes(fixture.fs->ReadFile("/etc/rc.local")->Materialize()), "commvm-rc");
  EXPECT_EQ(StringFromBytes(fixture.fs->ReadFile("/etc/hosts")->Materialize()), "hosts");
}

TEST(UnionFsTest, WritesGoToWritableLayerOnly) {
  UnionFixture fixture;
  ASSERT_TRUE(fixture.fs->WriteFile("/etc/hosts", Blob::FromString("modified")).ok());
  EXPECT_EQ(StringFromBytes(fixture.fs->ReadFile("/etc/hosts")->Materialize()), "modified");
  // Lower layers untouched (copy-on-write).
  EXPECT_EQ(StringFromBytes(fixture.base->ReadFile("/etc/hosts")->Materialize()), "hosts");
  EXPECT_EQ(fixture.fs->WritableBytes(), 8u);
}

TEST(UnionFsTest, UnlinkLowerCreatesWhiteout) {
  UnionFixture fixture;
  ASSERT_TRUE(fixture.fs->Unlink("/etc/hosts").ok());
  EXPECT_FALSE(fixture.fs->Exists("/etc/hosts"));
  EXPECT_TRUE(fixture.fs->IsWhiteout("/etc/hosts"));
  EXPECT_FALSE(fixture.fs->ReadFile("/etc/hosts").ok());
  // Base still has the file.
  EXPECT_TRUE(fixture.base->Exists("/etc/hosts"));
}

TEST(UnionFsTest, WriteAfterWhiteoutResurrects) {
  UnionFixture fixture;
  ASSERT_TRUE(fixture.fs->Unlink("/etc/hosts").ok());
  ASSERT_TRUE(fixture.fs->WriteFile("/etc/hosts", Blob::FromString("new")).ok());
  EXPECT_TRUE(fixture.fs->Exists("/etc/hosts"));
  EXPECT_EQ(StringFromBytes(fixture.fs->ReadFile("/etc/hosts")->Materialize()), "new");
  EXPECT_FALSE(fixture.fs->IsWhiteout("/etc/hosts"));
}

TEST(UnionFsTest, UnlinkWritableOnlyFileLeavesNoWhiteout) {
  UnionFixture fixture;
  ASSERT_TRUE(fixture.fs->WriteFile("/tmp/scratch", Blob::FromString("x")).ok());
  ASSERT_TRUE(fixture.fs->Unlink("/tmp/scratch").ok());
  EXPECT_FALSE(fixture.fs->Exists("/tmp/scratch"));
  EXPECT_FALSE(fixture.fs->IsWhiteout("/tmp/scratch"));
}

TEST(UnionFsTest, UnlinkMissingFails) {
  UnionFixture fixture;
  EXPECT_FALSE(fixture.fs->Unlink("/nope").ok());
}

TEST(UnionFsTest, ListMergesLayersAndHidesWhiteouts) {
  UnionFixture fixture;
  ASSERT_TRUE(fixture.fs->WriteFile("/etc/new.conf", Blob::FromString("n")).ok());
  ASSERT_TRUE(fixture.fs->Unlink("/etc/hosts").ok());
  auto entries = fixture.fs->List("/etc");
  ASSERT_TRUE(entries.ok());
  std::vector<std::string> names;
  for (const auto& entry : *entries) {
    names.push_back(entry.name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"new.conf", "rc.local"}));
}

TEST(UnionFsTest, DiscardWritableRestoresPristineView) {
  UnionFixture fixture;
  ASSERT_TRUE(fixture.fs->WriteFile("/etc/hosts", Blob::FromString("stained")).ok());
  ASSERT_TRUE(fixture.fs->Unlink("/usr/bin/tor").ok());
  fixture.fs->DiscardWritable();
  EXPECT_EQ(StringFromBytes(fixture.fs->ReadFile("/etc/hosts")->Materialize()), "hosts");
  EXPECT_TRUE(fixture.fs->Exists("/usr/bin/tor"));
  EXPECT_EQ(fixture.fs->WritableBytes(), 0u);
}

// ---------------------------------------------------------------- BaseImage / VmDisk

TEST(BaseImageTest, DistributionHasStandardFiles) {
  auto image = BaseImage::CreateDistribution("nymix", 42, 8 * kMiB);
  EXPECT_TRUE(image->fs()->Exists("/etc/rc.local"));
  EXPECT_TRUE(image->fs()->Exists("/usr/bin/tor"));
  EXPECT_TRUE(image->fs()->Exists("/usr/bin/chromium"));
  EXPECT_EQ(image->block_count(), 8 * kMiB / kDiskBlockSize);
}

TEST(BaseImageTest, BlockContentIdsStableAcrossInstances) {
  auto a = BaseImage::CreateDistribution("nymix", 42, 1 * kMiB);
  auto b = BaseImage::CreateDistribution("nymix", 42, 1 * kMiB);
  for (uint64_t i = 0; i < a->block_count(); ++i) {
    EXPECT_EQ(a->BlockContentId(i), b->BlockContentId(i));
  }
  auto c = BaseImage::CreateDistribution("nymix", 43, 1 * kMiB);
  EXPECT_NE(a->BlockContentId(0), c->BlockContentId(0));
}

TEST(BaseImageTest, MerkleVerificationCatchesTampering) {
  auto image = BaseImage::CreateDistribution("nymix", 7, 1 * kMiB);
  for (uint64_t i = 0; i < image->block_count(); ++i) {
    EXPECT_TRUE(image->VerifyBlock(i));
  }
  image->TamperBlock(5, 999);
  EXPECT_FALSE(image->VerifyBlock(5));
  EXPECT_TRUE(image->VerifyBlock(4));  // other blocks still verify
}

TEST(BaseImageTest, VerifyAllBlocksMatchesPerBlockVerification) {
  auto image = BaseImage::CreateDistribution("nymix", 7, 1 * kMiB);
  EXPECT_TRUE(image->VerifyAllBlocks());
  // Memoized: the verdict tracks mutation_count, so a repeat is free and a
  // tamper invalidates it.
  EXPECT_TRUE(image->VerifyAllBlocks());
  image->TamperBlock(11, 999);
  EXPECT_FALSE(image->VerifyAllBlocks());
  EXPECT_FALSE(image->VerifyAllBlocks());
  // A second tamper moves the epoch again; still corrupt.
  image->TamperBlock(12, 1000);
  EXPECT_FALSE(image->VerifyAllBlocks());
  // Batch and per-block verdicts agree block by block.
  for (uint64_t i = 0; i < image->block_count(); ++i) {
    EXPECT_EQ(image->VerifyBlock(i), i != 11 && i != 12) << "block " << i;
  }
}

TEST(VmDiskTest, UnionStackWithConfigLayer) {
  auto image = BaseImage::CreateDistribution("nymix", 1, 1 * kMiB);
  auto config = std::make_shared<MemFs>();
  ASSERT_TRUE(config->WriteFile("/etc/rc.local", Blob::FromString("start-tor")).ok());
  VmDisk disk(image, config, 16 * kMiB);
  EXPECT_EQ(StringFromBytes(disk.fs().ReadFile("/etc/rc.local")->Materialize()), "start-tor");
  EXPECT_EQ(StringFromBytes(disk.fs().ReadFile("/etc/hostname")->Materialize()), "nymix");
}

TEST(VmDiskTest, EnforcesWritableCapacity) {
  auto image = BaseImage::CreateDistribution("nymix", 1, 1 * kMiB);
  VmDisk disk(image, nullptr, 1 * kMiB);
  EXPECT_TRUE(disk.WriteFile("/a", Blob::Synthetic(600 * kKiB, 1)).ok());
  auto status = disk.WriteFile("/b", Blob::Synthetic(600 * kKiB, 2));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // Overwriting a file accounts for the bytes it frees.
  EXPECT_TRUE(disk.WriteFile("/a", Blob::Synthetic(900 * kKiB, 3)).ok());
  EXPECT_EQ(disk.writable_used(), 900 * kKiB);
}

// ---------------------------------------------------------------- Serialization

TEST(SerializeTest, RoundTripRealAndSynthetic) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("/etc/config", Blob::FromString("key=value")).ok());
  ASSERT_TRUE(fs.WriteFile("/cache/blob", Blob::Synthetic(5 * kMiB, 77, 0.4)).ok());
  Bytes wire = SerializeMemFs(fs);
  auto restored = DeserializeMemFs(wire);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->FileCount(), 2u);
  EXPECT_EQ(StringFromBytes((*restored)->ReadFile("/etc/config")->Materialize()), "key=value");
  auto blob = (*restored)->ReadFile("/cache/blob");
  ASSERT_TRUE(blob.ok());
  EXPECT_TRUE(blob->is_synthetic());
  EXPECT_EQ(blob->size(), 5 * kMiB);
  EXPECT_EQ(blob->ContentHash(), Blob::Synthetic(5 * kMiB, 77, 0.4).ContentHash());
  EXPECT_NEAR(blob->entropy(), 0.4, 1e-5);
}

TEST(SerializeTest, DoubleRoundTripIsStable) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("/x", Blob::Synthetic(1234, 9, 0.7)).ok());
  Bytes once = SerializeMemFs(fs);
  auto mid = DeserializeMemFs(once);
  ASSERT_TRUE(mid.ok());
  Bytes twice = SerializeMemFs(**mid);
  EXPECT_EQ(once, twice);
}

TEST(SerializeTest, RejectsCorruptStream) {
  EXPECT_FALSE(DeserializeMemFs(BytesFromString("junk")).ok());
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("/a", Blob::FromString("data")).ok());
  Bytes wire = SerializeMemFs(fs);
  wire.resize(wire.size() - 2);
  EXPECT_FALSE(DeserializeMemFs(wire).ok());
}

TEST(SerializeTest, CompressedPayloadEstimate) {
  MemFs fs;
  ASSERT_TRUE(fs.WriteFile("/cache/big", Blob::Synthetic(10 * kMiB, 1, 0.5)).ok());
  uint64_t estimate = EstimateCompressedPayload(fs);
  EXPECT_GT(estimate, 4 * kMiB);   // 0.05+0.95*0.5 ≈ 0.525 ratio
  EXPECT_LT(estimate, 6 * kMiB);
  MemFs empty;
  EXPECT_EQ(EstimateCompressedPayload(empty), 0u);
}

}  // namespace
}  // namespace nymix
