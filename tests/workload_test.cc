#include <gtest/gtest.h>

#include "src/anon/incognito.h"
#include "src/anon/tor.h"
#include "src/net/nat.h"
#include "src/workload/browser.h"
#include "src/workload/downloader.h"
#include "src/workload/peacekeeper.h"

namespace nymix {
namespace {

// Full-ish rig: host, one AnonVM, incognito anonymizer (fast, simple),
// websites.
struct BrowserRig {
  BrowserRig()
      : sim(1),
        host(sim, HostConfig{}),
        image(BaseImage::CreateDistribution("nymix", 42, 64 * kMiB)),
        sites(sim, PaperWebsiteProfiles()) {
    auto created = host.CreateVm(VmConfig::AnonVm("anon-1"), image, nullptr);
    NYMIX_CHECK(created.ok());
    anon_vm = *created;
    anon_vm->Boot(nullptr);
    sim.loop().RunUntilIdle();

    vm_uplink = host.CreateVmUplink("vm-uplink");
    ClientAttachment attachment;
    attachment.sim = &sim;
    attachment.vm_uplink = vm_uplink;
    attachment.client_links = {vm_uplink, host.uplink()};
    attachment.host_public_ip = host.public_ip();
    anonymizer = std::make_unique<IncognitoVpn>(attachment);
    anonymizer->Start(nullptr);
    sim.loop().RunUntilIdle();
    browser = std::make_unique<BrowserModel>(sim, anon_vm, anonymizer.get(), 99);
  }

  Result<SimTime> VisitAndWait(Website& site) {
    Result<SimTime> result = InternalError("pending");
    bool done = false;
    browser->Visit(site, [&](Result<SimTime> r) {
      result = std::move(r);
      done = true;
    });
    sim.RunUntil([&] { return done; });
    return result;
  }

  Simulation sim;
  HostMachine host;
  std::shared_ptr<BaseImage> image;
  WebsiteDirectory sites;
  VirtualMachine* anon_vm = nullptr;
  Link* vm_uplink = nullptr;
  std::unique_ptr<IncognitoVpn> anonymizer;
  std::unique_ptr<BrowserModel> browser;
};

// ---------------------------------------------------------------- Websites

TEST(WebsiteTest, PaperProfilesCompleteAndOrdered) {
  auto profiles = PaperWebsiteProfiles();
  ASSERT_EQ(profiles.size(), 8u);
  EXPECT_EQ(profiles[0].name, "Gmail");
  EXPECT_EQ(profiles[1].name, "Twitter");
  EXPECT_EQ(profiles[2].name, "Youtube");
  EXPECT_EQ(profiles[3].name, "TorBlog");
  EXPECT_EQ(profiles[4].name, "BBC");
  EXPECT_EQ(profiles[5].name, "Facebook");
  EXPECT_EQ(profiles[6].name, "Slashdot");
  EXPECT_EQ(profiles[7].name, "ESPN");
  EXPECT_TRUE(profiles[0].supports_login);
  EXPECT_FALSE(profiles[3].supports_login);  // Tor Blog
}

TEST(WebsiteTest, DirectoryLookupAndDns) {
  Simulation sim(1);
  WebsiteDirectory sites(sim, PaperWebsiteProfiles());
  EXPECT_EQ(sites.ByName("Twitter").profile().domain, "twitter.com");
  EXPECT_EQ(sites.ByDomain("bbc.co.uk").profile().name, "BBC");
  EXPECT_EQ(sites.all().size(), 8u);
  EXPECT_TRUE(sim.internet().Resolve("twitter.com").ok());
}

TEST(WebsiteTest, ControlPlaneDatagramsAnswered) {
  // Websites, the cloud front-end, and the kernel mirror all answer
  // control-plane pings (login pages, HEAD checks) addressed to them.
  Simulation sim(1);
  WebsiteDirectory sites(sim, PaperWebsiteProfiles());
  KernelMirror mirror(sim);
  Link* uplink = sim.CreateLink("uplink", Millis(5), 10'000'000);
  sim.internet().AttachUplink(uplink);

  class Collector : public PacketSink {
   public:
    void OnPacket(const Packet& packet, Link&, bool) override { replies.push_back(packet); }
    std::vector<Packet> replies;
  } client;
  uplink->AttachA(&client);

  for (Ipv4Address target : {sites.ByName("BBC").ip(), mirror.ip()}) {
    Packet ping;
    ping.src_ip = Ipv4Address(203, 0, 113, 99);
    ping.src_port = 555;
    ping.dst_ip = target;
    ping.dst_port = 80;
    ping.payload = BytesFromString("HEAD /");
    uplink->SendFromA(std::move(ping));
  }
  sim.loop().RunUntilIdle();
  ASSERT_EQ(client.replies.size(), 2u);
  for (const Packet& reply : client.replies) {
    EXPECT_EQ(StringFromBytes(reply.payload), "200 OK");
    EXPECT_EQ(reply.dst_port, 555);
  }
}

// ---------------------------------------------------------------- Browser

TEST(BrowserTest, VisitWritesCacheCookiesHistory) {
  BrowserRig rig;
  Website& twitter = rig.sites.ByName("Twitter");
  auto result = rig.VisitAndWait(twitter);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(twitter.visit_count(), 1u);
  EXPECT_TRUE(rig.browser->HasCookieFor("twitter.com"));
  EXPECT_EQ(rig.browser->CacheBytes(), twitter.profile().cache_first_bytes);
  EXPECT_EQ(rig.browser->History(), std::vector<std::string>{"twitter.com"});
  // Dirty pages grew beyond the boot state.
  EXPECT_GT(rig.anon_vm->memory().unique_pages(),
            static_cast<uint64_t>(0.15 * rig.anon_vm->memory().total_pages()));
}

TEST(BrowserTest, RevisitIsCheaperAndKeepsCookie) {
  BrowserRig rig;
  Website& twitter = rig.sites.ByName("Twitter");
  ASSERT_TRUE(rig.VisitAndWait(twitter).ok());
  std::string cookie = rig.browser->CookieFor("twitter.com");
  uint64_t cache_after_first = rig.browser->CacheBytes();
  ASSERT_TRUE(rig.VisitAndWait(twitter).ok());
  EXPECT_EQ(rig.browser->CookieFor("twitter.com"), cookie);
  EXPECT_EQ(rig.browser->CacheBytes(),
            cache_after_first + twitter.profile().cache_revisit_bytes);
  // The tracker sees the same cookie both times (linkable within the nym).
  ASSERT_EQ(twitter.tracker_log().size(), 2u);
  EXPECT_EQ(twitter.tracker_log()[0].cookie, twitter.tracker_log()[1].cookie);
  EXPECT_EQ(twitter.DistinctCookies(), 1u);
}

TEST(BrowserTest, LoginStoresCredential) {
  BrowserRig rig;
  Website& twitter = rig.sites.ByName("Twitter");
  bool done = false;
  rig.browser->Login(twitter, "bob_the_blogger", "hunter2", [&](Result<SimTime> r) {
    EXPECT_TRUE(r.ok());
    done = true;
  });
  rig.sim.RunUntil([&] { return done; });
  EXPECT_TRUE(rig.browser->HasStoredCredential("twitter.com"));
  EXPECT_EQ(*rig.browser->StoredAccount("twitter.com"), "bob_the_blogger");
  ASSERT_EQ(twitter.tracker_log().size(), 1u);
  EXPECT_EQ(twitter.tracker_log()[0].account, "bob_the_blogger");
  // Sites without login support refuse.
  bool refused = false;
  rig.browser->Login(rig.sites.ByName("TorBlog"), "x", "y", [&](Result<SimTime> r) {
    EXPECT_FALSE(r.ok());
    refused = true;
  });
  EXPECT_TRUE(refused);
}

TEST(BrowserTest, CredentialsSurviveBrowserRestart) {
  BrowserRig rig;
  Website& twitter = rig.sites.ByName("Twitter");
  bool done = false;
  rig.browser->Login(twitter, "bob", "pw", [&](Result<SimTime>) { done = true; });
  rig.sim.RunUntil([&] { return done; });
  std::string cookie = rig.browser->CookieFor("twitter.com");
  // New BrowserModel over the same VM disk (same nym, new session).
  BrowserModel reopened(rig.sim, rig.anon_vm, rig.anonymizer.get(), 123);
  EXPECT_TRUE(reopened.HasStoredCredential("twitter.com"));
  EXPECT_EQ(reopened.CookieFor("twitter.com"), cookie);
}

TEST(BrowserTest, CacheEvictsAtCapacity) {
  BrowserRig rig;
  BrowserModel::Config config;
  config.cache_capacity = 30 * kMiB;
  BrowserModel browser(rig.sim, rig.anon_vm, rig.anonymizer.get(), 5, config);
  Website& gmail = rig.sites.ByName("Gmail");      // 25 MiB first visit
  Website& youtube = rig.sites.ByName("Youtube");  // 22 MiB first visit
  bool done = false;
  browser.Visit(gmail, [&](Result<SimTime>) { done = true; });
  rig.sim.RunUntil([&] { return done; });
  done = false;
  browser.Visit(youtube, [&](Result<SimTime>) { done = true; });
  rig.sim.RunUntil([&] { return done; });
  EXPECT_LE(browser.CacheBytes(), 30 * kMiB);
  EXPECT_GT(browser.CacheBytes(), 0u);
}

TEST(BrowserTest, TwoNymsAreUnlinkableAtTheTracker) {
  BrowserRig rig;
  Website& twitter = rig.sites.ByName("Twitter");
  ASSERT_TRUE(rig.VisitAndWait(twitter).ok());
  // Second nym: separate VM, separate browser state.
  auto created = rig.host.CreateVm(VmConfig::AnonVm("anon-2"), rig.image, nullptr);
  ASSERT_TRUE(created.ok());
  (*created)->Boot(nullptr);
  rig.sim.loop().RunUntilIdle();
  BrowserModel browser2(rig.sim, *created, rig.anonymizer.get(), 777);
  bool done = false;
  browser2.Visit(twitter, [&](Result<SimTime>) { done = true; });
  rig.sim.RunUntil([&] { return done; });
  // The tracker observes two distinct cookies — no shared client state.
  EXPECT_EQ(twitter.DistinctCookies(), 2u);
}

// ---------------------------------------------------------------- Peacekeeper

TEST(PeacekeeperTest, NativeScoreIsReference) {
  Simulation sim(1);
  HostMachine host(sim, HostConfig{});
  double score = 0;
  Peacekeeper::Run(host, /*virtualized=*/false, [&](double s) { score = s; });
  sim.loop().RunUntilIdle();
  EXPECT_NEAR(score, 4800.0, 1.0);
}

TEST(PeacekeeperTest, VirtualizedPaysOverhead) {
  Simulation sim(1);
  HostMachine host(sim, HostConfig{});
  double score = 0;
  Peacekeeper::Run(host, /*virtualized=*/true, [&](double s) { score = s; });
  sim.loop().RunUntilIdle();
  EXPECT_LT(score, 4800.0 * 0.88);
  EXPECT_GT(score, 4800.0 * 0.75);
}

TEST(PeacekeeperTest, ParallelActualBeatsExpected) {
  // 8 virtualized instances on 4 cores: the Figure 4 claim.
  Simulation sim(1);
  HostMachine host(sim, HostConfig{});
  double single = 0;
  Peacekeeper::Run(host, true, [&](double s) { single = s; });
  sim.loop().RunUntilIdle();

  std::vector<double> scores;
  for (int i = 0; i < 8; ++i) {
    Peacekeeper::Run(host, true, [&](double s) { scores.push_back(s); });
  }
  sim.loop().RunUntilIdle();
  ASSERT_EQ(scores.size(), 8u);
  double average = 0;
  for (double s : scores) {
    average += s;
  }
  average /= 8;
  double expected = Peacekeeper::ExpectedScore(single, 8, host.config().cores);
  EXPECT_GT(average, expected);           // idle gaps overlap
  EXPECT_LT(average, single);             // but contention is real
}

TEST(PeacekeeperTest, ExpectedCurveShape) {
  EXPECT_DOUBLE_EQ(Peacekeeper::ExpectedScore(4000, 1, 4), 4000);
  EXPECT_DOUBLE_EQ(Peacekeeper::ExpectedScore(4000, 4, 4), 4000);
  EXPECT_DOUBLE_EQ(Peacekeeper::ExpectedScore(4000, 8, 4), 2000);
}

// ---------------------------------------------------------------- Downloader

TEST(DownloaderTest, KernelDownloadAtTenMbit) {
  BrowserRig rig;
  KernelMirror mirror(rig.sim);
  Result<double> elapsed = InternalError("pending");
  bool done = false;
  DownloadKernel(*rig.anonymizer, mirror, rig.sim, [&](Result<double> r) {
    elapsed = std::move(r);
    done = true;
  });
  rig.sim.RunUntil([&] { return done; });
  ASSERT_TRUE(elapsed.ok());
  // 78 MB at 10 Mbit/s ≈ 62.4 s with incognito (no overhead).
  EXPECT_NEAR(*elapsed, 62.4, 1.5);
  EXPECT_EQ(mirror.downloads_served(), 1u);
}

}  // namespace
}  // namespace nymix
