// Adversary-model suite: the catch/clear matrix for the planted-isolation
// failures, thread-count byte-identity for the adversary.* outputs, the
// metadata-only contract of the link taps, and the N=64 clean-churn
// anonymity floor pinned against tests/baselines/adversary_floor.json.
//
// The matrix thresholds are the repo's leak-quantification acceptance
// criteria: every planted leak must be caught with attacker advantage
// >= 0.9 and a clean fleet must stay <= 0.1, at every seed of a 20-seed
// sweep and at 1, 2 and 4 executor threads.
#include <gtest/gtest.h>

// nymlint:allow-file(store-raw-io): the baseline is checked-in JSON
// reviewed in diffs, not simulator state.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/adversary/attacks.h"
#include "src/adversary/experiment.h"
#include "src/adversary/observer.h"
#include "src/net/simulation.h"
#include "src/obs/metrics.h"

namespace nymix {
namespace {

constexpr int kSweepSeeds = 20;
constexpr uint64_t kSeedBase = 1000;
constexpr int kShards = 4;

struct RunOutput {
  AdversaryReport report;
  std::string trace_json;
  std::string metrics_json;
  std::string adversary_json;
};

RunOutput RunExperiment(const AdversaryOptions& options, int threads, uint64_t seed) {
  ShardedSimulation sharded(seed, ShardPlan{kShards, threads});
  sharded.EnableObservability(/*record_wall_time=*/false);
  AdversaryExperiment experiment(sharded, options, seed);
  experiment.Run();
  sharded.MergeObservability();

  RunOutput out;
  out.report = experiment.Analyze();
  out.trace_json = sharded.merged().trace.ToChromeJson();
  std::ostringstream metrics;
  sharded.merged().metrics.WriteJson(metrics);
  out.metrics_json = metrics.str();
  MetricsRegistry adversary_metrics;
  adversary_metrics.set_enabled(true);
  AdversaryExperiment::ExportMetrics(out.report, adversary_metrics);
  std::ostringstream adversary;
  adversary_metrics.WriteJson(adversary);
  out.adversary_json = adversary.str();
  return out;
}

AdversaryOptions PlantedOptions(LeakPlant plant) {
  AdversaryOptions options;  // defaults: 8 nyms, 2 per host, 2 generations, mixed
  options.plant = plant;
  return options;
}

// --- Catch/clear matrix, 20-seed sweep at 1/2/4 threads ------------------

class AdversarySweep : public ::testing::TestWithParam<int> {};

TEST_P(AdversarySweep, CleanFleetStaysBelowFloor) {
  for (int s = 0; s < kSweepSeeds; ++s) {
    uint64_t seed = kSeedBase + static_cast<uint64_t>(s);
    RunOutput out = RunExperiment(PlantedOptions(LeakPlant::kNone), GetParam(), seed);
    EXPECT_LE(out.report.linkage.advantage, 0.1) << "seed " << seed;
    EXPECT_LE(out.report.linkage.linkage_probability, 0.1) << "seed " << seed;
    EXPECT_GT(out.report.nym_instances, 0u);
    EXPECT_GT(out.report.exit_flows, 0u);
  }
}

TEST_P(AdversarySweep, SharedCookieJarCaught) {
  for (int s = 0; s < kSweepSeeds; ++s) {
    uint64_t seed = kSeedBase + static_cast<uint64_t>(s);
    RunOutput out = RunExperiment(PlantedOptions(LeakPlant::kSharedCookieJar), GetParam(), seed);
    EXPECT_GE(out.report.linkage.advantage, 0.9) << "seed " << seed;
    // The catching probe is the cookie one; the others must stay clear
    // (a plant must not cross-contaminate the matrix).
    EXPECT_GE(out.report.linkage.cookie.advantage(), 0.9) << "seed " << seed;
    EXPECT_LE(out.report.linkage.exit_fingerprint.advantage(), 0.1) << "seed " << seed;
    EXPECT_LE(out.report.linkage.stain.advantage(), 0.1) << "seed " << seed;
  }
}

TEST_P(AdversarySweep, ReusedCircuitCaught) {
  for (int s = 0; s < kSweepSeeds; ++s) {
    uint64_t seed = kSeedBase + static_cast<uint64_t>(s);
    RunOutput out = RunExperiment(PlantedOptions(LeakPlant::kReusedCircuit), GetParam(), seed);
    EXPECT_GE(out.report.linkage.advantage, 0.9) << "seed " << seed;
    EXPECT_GE(out.report.linkage.exit_fingerprint.advantage(), 0.9) << "seed " << seed;
    EXPECT_LE(out.report.linkage.cookie.advantage(), 0.1) << "seed " << seed;
    EXPECT_LE(out.report.linkage.stain.advantage(), 0.1) << "seed " << seed;
  }
}

TEST_P(AdversarySweep, DisabledScrubCaught) {
  for (int s = 0; s < kSweepSeeds; ++s) {
    uint64_t seed = kSeedBase + static_cast<uint64_t>(s);
    RunOutput out = RunExperiment(PlantedOptions(LeakPlant::kDisabledScrub), GetParam(), seed);
    EXPECT_GE(out.report.linkage.advantage, 0.9) << "seed " << seed;
    EXPECT_GE(out.report.linkage.stain.advantage(), 0.9) << "seed " << seed;
    EXPECT_LE(out.report.linkage.cookie.advantage(), 0.1) << "seed " << seed;
    EXPECT_LE(out.report.linkage.exit_fingerprint.advantage(), 0.1) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, AdversarySweep, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

// --- Thread-count byte-identity ------------------------------------------

// The merged trace, the merged metrics dump, and the adversary.* family
// must not move a byte when only the thread count changes — compared as
// full strings, not digests, so a failure localizes.
TEST(AdversaryDeterminism, ThreadCountsProduceIdenticalBytes) {
  for (uint64_t seed : {7u, 21u, 404u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunOutput base = RunExperiment(PlantedOptions(LeakPlant::kNone), 1, seed);
    for (int threads : {2, 4}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      RunOutput other = RunExperiment(PlantedOptions(LeakPlant::kNone), threads, seed);
      EXPECT_EQ(base.trace_json, other.trace_json);
      EXPECT_EQ(base.metrics_json, other.metrics_json);
      EXPECT_EQ(base.adversary_json, other.adversary_json);
    }
  }
}

// A planted run must be deterministic too — the oracle thresholds are only
// trustworthy if the leak quantification itself is reproducible.
TEST(AdversaryDeterminism, PlantedRunsAreThreadStable) {
  RunOutput base = RunExperiment(PlantedOptions(LeakPlant::kSharedCookieJar), 1, 77);
  RunOutput other = RunExperiment(PlantedOptions(LeakPlant::kSharedCookieJar), 4, 77);
  EXPECT_EQ(base.adversary_json, other.adversary_json);
  EXPECT_EQ(base.trace_json, other.trace_json);
}

// --- Tap metadata-only contract ------------------------------------------

class RecordingTap : public LinkTap {
 public:
  void OnPacket(const Link& link, const PacketMetadata& meta) override {
    (void)link;
    packets.push_back(meta);
  }
  void OnFlowEnded(const Link& link, const FlowMetadata& meta) override {
    (void)link;
    flows.push_back(meta);
  }
  std::vector<PacketMetadata> packets;
  std::vector<FlowMetadata> flows;
};

// Two packets that differ ONLY in payload content (same size) must produce
// indistinguishable tap observations: the tap sees timing, sizes and
// endpoints — never bytes. This is the negative test behind the §2 threat
// model split between PacketCapture (defender's Wireshark, keeps payloads)
// and LinkTap (adversary vantage, must not).
TEST(AdversaryTap, ObservationsAreContentBlind) {
  auto observe = [](uint8_t fill) {
    Simulation sim(99);
    Link* link = sim.CreateLink("tapped", Millis(1), 1'000'000'000);
    RecordingTap tap;
    link->AttachTap(&tap);
    Packet packet;
    packet.src_port = 4000;
    packet.dst_port = 443;
    packet.protocol = IpProtocol::kTcp;
    packet.payload = Bytes(64, fill);
    packet.annotation = "Secret-" + std::to_string(fill);
    link->SendFromA(packet);
    sim.RunFor(Millis(10));
    return tap.packets;
  };
  std::vector<PacketMetadata> a = observe(0xAA);
  std::vector<PacketMetadata> b = observe(0xBB);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].time, b[0].time);
  EXPECT_EQ(a[0].wire_bytes, b[0].wire_bytes);
  EXPECT_EQ(a[0].src_port, b[0].src_port);
  EXPECT_EQ(a[0].dst_port, b[0].dst_port);
  EXPECT_EQ(a[0].protocol, b[0].protocol);
  EXPECT_EQ(a[0].from_a, b[0].from_a);
}

TEST(AdversaryTap, PassiveObserverCountsWithoutRetaining) {
  Simulation sim(5);
  Link* link = sim.CreateLink("uplink", Millis(1), 1'000'000'000);
  PassiveObserver observer(TapSite::kEntry, 0);
  link->AttachTap(&observer);
  Packet small;
  small.payload = Bytes(10, 1);
  Packet big;
  big.payload = Bytes(100, 2);
  link->SendFromA(small);
  link->SendFromB(big);
  sim.RunFor(Millis(10));
  EXPECT_EQ(observer.packets_seen(), 2u);
  EXPECT_EQ(observer.bytes_seen(), small.WireSize() + big.WireSize());
  // Packets are counted, not stored: only bulk flows become observations.
  EXPECT_TRUE(observer.flows().empty());
}

// The experiment's entry taps must actually sit on a live vantage: every
// host uplink carries traffic, and every recorded flow is size+timing only.
TEST(AdversaryTap, ExperimentVantagesSeeTraffic) {
  AdversaryOptions options;
  ShardedSimulation sharded(11, ShardPlan{kShards, 2});
  AdversaryExperiment experiment(sharded, options, 11);
  experiment.Run();
  for (int host = 0; host < experiment.host_count(); ++host) {
    const PassiveObserver& observer = experiment.entry_observer(host);
    EXPECT_GT(observer.packets_seen(), 0u) << "host " << host;
    EXPECT_FALSE(observer.flows().empty()) << "host " << host;
    for (const FlowObservation& flow : observer.flows()) {
      EXPECT_EQ(flow.site, TapSite::kEntry);
      EXPECT_GT(flow.wire_bytes, 0u);
      EXPECT_GE(flow.ended_at, flow.created_at);
    }
  }
}

// --- N=64 clean-churn anonymity floor -------------------------------------

std::string FormatFloorBaseline(const AdversaryReport& report) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"experiment\": \"adversary_floor\",\n"
                "  \"n\": 64,\n"
                "  \"generations\": 2,\n"
                "  \"workload\": \"mixed\",\n"
                "  \"seed\": 7,\n"
                "  \"nym_instances\": %llu,\n"
                "  \"entry_flows\": %llu,\n"
                "  \"exit_flows\": %llu,\n"
                "  \"advantage\": %.6f,\n"
                "  \"linkage_probability\": %.6f,\n"
                "  \"anonymity_min\": %.6f,\n"
                "  \"anonymity_mean\": %.6f,\n"
                "  \"flowcorr_accuracy\": %.6f\n"
                "}\n",
                static_cast<unsigned long long>(report.nym_instances),
                static_cast<unsigned long long>(report.entry_flows),
                static_cast<unsigned long long>(report.exit_flows),
                report.linkage.advantage, report.linkage.linkage_probability,
                report.anonymity.min_set, report.anonymity.mean_set,
                report.correlation.accuracy);
  return buf;
}

// The fleet-scale floor: a 64-nym clean fleet under churn must keep the
// intersection attacker's mean candidate set at half the fleet or better,
// and the whole report is pinned byte-for-byte in the baseline file —
// set NYMIX_UPDATE_BASELINES=1 and rerun to regenerate after an
// intentional behavior change (tools/regolden.sh does this too).
TEST(AdversaryFloor, CleanChurnAnonymityFloorMatchesBaseline) {
  AdversaryOptions options;
  options.nym_count = 64;
  RunOutput out = RunExperiment(options, 2, 7);

  EXPECT_LE(out.report.linkage.advantage, 0.1);
  EXPECT_GE(out.report.anonymity.mean_set, 32.0);
  EXPECT_EQ(out.report.nym_instances, 128u);  // 64 slots x 2 generations

  std::string rendered = FormatFloorBaseline(out.report);
  std::string path = std::string(NYMIX_BASELINE_DIR) + "/adversary_floor.json";
  // nymlint:allow(determinism-env): regeneration toggle for the checked-in baseline, never feeds simulation state
  if (std::getenv("NYMIX_UPDATE_BASELINES") != nullptr) {
    std::ofstream rewrite(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(rewrite.good()) << "cannot write " << path;
    rewrite << rendered;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing baseline " << path
                         << " — run with NYMIX_UPDATE_BASELINES=1 to generate";
  std::ostringstream pinned;
  pinned << in.rdbuf();
  EXPECT_EQ(pinned.str(), rendered)
      << "adversary floor moved; if intentional, rerun with "
         "NYMIX_UPDATE_BASELINES=1 and review the diff";
}

// --- Analyzer unit checks -------------------------------------------------

TEST(AdversaryAttacks, PairCountsAdvantageClamps) {
  PairCounts counts;
  counts.true_positive = 1;
  counts.false_negative = 9;   // TPR 0.1
  counts.false_positive = 50;  // FPR 0.5
  counts.true_negative = 50;
  EXPECT_DOUBLE_EQ(counts.advantage(), 0.0);  // worse than chance clamps to 0
}

TEST(AdversaryAttacks, ExitFingerprintNeedsCommonSites) {
  NymRecord a;
  a.host = 0;
  a.slot = 0;
  NymRecord b;
  b.host = 1;
  b.slot = 1;
  // Two sites in common, agreeing — below the min_common_sites=3 bar, so
  // the probe must refuse to link (coincidence control).
  a.exits = {{"alpha", 2}, {"beta", 1}};
  b.exits = {{"alpha", 2}, {"beta", 1}};
  LinkageSummary summary = LinkNyms({a, b}, /*min_common_sites=*/3);
  EXPECT_EQ(summary.exit_fingerprint.false_positive, 0u);
  // At bar 2 the same evidence links them.
  summary = LinkNyms({a, b}, /*min_common_sites=*/2);
  EXPECT_EQ(summary.exit_fingerprint.false_positive, 1u);
}

TEST(AdversaryAttacks, StainLinksOnlyNonEmptyMatches) {
  NymRecord a;
  a.host = 0;
  NymRecord b;
  b.host = 1;
  b.slot = 1;
  NymRecord c;
  c.host = 2;
  c.slot = 2;
  a.stain = "serial-x";
  b.stain = "serial-x";
  c.stain = "";  // scrubbed: must never link, even to another empty
  LinkageSummary summary = LinkNyms({a, b, c}, 3);
  EXPECT_EQ(summary.stain.false_positive, 1u);  // a-b, cross host
  EXPECT_EQ(summary.stain.true_positive, 0u);
}

}  // namespace
}  // namespace nymix
