#include <gtest/gtest.h>

#include "src/hv/host.h"

namespace nymix {
namespace {

std::shared_ptr<BaseImage> TestImage() {
  return BaseImage::CreateDistribution("nymix", 42, 64 * kMiB);
}

// ---------------------------------------------------------------- GuestMemory

TEST(GuestMemoryTest, StartsAllZero) {
  GuestMemory memory(384 * kMiB);
  EXPECT_EQ(memory.total_pages(), 384 * kMiB / kPageSize);
  EXPECT_EQ(memory.zero_pages(), memory.total_pages());
  EXPECT_EQ(memory.unique_pages(), 0u);
}

TEST(GuestMemoryTest, MapImagePagesSharedAcrossVms) {
  auto image = TestImage();
  GuestMemory a(64 * kMiB);
  GuestMemory b(64 * kMiB);
  a.MapImagePages(*image, 1000);
  b.MapImagePages(*image, 1000);
  EXPECT_EQ(a.image_pages(), 1000u);
  EXPECT_EQ(a.pages_by_content().size(), b.pages_by_content().size());
  // Identical content histograms -> fully mergeable by KSM.
  EXPECT_EQ(a.pages_by_content(), b.pages_by_content());
}

TEST(GuestMemoryTest, DirtyConsumesZeroThenImage) {
  auto image = TestImage();
  Prng prng(1);
  GuestMemory memory(4 * kMiB);  // 1024 pages
  memory.MapImagePages(*image, 200);
  EXPECT_EQ(memory.zero_pages(), 824u);
  memory.DirtyPages(824, prng);
  EXPECT_EQ(memory.zero_pages(), 0u);
  EXPECT_EQ(memory.image_pages(), 200u);
  memory.DirtyPages(100, prng);  // breaks COW on image pages
  EXPECT_EQ(memory.image_pages(), 100u);
  EXPECT_EQ(memory.unique_pages(), 924u);
  // Cannot dirty more than exists.
  memory.DirtyPages(10'000, prng);
  EXPECT_EQ(memory.unique_pages(), memory.total_pages());
}

TEST(GuestMemoryTest, WipeRestoresZeroState) {
  auto image = TestImage();
  Prng prng(1);
  GuestMemory memory(4 * kMiB);
  memory.MapImagePages(*image, 100);
  memory.DirtyPages(500, prng);
  memory.Wipe();
  EXPECT_EQ(memory.zero_pages(), memory.total_pages());
  EXPECT_EQ(memory.unique_pages(), 0u);
  EXPECT_EQ(memory.image_pages(), 0u);
}

// ---------------------------------------------------------------- KSM

TEST(KsmTest, MergesZeroAndImagePagesAcrossVms) {
  EventLoop loop;
  auto image = TestImage();
  GuestMemory a(4 * kMiB);
  GuestMemory b(4 * kMiB);
  a.MapImagePages(*image, 256);
  b.MapImagePages(*image, 256);
  KsmDaemon ksm(loop, [&] { return std::vector<const GuestMemory*>{&a, &b}; });
  KsmStats stats = ksm.ScanNow();
  // 256 image contents shared twice each, plus the zero pages of both VMs.
  EXPECT_EQ(stats.pages_shared, 256u + 1);
  EXPECT_EQ(stats.pages_sharing, 2 * 256u + 2 * (1024 - 256));
  EXPECT_EQ(stats.pages_saved(), stats.pages_sharing - stats.pages_shared);
}

TEST(KsmTest, UniquePagesNeverMerge) {
  EventLoop loop;
  Prng prng(1);
  GuestMemory a(4 * kMiB);
  GuestMemory b(4 * kMiB);
  a.DirtyPages(1024, prng);
  b.DirtyPages(1024, prng);
  KsmDaemon ksm(loop, [&] { return std::vector<const GuestMemory*>{&a, &b}; });
  EXPECT_EQ(ksm.ScanNow().pages_sharing, 0u);
}

TEST(KsmTest, PeriodicScanUpdatesStats) {
  EventLoop loop;
  auto image = TestImage();
  GuestMemory a(4 * kMiB);
  KsmDaemon ksm(loop, [&] { return std::vector<const GuestMemory*>{&a}; });
  ksm.Start(Seconds(2));
  loop.RunUntil(Seconds(1));
  uint64_t early = ksm.stats().pages_sharing;  // only zero pages (all merge)
  a.MapImagePages(*image, 512);
  a.MapImagePages(*image, 512);  // maps blocks 0..511 twice -> duplicates
  loop.RunUntil(Seconds(5));
  EXPECT_GE(ksm.stats().pages_sharing, early);
  ksm.Stop();
  EXPECT_FALSE(ksm.running());
}

TEST(KsmTest, RestartWhileRunningAdoptsNewCadenceImmediately) {
  EventLoop loop;
  GuestMemory a(4 * kMiB);
  KsmDaemon ksm(loop, [&] { return std::vector<const GuestMemory*>{&a}; });
  ksm.Start(Seconds(10));
  loop.RunUntil(Seconds(1));
  const uint64_t passes_before = ksm.passes();
  // Re-Start with a shorter interval: the pending 10 s tick must be
  // rescheduled, so the next pass lands 2 s from now, not 9 s out.
  ksm.Start(Seconds(2));
  loop.RunUntil(Seconds(4));
  EXPECT_EQ(ksm.passes(), passes_before + 1);
  // And the old cadence is fully replaced, not stacked: exactly one tick
  // per 2 s interval from the restart.
  loop.RunUntil(Seconds(10));
  EXPECT_EQ(ksm.passes(), passes_before + 4);  // ticks at 3, 5, 7, 9
  ksm.Stop();
}

TEST(KsmTest, StopCancelsThePendingTick) {
  EventLoop loop;
  GuestMemory a(4 * kMiB);
  KsmDaemon ksm(loop, [&] { return std::vector<const GuestMemory*>{&a}; });
  ksm.Start(Seconds(2));
  loop.RunUntil(Seconds(1));
  const uint64_t passes_at_stop = ksm.passes();
  ksm.Stop();
  EXPECT_FALSE(ksm.running());
  loop.RunUntil(Seconds(10));
  EXPECT_EQ(ksm.passes(), passes_at_stop);
  // Start after Stop works from a clean slate: an immediate pass, then
  // the periodic cadence.
  ksm.Start(Seconds(2));
  EXPECT_EQ(ksm.passes(), passes_at_stop + 1);
  loop.RunUntil(Seconds(15));
  EXPECT_EQ(ksm.passes(), passes_at_stop + 3);  // ticks at 12, 14
  ksm.Stop();
}

// ---------------------------------------------------------------- CpuScheduler

TEST(CpuSchedulerTest, SingleNativeTaskRunsAtFullSpeed) {
  EventLoop loop;
  CpuScheduler cpu(loop, 4, 0.20);
  SimTime finished = 0;
  cpu.Submit({CpuPhase::Compute(Seconds(10))}, /*virtualized=*/false,
             [&](SimTime t) { finished = t; });
  loop.RunUntilIdle();
  EXPECT_NEAR(ToSeconds(finished), 10.0, 0.001);
}

TEST(CpuSchedulerTest, VirtualizedTaskPaysOverhead) {
  EventLoop loop;
  CpuScheduler cpu(loop, 4, 0.20);
  SimTime finished = 0;
  cpu.Submit({CpuPhase::Compute(Seconds(10))}, /*virtualized=*/true,
             [&](SimTime t) { finished = t; });
  loop.RunUntilIdle();
  EXPECT_NEAR(ToSeconds(finished), 12.0, 0.001);
}

TEST(CpuSchedulerTest, FourTasksOnFourCoresNoSlowdown) {
  EventLoop loop;
  CpuScheduler cpu(loop, 4, 0.0);
  std::vector<double> times;
  for (int i = 0; i < 4; ++i) {
    cpu.Submit({CpuPhase::Compute(Seconds(5))}, false,
               [&](SimTime t) { times.push_back(ToSeconds(t)); });
  }
  loop.RunUntilIdle();
  for (double t : times) {
    EXPECT_NEAR(t, 5.0, 0.001);
  }
}

TEST(CpuSchedulerTest, EightTasksOnFourCoresHalfSpeed) {
  EventLoop loop;
  CpuScheduler cpu(loop, 4, 0.0);
  std::vector<double> times;
  for (int i = 0; i < 8; ++i) {
    cpu.Submit({CpuPhase::Compute(Seconds(5))}, false,
               [&](SimTime t) { times.push_back(ToSeconds(t)); });
  }
  loop.RunUntilIdle();
  ASSERT_EQ(times.size(), 8u);
  for (double t : times) {
    EXPECT_NEAR(t, 10.0, 0.001);
  }
}

TEST(CpuSchedulerTest, IdlePhasesOverlap) {
  EventLoop loop;
  CpuScheduler cpu(loop, 1, 0.0);
  // Two tasks alternating 1s compute / 1s idle on ONE core: perfect
  // interleaving finishes both in ~4s instead of the naive 6s.
  std::vector<double> times;
  for (int i = 0; i < 2; ++i) {
    cpu.Submit({CpuPhase::Compute(Seconds(1)), CpuPhase::Idle(Seconds(1)),
                CpuPhase::Compute(Seconds(1))},
               false, [&](SimTime t) { times.push_back(ToSeconds(t)); });
  }
  loop.RunUntilIdle();
  ASSERT_EQ(times.size(), 2u);
  double makespan = std::max(times[0], times[1]);
  EXPECT_LT(makespan, 6.0);
  EXPECT_GE(makespan, 4.0 - 0.01);
}

TEST(CpuSchedulerTest, CancelRemovesTask) {
  EventLoop loop;
  CpuScheduler cpu(loop, 1, 0.0);
  bool done = false;
  CpuTaskId id = cpu.Submit({CpuPhase::Compute(Seconds(10))}, false, [&](SimTime) { done = true; });
  loop.RunUntil(Seconds(1));
  EXPECT_TRUE(cpu.CancelTask(id));
  loop.RunUntilIdle();
  EXPECT_FALSE(done);
}

TEST(CpuSchedulerTest, EmptyTaskCompletesImmediately) {
  EventLoop loop;
  CpuScheduler cpu(loop, 1, 0.0);
  bool done = false;
  cpu.Submit({}, false, [&](SimTime) { done = true; });
  loop.RunUntilIdle();
  EXPECT_TRUE(done);
}

// ---------------------------------------------------------------- VirtualMachine

TEST(VmTest, BootTransitionsAndTiming) {
  Simulation sim(1);
  auto vm = VirtualMachine(sim, VmConfig::AnonVm("anon-1"), TestImage(), nullptr);
  EXPECT_EQ(vm.state(), VmState::kCreated);
  SimTime ready = 0;
  vm.Boot([&](SimTime t) { ready = t; });
  EXPECT_EQ(vm.state(), VmState::kBooting);
  sim.loop().RunUntilIdle();
  EXPECT_EQ(vm.state(), VmState::kRunning);
  EXPECT_NEAR(ToSeconds(ready), 10.0, 0.01);  // 0.8 + 4 + 5.2
  // Boot populated the page cache and dirtied heaps.
  EXPECT_GT(vm.memory().image_pages(), 0u);
  EXPECT_GT(vm.memory().unique_pages(), 0u);
}

TEST(VmTest, CommVmBootsFaster) {
  Simulation sim(1);
  auto vm = VirtualMachine(sim, VmConfig::CommVm("comm-1"), TestImage(), nullptr);
  SimTime ready = 0;
  vm.Boot([&](SimTime t) { ready = t; });
  sim.loop().RunUntilIdle();
  EXPECT_NEAR(ToSeconds(ready), 5.0, 0.01);
}

TEST(VmTest, PauseResumeShutdown) {
  Simulation sim(1);
  auto vm = VirtualMachine(sim, VmConfig::CommVm("comm-1"), TestImage(), nullptr);
  vm.Boot(nullptr);
  sim.loop().RunUntilIdle();
  vm.Pause();
  EXPECT_EQ(vm.state(), VmState::kPaused);
  vm.Resume();
  EXPECT_EQ(vm.state(), VmState::kRunning);
  ASSERT_TRUE(vm.disk().WriteFile("/tmp/state", Blob::FromString("x")).ok());
  vm.Shutdown();
  EXPECT_EQ(vm.state(), VmState::kStopped);
  // Memory wiped, but disk survives until DiscardDisk (for archiving).
  EXPECT_EQ(vm.memory().unique_pages(), 0u);
  EXPECT_TRUE(vm.disk().fs().Exists("/tmp/state"));
  vm.DiscardDisk();
  EXPECT_FALSE(vm.disk().fs().Exists("/tmp/state"));
}

TEST(VmTest, ShutdownDuringBootAborts) {
  Simulation sim(1);
  auto vm = VirtualMachine(sim, VmConfig::CommVm("comm-1"), TestImage(), nullptr);
  bool ready = false;
  vm.Boot([&](SimTime) { ready = true; });
  sim.RunFor(Seconds(1));
  vm.Shutdown();
  sim.loop().RunUntilIdle();
  EXPECT_FALSE(ready);
  EXPECT_EQ(vm.state(), VmState::kStopped);
}

TEST(VmTest, PacketsDroppedUnlessRunning) {
  Simulation sim(1);
  auto vm = VirtualMachine(sim, VmConfig::AnonVm("anon-1"), TestImage(), nullptr);
  Link* wire = sim.CreateLink("wire", Millis(1), 1'000'000'000);
  vm.AttachNic(wire, /*side_a=*/false);
  wire->SendFromA(Packet{});
  sim.loop().RunUntilIdle();
  EXPECT_EQ(vm.packets_received(), 0u);
  EXPECT_EQ(vm.packets_dropped_not_running(), 1u);

  vm.Boot(nullptr);
  sim.loop().RunUntilIdle();
  int handled = 0;
  vm.SetPacketHandler([&](const Packet&, Link&, bool) { ++handled; });
  wire->SendFromA(Packet{});
  sim.loop().RunUntilIdle();
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(vm.packets_received(), 1u);
}

TEST(VmTest, VirtFsShares) {
  Simulation sim(1);
  auto vm = VirtualMachine(sim, VmConfig::SaniVm("sani"), TestImage(), nullptr);
  auto share = std::make_shared<MemFs>();
  ASSERT_TRUE(vm.AttachShare("transfer", share).ok());
  EXPECT_FALSE(vm.AttachShare("transfer", share).ok());
  ASSERT_TRUE(share->WriteFile("/photo.jpg", Blob::FromString("img")).ok());
  auto got = vm.GetShare("transfer");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE((*got)->Exists("/photo.jpg"));
  EXPECT_TRUE(vm.DetachShare("transfer").ok());
  EXPECT_FALSE(vm.GetShare("transfer").ok());
}

TEST(VmTest, HomogeneousFingerprint) {
  Simulation sim(1);
  auto a = VirtualMachine(sim, VmConfig::AnonVm("a"), TestImage(), nullptr);
  auto b = VirtualMachine(sim, VmConfig::AnonVm("b"), TestImage(), nullptr);
  EXPECT_EQ(a.CpuModelString(), b.CpuModelString());
  EXPECT_EQ(a.ScreenResolution(), "1024x768");
  EXPECT_EQ(a.GuestMac(), b.GuestMac());
  EXPECT_EQ(a.VisibleCpuCount(), 1u);
}

// ---------------------------------------------------------------- HostMachine

TEST(HostTest, CreateAndDestroyVms) {
  Simulation sim(1);
  HostMachine host(sim, HostConfig{});
  auto image = TestImage();
  auto vm = host.CreateVm(VmConfig::AnonVm("anon-1"), image, nullptr);
  ASSERT_TRUE(vm.ok());
  EXPECT_EQ(host.vm_count(), 1u);
  EXPECT_TRUE(host.DestroyVm(*vm).ok());
  EXPECT_EQ(host.vm_count(), 0u);
  VirtualMachine* dangling = nullptr;
  EXPECT_FALSE(host.DestroyVm(dangling).ok());
}

TEST(HostTest, AdmissionControlOnRam) {
  Simulation sim(1);
  HostConfig config;
  config.ram_bytes = 2 * kGiB;
  HostMachine host(sim, config);
  auto image = TestImage();
  // Baseline 1.1 GiB + 512 MiB fits; the second one does not.
  ASSERT_TRUE(host.CreateVm(VmConfig::AnonVm("a"), image, nullptr).ok());
  auto second = host.CreateVm(VmConfig::AnonVm("b"), image, nullptr);
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
}

TEST(HostTest, MemoryAccountingWithKsm) {
  Simulation sim(1);
  HostMachine host(sim, HostConfig{});
  auto image = TestImage();
  EXPECT_EQ(host.UsedMemoryBytes(), host.config().baseline_bytes);
  auto a = host.CreateVm(VmConfig::AnonVm("a"), image, nullptr);
  auto b = host.CreateVm(VmConfig::AnonVm("b"), image, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  (*a)->Boot(nullptr);
  (*b)->Boot(nullptr);
  sim.loop().RunUntilIdle();
  uint64_t before_ksm = host.UsedMemoryBytes();
  EXPECT_EQ(before_ksm, host.config().baseline_bytes + 2 * 384 * kMiB);
  host.ksm().ScanNow();
  uint64_t after_ksm = host.UsedMemoryBytes();
  EXPECT_LT(after_ksm, before_ksm);
  EXPECT_GT(host.ksm().stats().pages_sharing, 0u);
  // Writable-disk bytes count against host RAM.
  ASSERT_TRUE((*a)->disk().WriteFile("/cache/item", Blob::Synthetic(10 * kMiB, 1)).ok());
  EXPECT_EQ(host.AllocatedMemoryBytes(),
            host.config().baseline_bytes + 2 * 384 * kMiB + 10 * kMiB);
}

TEST(HostTest, DhcpVisibleOnUplinkCapture) {
  Simulation sim(1);
  HostMachine host(sim, HostConfig{});
  PacketCapture capture;
  host.uplink()->AttachCapture(&capture);
  host.EmitDhcp();
  sim.loop().RunUntilIdle();
  EXPECT_EQ(capture.CountAnnotation("DHCP"), 2u);
  EXPECT_TRUE(capture.OnlyContains({"DHCP"}));
}

TEST(HostTest, VmUplinksRouteThroughHostNat) {
  Simulation sim(1);
  HostMachine host(sim, HostConfig{});
  PacketCapture capture;
  host.uplink()->AttachCapture(&capture);
  Link* vm_uplink = host.CreateVmUplink("comm-1-uplink");
  Packet packet;
  packet.src_ip = kGuestCommVmIp;
  packet.src_port = 9001;
  packet.dst_ip = Ipv4Address(203, 0, 113, 1);
  packet.dst_port = 443;
  packet.annotation = "Tor";
  vm_uplink->SendFromA(packet);
  sim.loop().RunUntilIdle();
  ASSERT_EQ(capture.size(), 1u);
  // The guest's private IP never appears on the physical uplink.
  EXPECT_EQ(capture.packets()[0].packet.src_ip, host.public_ip());
}

}  // namespace
}  // namespace nymix
