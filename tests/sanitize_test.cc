#include <gtest/gtest.h>

#include "src/sanitize/scrubber.h"

namespace nymix {
namespace {

// ---------------------------------------------------------------- EXIF

ExifData FullExif() {
  ExifData exif;
  exif.camera_make = "SamsungElectronics";
  exif.camera_model = "Galaxy S4";
  exif.body_serial_number = "RF1D63KW8BY";
  exif.datetime_original = "2014:05:01 21:14:03";
  exif.software = "CameraFirmware 4.4.2";
  exif.gps = GpsCoordinate{38.1234, 68.7742};  // a protest in Tyrannimen Square
  return exif;
}

TEST(ExifTest, RoundTripAllFields) {
  Bytes tiff = EncodeExif(FullExif());
  auto decoded = DecodeExif(tiff);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded->camera_make, "SamsungElectronics");
  EXPECT_EQ(*decoded->camera_model, "Galaxy S4");
  EXPECT_EQ(*decoded->body_serial_number, "RF1D63KW8BY");
  EXPECT_EQ(*decoded->datetime_original, "2014:05:01 21:14:03");
  EXPECT_EQ(*decoded->software, "CameraFirmware 4.4.2");
  ASSERT_TRUE(decoded->gps.has_value());
  EXPECT_NEAR(decoded->gps->latitude, 38.1234, 1e-4);
  EXPECT_NEAR(decoded->gps->longitude, 68.7742, 1e-4);
}

TEST(ExifTest, SouthWestCoordinates) {
  ExifData exif;
  exif.gps = GpsCoordinate{-33.8688, -151.2093 + 302.4186 * 0};  // Sydney-ish, west-negative
  exif.gps->longitude = -71.0;
  Bytes tiff = EncodeExif(exif);
  auto decoded = DecodeExif(tiff);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->gps.has_value());
  EXPECT_NEAR(decoded->gps->latitude, -33.8688, 1e-4);
  EXPECT_NEAR(decoded->gps->longitude, -71.0, 1e-4);
}

TEST(ExifTest, PartialFields) {
  ExifData exif;
  exif.camera_model = "X";
  Bytes tiff = EncodeExif(exif);
  auto decoded = DecodeExif(tiff);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded->camera_model, "X");
  EXPECT_FALSE(decoded->gps.has_value());
  EXPECT_FALSE(decoded->body_serial_number.has_value());
}

TEST(ExifTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeExif(BytesFromString("MM")).ok());
  EXPECT_FALSE(DecodeExif(BytesFromString("II*")).ok());
  Bytes tiff = EncodeExif(FullExif());
  tiff.resize(tiff.size() / 2);
  EXPECT_FALSE(DecodeExif(tiff).ok());
}

// ---------------------------------------------------------------- Image

TEST(ImageTest, GeneratedPhotoHasDetectableFaces) {
  std::vector<FaceRegion> truth = {{40, 40, 48, 48}, {140, 80, 56, 56}};
  Image photo = GeneratePhoto(256, 192, 7, truth);
  auto detected = DetectFaces(photo);
  ASSERT_GE(detected.size(), 1u);
  // Every ground-truth face overlaps at least one detection.
  for (const FaceRegion& face : truth) {
    bool found = false;
    for (const FaceRegion& region : detected) {
      found |= region.Overlaps(face);
    }
    EXPECT_TRUE(found) << "face at " << face.x << "," << face.y;
  }
}

TEST(ImageTest, PhotoWithoutFacesIsClean) {
  Image photo = GeneratePhoto(256, 192, 7, {});
  EXPECT_TRUE(DetectFaces(photo).empty());
}

TEST(ImageTest, BlurDefeatsFaceDetector) {
  std::vector<FaceRegion> truth = {{40, 40, 48, 48}};
  Image photo = GeneratePhoto(256, 192, 7, truth);
  ASSERT_FALSE(DetectFaces(photo).empty());
  for (const FaceRegion& face : DetectFaces(photo)) {
    BlurRegion(photo, face, 6);
  }
  EXPECT_TRUE(DetectFaces(photo).empty());
}

TEST(ImageTest, DownscaleDimensions) {
  Image photo = GeneratePhoto(256, 192, 7, {});
  Image small = Downscale(photo, 4);
  EXPECT_EQ(small.width, 64u);
  EXPECT_EQ(small.height, 48u);
  EXPECT_EQ(small.rgb.size(), 64u * 48 * 3);
}

TEST(ImageTest, WatermarkRoundTrip) {
  Image photo = GeneratePhoto(256, 192, 7, {});
  ASSERT_TRUE(EmbedWatermark(photo, 0xdeadbeef).ok());
  auto payload = DetectWatermark(photo);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, 0xdeadbeefu);
}

TEST(ImageTest, NoFalseWatermarkOnCleanImage) {
  Image photo = GeneratePhoto(256, 192, 7, {});
  EXPECT_FALSE(DetectWatermark(photo).ok());
}

TEST(ImageTest, NoiseDestroysWatermark) {
  Image photo = GeneratePhoto(256, 192, 7, {});
  ASSERT_TRUE(EmbedWatermark(photo, 0x12345678).ok());
  Prng prng(3);
  AddNoise(photo, 3, prng);
  EXPECT_FALSE(DetectWatermark(photo).ok());
}

TEST(ImageTest, DownscaleDestroysWatermark) {
  Image photo = GeneratePhoto(512, 384, 7, {});
  ASSERT_TRUE(EmbedWatermark(photo, 0x9abcdef0).ok());
  Image small = Downscale(photo, 2);
  EXPECT_FALSE(DetectWatermark(small).ok());
}

TEST(ImageTest, WatermarkNeedsEnoughPixels) {
  Image tiny = Image::Solid(16, 16, 0, 0, 0);
  EXPECT_FALSE(EmbedWatermark(tiny, 1).ok());
}

// ---------------------------------------------------------------- JPEG

TEST(JpegTest, RoundTripWithExifAndComment) {
  JpegFile jpeg;
  jpeg.image = GeneratePhoto(64, 48, 1, {});
  jpeg.exif = FullExif();
  jpeg.comment = "uploaded from my phone";
  Bytes wire = EncodeJpeg(jpeg);
  EXPECT_TRUE(LooksLikeJpeg(wire));
  auto decoded = DecodeJpeg(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->image.rgb, jpeg.image.rgb);
  ASSERT_TRUE(decoded->exif.has_value());
  EXPECT_EQ(*decoded->exif->body_serial_number, "RF1D63KW8BY");
  ASSERT_TRUE(decoded->exif->gps.has_value());
  EXPECT_EQ(*decoded->comment, "uploaded from my phone");
}

TEST(JpegTest, ByteStuffingHandlesFfPixels) {
  JpegFile jpeg;
  jpeg.image = Image::Solid(8, 8, 0xFF, 0xFF, 0xFF);  // all-0xFF payload
  Bytes wire = EncodeJpeg(jpeg);
  auto decoded = DecodeJpeg(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->image.rgb, jpeg.image.rgb);
}

TEST(JpegTest, SkipsUnknownSegments) {
  // Hand-build a JPEG with an APP0/JFIF segment our encoder never writes;
  // the decoder must skip it and still find the scan data.
  JpegFile jpeg;
  jpeg.image = Image::Solid(4, 4, 10, 20, 30);
  Bytes wire = EncodeJpeg(jpeg);
  Bytes with_app0 = {0xFF, 0xD8, 0xFF, 0xE0, 0x00, 0x07, 'J', 'F', 'I', 'F', 0x00};
  with_app0.insert(with_app0.end(), wire.begin() + 2, wire.end());
  auto decoded = DecodeJpeg(with_app0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->image.rgb, jpeg.image.rgb);
}

TEST(JpegTest, OnePixelImage) {
  JpegFile jpeg;
  jpeg.image = Image::Solid(1, 1, 255, 0, 127);
  auto decoded = DecodeJpeg(EncodeJpeg(jpeg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->image.width, 1u);
  EXPECT_EQ(decoded->image.rgb, (Bytes{255, 0, 127}));
}

TEST(JpegTest, RejectsCorruption) {
  EXPECT_FALSE(DecodeJpeg(BytesFromString("notjpeg")).ok());
  JpegFile jpeg;
  jpeg.image = GeneratePhoto(16, 16, 1, {});
  Bytes wire = EncodeJpeg(jpeg);
  Bytes truncated(wire.begin(), wire.end() - 4);
  EXPECT_FALSE(DecodeJpeg(truncated).ok());
}

// ---------------------------------------------------------------- PNG

TEST(PngTest, Crc32KnownVector) {
  // CRC32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32(BytesFromString("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32({}), 0u);
}

TEST(PngTest, RoundTripWithMetadata) {
  PngFile png;
  png.image = GeneratePhoto(32, 32, 2, {});
  png.text_entries["Author"] = "Bob D. Dissident";
  png.text_entries["Comment"] = "protest flyer";
  png.exif = FullExif();
  Bytes wire = EncodePng(png);
  EXPECT_TRUE(LooksLikePng(wire));
  auto decoded = DecodePng(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->image.rgb, png.image.rgb);
  EXPECT_EQ(decoded->text_entries.at("Author"), "Bob D. Dissident");
  ASSERT_TRUE(decoded->exif.has_value());
  EXPECT_NEAR(decoded->exif->gps->latitude, 38.1234, 1e-4);
}

TEST(PngTest, CrcDetectsCorruption) {
  PngFile png;
  png.image = GeneratePhoto(32, 32, 2, {});
  Bytes wire = EncodePng(png);
  wire[40] ^= 0x01;  // flip a bit inside a chunk
  EXPECT_FALSE(DecodePng(wire).ok());
}

TEST(PngTest, LaterDuplicateTextChunkWins) {
  PngFile png;
  png.image = GeneratePhoto(16, 16, 2, {});
  png.text_entries["Comment"] = "first";
  Bytes wire = EncodePng(png);
  // Decode-encode round trip with a modified comment keeps the map form.
  auto decoded = DecodePng(wire);
  ASSERT_TRUE(decoded.ok());
  decoded->text_entries["Comment"] = "second";
  auto again = DecodePng(EncodePng(*decoded));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->text_entries.at("Comment"), "second");
}

TEST(PngTest, EmptyImageRejectedOnDimensionMismatch) {
  PngFile png;
  png.image = GeneratePhoto(8, 8, 1, {});
  Bytes wire = EncodePng(png);
  // Corrupt IHDR width (and fix its CRC? no — CRC catches it first).
  wire[16] ^= 0x01;
  EXPECT_FALSE(DecodePng(wire).ok());
}

TEST(PngTest, RejectsTruncation) {
  PngFile png;
  png.image = GeneratePhoto(32, 32, 2, {});
  Bytes wire = EncodePng(png);
  wire.resize(wire.size() - 10);
  EXPECT_FALSE(DecodePng(wire).ok());
}

// ---------------------------------------------------------------- PDF

PdfFile ProtestPdf() {
  PdfFile pdf;
  pdf.info.title = "Meeting notes";
  pdf.info.author = "bob@tyrannistan-times.ty";
  pdf.info.creator = "LibreOffice Writer";
  pdf.info.producer = "LibreOffice 4.2";
  pdf.info.creation_date = "D:20140501211403";
  pdf.pages = {"Protest at the square, 9pm.", "Bring candles."};
  pdf.hidden_objects = {"tracked-change: originally said 8pm, author bob"};
  return pdf;
}

TEST(PdfTest, RoundTrip) {
  Bytes wire = EncodePdf(ProtestPdf());
  EXPECT_TRUE(LooksLikePdf(wire));
  auto decoded = DecodePdf(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded->info.author, "bob@tyrannistan-times.ty");
  ASSERT_EQ(decoded->pages.size(), 2u);
  EXPECT_EQ(decoded->pages[0], "Protest at the square, 9pm.");
  ASSERT_EQ(decoded->hidden_objects.size(), 1u);
}

TEST(PdfTest, NoInfoDictionary) {
  PdfFile pdf;
  pdf.pages = {"just text"};
  auto decoded = DecodePdf(EncodePdf(pdf));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->info.Empty());
  EXPECT_TRUE(decoded->hidden_objects.empty());
}

TEST(PdfTest, ParenEscaping) {
  PdfFile pdf;
  pdf.info.title = "notes (draft)";
  pdf.pages = {"x"};
  auto decoded = DecodePdf(EncodePdf(pdf));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded->info.title, "notes [draft]");
}

TEST(PdfTest, RasterizeDropsEverythingButVisibleText) {
  PdfFile pdf = ProtestPdf();
  auto pages = RasterizePdf(pdf);
  ASSERT_EQ(pages.size(), 2u);
  // Identical visible text with different hidden payloads yields identical
  // rasters: nothing but the rendering survives.
  PdfFile other = pdf;
  other.hidden_objects = {"completely different secret"};
  other.info.author = "someone else";
  auto other_pages = RasterizePdf(other);
  ASSERT_EQ(other_pages.size(), 2u);
  EXPECT_EQ(pages[0].rgb, other_pages[0].rgb);
  // Different visible text yields a different raster.
  PdfFile changed = pdf;
  changed.pages[0] = "Protest at the square, 8pm.";
  EXPECT_NE(RasterizePdf(changed)[0].rgb, pages[0].rgb);
}

// ---------------------------------------------------------------- DOC

DocFile MemoDoc() {
  DocFile doc;
  doc.properties.creator = "Bob Dissident";
  doc.properties.company = "Tyrannistan Times";
  doc.properties.last_modified_by = "bob";
  doc.properties.revision = 17;
  doc.properties.editing_minutes = 340;
  doc.paragraphs = {"Glorious Leader opens new dam.", "Attendance mandatory."};
  doc.hidden_runs = {"deleted: this is all propaganda"};
  return doc;
}

TEST(DocTest, RoundTrip) {
  Bytes wire = EncodeDoc(MemoDoc());
  EXPECT_TRUE(LooksLikeDoc(wire));
  auto decoded = DecodeDoc(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded->properties.creator, "Bob Dissident");
  EXPECT_EQ(decoded->properties.revision, 17u);
  ASSERT_EQ(decoded->paragraphs.size(), 2u);
  ASSERT_EQ(decoded->hidden_runs.size(), 1u);
}

TEST(PdfTest, MissingTrailerTolerated) {
  // A PDF without a trailer (no /Info) still yields its pages.
  PdfFile pdf;
  pdf.pages = {"content"};
  Bytes wire = EncodePdf(pdf);
  std::string text = StringFromBytes(wire);
  size_t trailer = text.find("trailer");
  text = text.substr(0, trailer) + "%%EOF\n";
  auto decoded = DecodePdf(BytesFromString(text));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->pages.size(), 1u);
  EXPECT_TRUE(decoded->info.Empty());
}

TEST(PdfTest, MissingEofRejected) {
  Bytes wire = EncodePdf(ProtestPdf());
  std::string text = StringFromBytes(wire);
  text = text.substr(0, text.find("%%EOF"));
  EXPECT_FALSE(DecodePdf(BytesFromString(text)).ok());
}

TEST(DocTest, EmptyDocumentRoundTrips) {
  DocFile doc;
  auto decoded = DecodeDoc(EncodeDoc(doc));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->paragraphs.empty());
  EXPECT_TRUE(decoded->properties.Empty());
  EXPECT_TRUE(RasterizeDoc(*decoded).empty());
}

TEST(DocTest, RejectsCorruption) {
  Bytes wire = EncodeDoc(MemoDoc());
  wire.resize(wire.size() - 3);
  EXPECT_FALSE(DecodeDoc(wire).ok());
  EXPECT_FALSE(DecodeDoc(BytesFromString("XXXX")).ok());
}

// ---------------------------------------------------------------- Scrubber

TEST(ScrubberTest, DetectsFileKinds) {
  JpegFile jpeg;
  jpeg.image = GeneratePhoto(16, 16, 1, {});
  EXPECT_EQ(DetectFileKind(EncodeJpeg(jpeg)), FileKind::kJpeg);
  PngFile png;
  png.image = GeneratePhoto(16, 16, 1, {});
  EXPECT_EQ(DetectFileKind(EncodePng(png)), FileKind::kPng);
  EXPECT_EQ(DetectFileKind(EncodePdf(ProtestPdf())), FileKind::kPdf);
  EXPECT_EQ(DetectFileKind(EncodeDoc(MemoDoc())), FileKind::kDoc);
  EXPECT_EQ(DetectFileKind(BytesFromString("plain text")), FileKind::kUnknown);
}

TEST(ScrubberTest, AnalyzeFindsJpegRisks) {
  JpegFile jpeg;
  jpeg.image = GeneratePhoto(256, 192, 7, {{40, 40, 48, 48}});
  jpeg.exif = FullExif();
  jpeg.comment = "with love from Bob";
  auto report = AnalyzeFile(EncodeJpeg(jpeg));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Has(RiskType::kGpsLocation));
  EXPECT_TRUE(report->Has(RiskType::kDeviceSerial));
  EXPECT_TRUE(report->Has(RiskType::kCameraModel));
  EXPECT_TRUE(report->Has(RiskType::kTimestamp));
  EXPECT_TRUE(report->Has(RiskType::kComment));
  EXPECT_TRUE(report->Has(RiskType::kFace));
  EXPECT_FALSE(report->clean());
  EXPECT_NE(report->Summary().find("gps-location"), std::string::npos);
}

TEST(ScrubberTest, MetadataOnlyScrubRemovesExifButNotFaces) {
  JpegFile jpeg;
  jpeg.image = GeneratePhoto(256, 192, 7, {{40, 40, 48, 48}});
  jpeg.exif = FullExif();
  Prng prng(1);
  ScrubOptions options;
  options.level = ParanoiaLevel::kMetadataOnly;
  auto result = ScrubFile(EncodeJpeg(jpeg), options, prng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->before.Has(RiskType::kGpsLocation));
  EXPECT_FALSE(result->after.Has(RiskType::kGpsLocation));
  EXPECT_FALSE(result->after.Has(RiskType::kDeviceSerial));
  EXPECT_TRUE(result->after.Has(RiskType::kFace));  // faces untouched
  // Pixels preserved exactly.
  auto scrubbed = DecodeJpeg(result->data);
  ASSERT_TRUE(scrubbed.ok());
  EXPECT_EQ(scrubbed->image.rgb, jpeg.image.rgb);
}

TEST(ScrubberTest, VisualScrubRemovesFacesAndWatermark) {
  JpegFile jpeg;
  jpeg.image = GeneratePhoto(256, 192, 7, {{40, 40, 48, 48}});
  ASSERT_TRUE(EmbedWatermark(jpeg.image, 0xfeedface).ok());
  jpeg.exif = FullExif();
  Prng prng(1);
  ScrubOptions options;
  options.level = ParanoiaLevel::kMetadataAndVisual;
  auto result = ScrubFile(EncodeJpeg(jpeg), options, prng);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->after.Has(RiskType::kFace));
  EXPECT_FALSE(result->after.Has(RiskType::kGpsLocation));
  auto scrubbed = DecodeJpeg(result->data);
  ASSERT_TRUE(scrubbed.ok());
  EXPECT_FALSE(DetectWatermark(scrubbed->image).ok());
  EXPECT_GE(result->actions.size(), 3u);
}

TEST(ScrubberTest, PngScrubClearsTextChunks) {
  PngFile png;
  png.image = GeneratePhoto(64, 64, 3, {});
  png.text_entries["Author"] = "alice";
  png.exif = FullExif();
  Prng prng(1);
  auto result = ScrubFile(EncodePng(png), ScrubOptions{}, prng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->before.Has(RiskType::kAuthorIdentity));
  EXPECT_TRUE(result->after.clean());
}

TEST(ScrubberTest, PdfMetadataScrubLeavesHiddenObjects) {
  Prng prng(1);
  ScrubOptions options;
  options.level = ParanoiaLevel::kMetadataOnly;
  auto result = ScrubFile(EncodePdf(ProtestPdf()), options, prng);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->after.Has(RiskType::kAuthorIdentity));
  // The documented gap: hidden objects survive metadata-only scrubbing.
  EXPECT_TRUE(result->after.Has(RiskType::kHiddenContent));
}

TEST(ScrubberTest, PdfRasterizeRemovesHiddenObjects) {
  Prng prng(1);
  ScrubOptions options;
  options.level = ParanoiaLevel::kRasterize;
  auto result = ScrubFile(EncodePdf(ProtestPdf()), options, prng);
  ASSERT_TRUE(result.ok());
  auto pages = UnbundleRasterPages(result->data);
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(pages->size(), 2u);
  // The bundle contains no trace of author or hidden payload bytes.
  std::string rendered = StringFromBytes(result->data);
  EXPECT_EQ(rendered.find("bob@tyrannistan-times.ty"), std::string::npos);
  EXPECT_EQ(rendered.find("tracked-change"), std::string::npos);
}

TEST(ScrubberTest, DocScrubAndRasterize) {
  Prng prng(1);
  auto metadata_result = ScrubFile(EncodeDoc(MemoDoc()), ScrubOptions{}, prng);
  ASSERT_TRUE(metadata_result.ok());
  EXPECT_TRUE(metadata_result->after.clean());
  auto decoded = DecodeDoc(metadata_result->data);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->hidden_runs.empty());
  EXPECT_EQ(decoded->paragraphs.size(), 2u);  // visible text preserved

  ScrubOptions raster;
  raster.level = ParanoiaLevel::kRasterize;
  auto raster_result = ScrubFile(EncodeDoc(MemoDoc()), raster, prng);
  ASSERT_TRUE(raster_result.ok());
  auto pages = UnbundleRasterPages(raster_result->data);
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(pages->size(), 2u);
}

TEST(ScrubberTest, UnknownFilesRejected) {
  Prng prng(1);
  EXPECT_FALSE(AnalyzeFile(BytesFromString("mystery")).ok());
  EXPECT_FALSE(ScrubFile(BytesFromString("mystery"), ScrubOptions{}, prng).ok());
}

TEST(ScrubberTest, RasterBundleRoundTrip) {
  std::vector<Image> pages = {GeneratePhoto(32, 16, 1, {}), GeneratePhoto(16, 32, 2, {})};
  Bytes bundle = BundleRasterPages(pages);
  auto restored = UnbundleRasterPages(bundle);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 2u);
  EXPECT_EQ((*restored)[0].rgb, pages[0].rgb);
  EXPECT_EQ((*restored)[1].width, 16u);
  EXPECT_FALSE(UnbundleRasterPages(BytesFromString("junk")).ok());
}

}  // namespace
}  // namespace nymix
