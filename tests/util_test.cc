#include <gtest/gtest.h>

#include "src/util/blob.h"
#include "src/util/bytes.h"
#include "src/util/event_loop.h"
#include "src/util/prng.h"
#include "src/util/status.h"

namespace nymix {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("missing nym");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing nym");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(PermissionDeniedError("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(UnauthenticatedError("x").code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(InvalidArgumentError("bad"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int value) {
  if (value % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return value / 2;
}

Result<int> Quarter(int value) {
  NYMIX_ASSIGN_OR_RETURN(int half, Half(value));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto err = Quarter(6);  // 6/2 = 3, odd
  EXPECT_FALSE(err.ok());
}

// ---------------------------------------------------------------- Bytes

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abff");
  auto decoded = HexDecode(hex);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST(BytesTest, HexDecodeRejectsBadInput) {
  EXPECT_FALSE(HexDecode("abc").ok());
  EXPECT_FALSE(HexDecode("zz").ok());
  EXPECT_TRUE(HexDecode("ABCD").ok());
}

TEST(BytesTest, LittleEndianRoundTrip) {
  Bytes buf;
  AppendU16(buf, 0x1234);
  AppendU32(buf, 0xdeadbeef);
  AppendU64(buf, 0x0102030405060708ULL);
  size_t offset = 0;
  EXPECT_EQ(*ReadU16(buf, offset), 0x1234);
  EXPECT_EQ(*ReadU32(buf, offset), 0xdeadbeef);
  EXPECT_EQ(*ReadU64(buf, offset), 0x0102030405060708ULL);
  EXPECT_EQ(offset, buf.size());
}

TEST(BytesTest, ReadersFailOnShortBuffers) {
  Bytes buf = {0x01};
  size_t offset = 0;
  EXPECT_FALSE(ReadU16(buf, offset).ok());
  EXPECT_FALSE(ReadU32(buf, offset).ok());
  EXPECT_FALSE(ReadU64(buf, offset).ok());
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  Bytes buf;
  AppendLengthPrefixed(buf, BytesFromString("hello"));
  AppendLengthPrefixed(buf, Bytes{});
  size_t offset = 0;
  EXPECT_EQ(StringFromBytes(*ReadLengthPrefixed(buf, offset)), "hello");
  EXPECT_TRUE(ReadLengthPrefixed(buf, offset)->empty());
}

TEST(BytesTest, LengthPrefixedDetectsTruncation) {
  Bytes buf;
  AppendLengthPrefixed(buf, BytesFromString("hello"));
  buf.resize(buf.size() - 2);
  size_t offset = 0;
  EXPECT_FALSE(ReadLengthPrefixed(buf, offset).ok());
}

TEST(BytesTest, ConstantTimeEquals) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  EXPECT_TRUE(ConstantTimeEquals(a, b));
  EXPECT_FALSE(ConstantTimeEquals(a, c));
  EXPECT_FALSE(ConstantTimeEquals(a, ByteSpan(a.data(), 2)));
}

TEST(BytesTest, FormatSize) {
  EXPECT_EQ(FormatSize(512), "512 B");
  EXPECT_EQ(FormatSize(2 * kMiB), "2.00 MiB");
  EXPECT_EQ(FormatSize(3 * kGiB), "3.00 GiB");
}

// ---------------------------------------------------------------- Prng

TEST(PrngTest, DeterministicForSeed) {
  Prng a(7);
  Prng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(PrngTest, NextBelowIsInRange) {
  Prng prng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(prng.NextBelow(17), 17u);
  }
}

TEST(PrngTest, NextInRangeInclusive) {
  Prng prng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = prng.NextInRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng prng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = prng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, GaussianRoughMoments) {
  Prng prng(6);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = prng.NextGaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(PrngTest, ForkIsIndependentAndLabelSensitive) {
  Prng base1(9);
  Prng base2(9);
  Prng fork_a = base1.Fork("a");
  Prng fork_b = base2.Fork("b");
  EXPECT_NE(fork_a.NextU64(), fork_b.NextU64());
  Prng base3(9);
  Prng fork_a2 = base3.Fork("a");
  Prng base4(9);
  Prng fork_a3 = base4.Fork("a");
  EXPECT_EQ(fork_a2.NextU64(), fork_a3.NextU64());
}

TEST(PrngTest, NextBytesLength) {
  Prng prng(10);
  EXPECT_EQ(prng.NextBytes(0).size(), 0u);
  EXPECT_EQ(prng.NextBytes(13).size(), 13u);
}

TEST(HashTest, Fnv1aMatchesKnownValue) {
  // FNV-1a 64 of empty string is the offset basis.
  EXPECT_EQ(Fnv1a64(std::string_view("")), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a64(std::string_view("a")), Fnv1a64(std::string_view("b")));
}

// ---------------------------------------------------------------- EventLoop

TEST(EventLoopTest, RunsInTimestampOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAfter(Millis(30), [&] { order.push_back(3); });
  loop.ScheduleAfter(Millis(10), [&] { order.push_back(1); });
  loop.ScheduleAfter(Millis(20), [&] { order.push_back(2); });
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), Millis(30));
}

TEST(EventLoopTest, EqualTimesRunFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAfter(Millis(5), [&order, i] { order.push_back(i); });
  }
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, NestedScheduling) {
  EventLoop loop;
  std::vector<SimTime> times;
  loop.ScheduleAfter(Millis(10), [&] {
    times.push_back(loop.now());
    loop.ScheduleAfter(Millis(10), [&] { times.push_back(loop.now()); });
  });
  loop.RunUntilIdle();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], Millis(10));
  EXPECT_EQ(times[1], Millis(20));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  uint64_t id = loop.ScheduleAfter(Millis(10), [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));  // second cancel is a no-op
  loop.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  loop.ScheduleAfter(Millis(10), [&] { ++count; });
  loop.ScheduleAfter(Millis(50), [&] { ++count; });
  loop.RunUntil(Millis(20));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now(), Millis(20));
  loop.RunUntilIdle();
  EXPECT_EQ(count, 2);
}

TEST(EventLoopTest, RunUntilConditionStopsEarly) {
  EventLoop loop;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    loop.ScheduleAfter(Millis(i), [&] { ++count; });
  }
  EXPECT_TRUE(loop.RunUntilCondition([&] { return count >= 3; }));
  EXPECT_EQ(count, 3);
}

TEST(EventLoopTest, RunUntilConditionReturnsFalseWhenExhausted) {
  EventLoop loop;
  loop.ScheduleAfter(Millis(1), [] {});
  EXPECT_FALSE(loop.RunUntilCondition([] { return false; }));
}

TEST(EventLoopTest, CancelAfterRunReturnsFalse) {
  EventLoop loop;
  uint64_t id = loop.ScheduleAfter(Millis(1), [] {});
  loop.RunUntilIdle();
  EXPECT_FALSE(loop.Cancel(id));
}

TEST(EventLoopTest, CancelTwiceReturnsFalseAndStaysSafe) {
  EventLoop loop;
  uint64_t id = loop.ScheduleAfter(Millis(1), [] {});
  uint64_t other = loop.ScheduleAfter(Millis(2), [] {});
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));
  EXPECT_EQ(loop.RunUntilIdle(), 1u);  // `other` still runs exactly once
  EXPECT_FALSE(loop.Cancel(other));
}

TEST(EventLoopTest, PendingEventsExcludesCancelledTombstones) {
  EventLoop loop;
  uint64_t a = loop.ScheduleAfter(Millis(1), [] {});
  loop.ScheduleAfter(Millis(2), [] {});
  uint64_t c = loop.ScheduleAfter(Millis(3), [] {});
  EXPECT_EQ(loop.pending_events(), 3u);
  // Cancelled entries linger in the heap until lazily popped, but must not
  // count as pending.
  loop.Cancel(a);
  loop.Cancel(c);
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.RunUntilIdle();
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(EventLoopTest, RunUntilIgnoresCancelledFrontEvent) {
  EventLoop loop;
  int ran = 0;
  uint64_t front = loop.ScheduleAfter(Millis(5), [&] { ++ran; });
  loop.ScheduleAfter(Millis(50), [&] { ++ran; });
  loop.Cancel(front);
  // The cancelled tombstone at the top of the heap must not trick RunUntil
  // into executing the Millis(50) event before the deadline.
  EXPECT_EQ(loop.RunUntil(Millis(20)), 0u);
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(loop.now(), Millis(20));
  loop.RunUntilIdle();
  EXPECT_EQ(ran, 1);
}

// ---------------------------------------------------------------- Blob

TEST(BlobTest, RealBlobRoundTrip) {
  Blob blob = Blob::FromString("hello world");
  EXPECT_FALSE(blob.is_synthetic());
  EXPECT_EQ(blob.size(), 11u);
  EXPECT_EQ(StringFromBytes(blob.Materialize()), "hello world");
}

TEST(BlobTest, SyntheticBlobDeterministic) {
  Blob a = Blob::Synthetic(1000, 42);
  Blob b = Blob::Synthetic(1000, 42);
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
  EXPECT_EQ(a.Materialize(), b.Materialize());
  EXPECT_EQ(a.Materialize().size(), 1000u);
}

TEST(BlobTest, SyntheticBlobsDifferBySeedAndSize) {
  EXPECT_NE(Blob::Synthetic(1000, 1).ContentHash(), Blob::Synthetic(1000, 2).ContentHash());
  EXPECT_NE(Blob::Synthetic(1000, 1).ContentHash(), Blob::Synthetic(1001, 1).ContentHash());
}

TEST(BlobTest, CompressedEstimateScalesWithEntropy) {
  Blob compressible = Blob::Synthetic(1 * kMiB, 7, 0.1);
  Blob random = Blob::Synthetic(1 * kMiB, 7, 1.0);
  EXPECT_LT(compressible.CompressedSizeEstimate(), random.CompressedSizeEstimate());
  EXPECT_LE(random.CompressedSizeEstimate(), 1 * kMiB);
}

TEST(BlobTest, RealBlobEstimateTracksContent) {
  Bytes zeros(100000, 0);
  Blob z = Blob::FromBytes(zeros);
  Prng prng(11);
  Blob r = Blob::FromBytes(prng.NextBytes(100000));
  EXPECT_LT(z.CompressedSizeEstimate(), r.CompressedSizeEstimate());
}

TEST(SimClockTest, Conversions) {
  EXPECT_EQ(Seconds(2), Micros(2000000));
  EXPECT_EQ(Millis(1500), SecondsF(1.5));
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(250)), 250.0);
}

}  // namespace
}  // namespace nymix
