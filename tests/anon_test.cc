#include <gtest/gtest.h>

#include "src/anon/chain.h"
#include "src/anon/dissent.h"
#include "src/anon/incognito.h"
#include "src/anon/sweet.h"
#include "src/anon/tor.h"
#include "src/net/nat.h"

namespace nymix {
namespace {

// A harness standing in for the CommVM + host wiring: one vm uplink behind
// a host NAT, the 10 Mbit DeterLab-style uplink, and a destination server.
struct AnonHarness {
  explicit AnonHarness(uint64_t seed = 1)
      : sim(seed),
        uplink(sim.CreateLink("host-uplink", Millis(40), 10'000'000)),
        public_ip(sim.internet().AllocatePublicIp()),
        router("host-router", uplink, public_ip),
        vm_uplink(sim.CreateLink("vm-uplink", Micros(100), 1'000'000'000)) {
    sim.internet().AttachUplink(uplink);
    router.AttachInside(vm_uplink);
    server_link = sim.CreateLink("server", Millis(5), 100'000'000);
    server_ip = sim.internet().RegisterHost("files.example.com", &server, server_link);
  }

  ClientAttachment Attachment() {
    ClientAttachment attachment;
    attachment.sim = &sim;
    attachment.vm_uplink = vm_uplink;
    attachment.client_links = {vm_uplink, uplink};
    attachment.host_public_ip = public_ip;
    return attachment;
  }

  // Wire an anonymizer as the guest side of the vm uplink.
  void AttachGuest(Anonymizer* anonymizer) {
    adapter = std::make_unique<AnonymizerPortAdapter>(anonymizer);
    vm_uplink->AttachA(adapter.get());
  }

  class NullServer : public InternetHost {
   public:
    void OnDatagram(const Packet&, const std::function<void(Packet)>&) override {}
  };

  Simulation sim;
  Link* uplink;
  Ipv4Address public_ip;
  NatGateway router;
  Link* vm_uplink;
  NullServer server;
  Link* server_link;
  Ipv4Address server_ip;
  std::unique_ptr<AnonymizerPortAdapter> adapter;
};

// ---------------------------------------------------------------- Tor

TEST(TorNetworkTest, RelayFlagsAndDirectory) {
  Simulation sim(1);
  TorNetwork network(sim);
  EXPECT_EQ(network.relays().size(), 12u);
  EXPECT_EQ(network.GuardIndices().size(), 4u);
  EXPECT_EQ(network.ExitIndices().size(), 4u);
  EXPECT_TRUE(sim.internet().Resolve("relay0.tor.net").ok());
  EXPECT_TRUE(sim.internet().FindHost(network.directory_ip()) != nullptr);
  auto index = network.IndexOfRelay("relay3");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*index, 3u);
  EXPECT_FALSE(network.IndexOfRelay("nope").ok());
}

TEST(TorClientTest, BootstrapBuildsCircuit) {
  AnonHarness harness;
  TorNetwork network(harness.sim);
  TorClient client(harness.Attachment(), network, /*seed=*/7);
  harness.AttachGuest(&client);
  SimTime ready_at = 0;
  client.Start([&](Result<SimTime> t) { ready_at = *t; });
  harness.sim.loop().RunUntilIdle();
  EXPECT_TRUE(client.ready());
  EXPECT_EQ(client.circuits_built(), 1);
  ASSERT_TRUE(client.entry_guard_index().has_value());
  EXPECT_TRUE(network.relays()[*client.entry_guard_index()].is_guard);
  ASSERT_TRUE(client.exit_index().has_value());
  EXPECT_TRUE(network.relays()[*client.exit_index()].is_exit);
  // Fresh bootstrap downloads ~8 MiB over 10 Mbit/s plus processing and
  // three handshake RTTs: several seconds, well over five.
  EXPECT_GT(ToSeconds(ready_at), 5.0);
  EXPECT_LT(ToSeconds(ready_at), 25.0);
}

TEST(TorClientTest, WarmBootstrapMuchFaster) {
  AnonHarness harness;
  TorNetwork network(harness.sim);

  TorClient cold(harness.Attachment(), network, 7);
  harness.AttachGuest(&cold);
  SimTime cold_ready = 0;
  cold.Start([&](Result<SimTime> t) { cold_ready = *t; });
  harness.sim.loop().RunUntilIdle();

  // Persist state into a CommVM filesystem, restore into a new client.
  MemFs state;
  ASSERT_TRUE(cold.SaveState(state).ok());
  TorClient warm(harness.Attachment(), network, 8);
  ASSERT_TRUE(warm.RestoreState(state).ok());
  EXPECT_TRUE(warm.has_cached_consensus());
  harness.AttachGuest(&warm);
  SimTime start = harness.sim.now();
  SimTime warm_ready = 0;
  warm.Start([&](Result<SimTime> t) { warm_ready = *t; });
  harness.sim.loop().RunUntilIdle();
  EXPECT_LT(ToSeconds(warm_ready - start), 0.6 * ToSeconds(cold_ready));
  // Restored client reuses the persisted guard (§3.5).
  EXPECT_EQ(*warm.entry_guard_index(), *cold.entry_guard_index());
}

TEST(TorClientTest, SeededGuardIsDeterministic) {
  AnonHarness harness;
  TorNetwork network(harness.sim);
  TorClient a(harness.Attachment(), network, 1);
  TorClient b(harness.Attachment(), network, 2);
  a.SeedGuardSelection(0xfeedULL);
  b.SeedGuardSelection(0xfeedULL);
  harness.AttachGuest(&a);
  a.Start(nullptr);
  harness.sim.loop().RunUntilIdle();
  harness.AttachGuest(&b);
  b.Start(nullptr);
  harness.sim.loop().RunUntilIdle();
  ASSERT_TRUE(a.entry_guard_index().has_value());
  EXPECT_EQ(*a.entry_guard_index(), *b.entry_guard_index());
}

TEST(TorClientTest, FetchPaysCellOverheadAndExitIdentity) {
  AnonHarness harness;
  TorNetwork network(harness.sim);
  TorClient client(harness.Attachment(), network, 7);
  harness.AttachGuest(&client);
  client.Start(nullptr);
  harness.sim.loop().RunUntilIdle();

  SimTime start = harness.sim.now();
  Result<FetchReceipt> receipt = NotFoundError("pending");
  client.Fetch("files.example.com", 1000, 5'000'000, [&](Result<FetchReceipt> r) {
    receipt = std::move(r);
  });
  harness.sim.loop().RunUntilIdle();
  ASSERT_TRUE(receipt.ok());
  // ~5 MB * 1.12 at 10 Mbit/s ≈ 4.5 s (plus RTTs).
  double elapsed = ToSeconds(receipt->completed_at - start);
  double ideal = 5'000'000.0 * 8 / 10'000'000;
  EXPECT_GT(elapsed, ideal * 1.08);
  EXPECT_LT(elapsed, ideal * 1.25);
  // The destination sees the stream's exit relay, not the user.
  EXPECT_EQ(receipt->observed_source,
            network.relays()[client.ExitIndexForDestination("files.example.com")].ip);
  EXPECT_TRUE(
      network.relays()[client.ExitIndexForDestination("files.example.com")].is_exit);
  EXPECT_NE(receipt->observed_source, harness.public_ip);
}

TEST(TorClientTest, OnionForwardingBlindsLaterHops) {
  AnonHarness harness;
  TorNetwork network(harness.sim);
  TorClient client(harness.Attachment(), network, 7);
  harness.AttachGuest(&client);
  client.Start(nullptr);
  harness.sim.loop().RunUntilIdle();
  ASSERT_TRUE(client.ready());

  size_t guard = *client.entry_guard_index();
  // Identify the middle hop: the relay (other than guard/exit) that saw
  // traffic.
  TorRelay& guard_relay = network.relay(guard);
  // Guard heard from the client's NAT'd address — never the guest IP.
  EXPECT_EQ(guard_relay.sources_seen().count(kGuestCommVmIp), 0u);
  EXPECT_GT(guard_relay.cells_forwarded(), 0u);

  Ipv4Address guard_ip = network.relays()[guard].ip;
  bool checked_later_hop = false;
  for (size_t i = 0; i < network.relays().size(); ++i) {
    if (i == guard) {
      continue;
    }
    const auto& sources = network.relay(i).sources_seen();
    if (sources.empty()) {
      continue;
    }
    checked_later_hop = true;
    // Later hops only ever hear from other relays: never the client's NAT
    // address, never the guest address.
    for (const Ipv4Address& source : sources) {
      bool is_relay_ip = false;
      for (const auto& info : network.relays()) {
        is_relay_ip |= info.ip == source;
      }
      EXPECT_TRUE(is_relay_ip) << source.ToString();
    }
    (void)guard_ip;
  }
  EXPECT_TRUE(checked_later_hop);
}

TEST(TorClientTest, StreamIsolationPinsExitPerDestination) {
  AnonHarness harness;
  TorNetwork network(harness.sim);
  TorClient client(harness.Attachment(), network, 7);
  harness.AttachGuest(&client);
  client.Start(nullptr);
  harness.sim.loop().RunUntilIdle();
  size_t exit_a = client.ExitIndexForDestination("a.example.com");
  size_t exit_b = client.ExitIndexForDestination("b.example.com");
  // Stable per destination...
  EXPECT_EQ(client.ExitIndexForDestination("a.example.com"), exit_a);
  EXPECT_EQ(client.ExitIndexForDestination("b.example.com"), exit_b);
  EXPECT_EQ(client.isolated_destinations(), 2u);
  // ...and NEWNYM severs all bindings.
  client.NewIdentity(nullptr);
  harness.sim.loop().RunUntilIdle();
  EXPECT_EQ(client.isolated_destinations(), 0u);
}

TEST(TorClientTest, FetchBeforeBootstrapFails) {
  AnonHarness harness;
  TorNetwork network(harness.sim);
  TorClient client(harness.Attachment(), network, 7);
  Result<FetchReceipt> receipt = OkStatus().ok() ? Result<FetchReceipt>(FetchReceipt{})
                                                 : Result<FetchReceipt>(InternalError(""));
  bool called = false;
  client.Fetch("files.example.com", 1, 1, [&](Result<FetchReceipt> r) {
    called = true;
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  });
  EXPECT_TRUE(called);
}

TEST(TorClientTest, UnknownHostIsNxdomain) {
  AnonHarness harness;
  TorNetwork network(harness.sim);
  TorClient client(harness.Attachment(), network, 7);
  harness.AttachGuest(&client);
  client.Start(nullptr);
  harness.sim.loop().RunUntilIdle();
  bool called = false;
  client.Fetch("missing.example.com", 1, 1, [&](Result<FetchReceipt> r) {
    called = true;
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  });
  EXPECT_TRUE(called);
}

TEST(TorClientTest, NewIdentityRebuildsCircuit) {
  AnonHarness harness;
  TorNetwork network(harness.sim);
  TorClient client(harness.Attachment(), network, 7);
  harness.AttachGuest(&client);
  client.Start(nullptr);
  harness.sim.loop().RunUntilIdle();
  size_t guard_before = *client.entry_guard_index();
  client.NewIdentity(nullptr);
  harness.sim.loop().RunUntilIdle();
  EXPECT_EQ(client.circuits_built(), 2);
  // Guards persist across NEWNYM; only middle/exit rotate.
  EXPECT_EQ(*client.entry_guard_index(), guard_before);
  EXPECT_TRUE(client.ready());
}

TEST(TorClientTest, ControlCellsVisibleOnUplinkAsTor) {
  AnonHarness harness;
  TorNetwork network(harness.sim);
  PacketCapture capture;
  harness.uplink->AttachCapture(&capture);
  TorClient client(harness.Attachment(), network, 7);
  harness.AttachGuest(&client);
  client.Start(nullptr);
  harness.sim.loop().RunUntilIdle();
  EXPECT_GT(capture.CountAnnotation("Tor"), 0u);
  EXPECT_TRUE(capture.OnlyContains({"Tor"}));
  // No packet on the uplink ever carries the guest's private address.
  for (const auto& captured : capture.packets()) {
    EXPECT_NE(captured.packet.src_ip, kGuestCommVmIp);
  }
}

// ---------------------------------------------------------------- Incognito

TEST(IncognitoTest, FastButRevealsIdentity) {
  AnonHarness harness;
  IncognitoVpn vpn(harness.Attachment());
  SimTime ready_at = 0;
  vpn.Start([&](Result<SimTime> t) { ready_at = *t; });
  harness.sim.loop().RunUntilIdle();
  EXPECT_LT(ToSeconds(ready_at), 1.0);
  EXPECT_FALSE(vpn.ProtectsNetworkIdentity());
  EXPECT_DOUBLE_EQ(vpn.OverheadFactor(), 1.0);

  Result<FetchReceipt> receipt = InternalError("pending");
  vpn.Fetch("files.example.com", 0, 1'000'000, [&](Result<FetchReceipt> r) {
    receipt = std::move(r);
  });
  harness.sim.loop().RunUntilIdle();
  ASSERT_TRUE(receipt.ok());
  // The destination sees the user's real public address.
  EXPECT_EQ(receipt->observed_source, harness.public_ip);
}

// ---------------------------------------------------------------- Dissent

TEST(DissentTest, JoinAssignsSlotAndFetchWorks) {
  AnonHarness harness;
  DissentServers servers(harness.sim);
  DissentClient client(harness.Attachment(), servers, 9);
  harness.AttachGuest(&client);
  SimTime joined_at = 0;
  client.Start([&](Result<SimTime> t) { joined_at = *t; });
  harness.sim.loop().RunUntilIdle();
  EXPECT_TRUE(client.ready());
  ASSERT_TRUE(client.slot().has_value());
  EXPECT_LT(*client.slot(), servers.config().group_size);
  EXPECT_EQ(servers.members_joined(), 1u);
  EXPECT_GT(ToSeconds(joined_at), 1.0);  // key ceremony dominates

  SimTime start = harness.sim.now();
  Result<FetchReceipt> receipt = InternalError("pending");
  client.Fetch("files.example.com", 0, 1'000'000, [&](Result<FetchReceipt> r) {
    receipt = std::move(r);
  });
  harness.sim.loop().RunUntilIdle();
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt->observed_source, servers.front_ip());
  EXPECT_GT(client.rounds_used(), 0u);
  // DC-net pipe: 100 Mbit / 16 members = 6.25 Mbit, x2 ciphertext overhead
  // -> ~2.6 s for 1 MB; far slower than incognito, slower than Tor.
  EXPECT_GT(ToSeconds(receipt->completed_at - start), 2.0);
}

TEST(DissentTest, PostAnonymousMessageThroughRealRound) {
  AnonHarness harness;
  DissentServers servers(harness.sim);
  DissentClient client(harness.Attachment(), servers, 9);
  harness.AttachGuest(&client);
  client.Start(nullptr);
  harness.sim.loop().RunUntilIdle();
  ASSERT_TRUE(client.ready());
  ASSERT_TRUE(client.member_index().has_value());

  SimTime start = harness.sim.now();
  Result<Bytes> mixed = InternalError("pending");
  bool done = false;
  client.PostAnonymousMessage(BytesFromString("meet at the square"),
                              [&](Result<Bytes> r) {
                                mixed = std::move(r);
                                done = true;
                              });
  harness.sim.RunUntil([&] { return done; });
  ASSERT_TRUE(mixed.ok());
  // The message came back out of a genuinely-combined DC-net round.
  EXPECT_EQ(StringFromBytes(*mixed), "meet at the square");
  // One round of batching latency was paid.
  EXPECT_GE(harness.sim.now() - start, servers.config().round_interval);
  // Oversized messages are rejected before transmission.
  bool rejected = false;
  client.PostAnonymousMessage(Bytes(4096, 0), [&](Result<Bytes> r) {
    EXPECT_FALSE(r.ok());
    rejected = true;
  });
  EXPECT_TRUE(rejected);
}

TEST(DissentTest, SlowerThanTorForSameTransfer) {
  AnonHarness harness;
  TorNetwork tor_network(harness.sim);
  DissentServers servers(harness.sim);

  TorClient tor(harness.Attachment(), tor_network, 1);
  harness.AttachGuest(&tor);
  tor.Start(nullptr);
  harness.sim.loop().RunUntilIdle();
  SimTime t0 = harness.sim.now();
  SimTime tor_done = 0;
  tor.Fetch("files.example.com", 0, 2'000'000,
            [&](Result<FetchReceipt> r) { tor_done = r->completed_at; });
  harness.sim.loop().RunUntilIdle();
  double tor_elapsed = ToSeconds(tor_done - t0);

  DissentClient dissent(harness.Attachment(), servers, 2);
  harness.AttachGuest(&dissent);
  dissent.Start(nullptr);
  harness.sim.loop().RunUntilIdle();
  SimTime t1 = harness.sim.now();
  SimTime dissent_done = 0;
  dissent.Fetch("files.example.com", 0, 2'000'000,
                [&](Result<FetchReceipt> r) { dissent_done = r->completed_at; });
  harness.sim.loop().RunUntilIdle();
  double dissent_elapsed = ToSeconds(dissent_done - t1);
  EXPECT_GT(dissent_elapsed, tor_elapsed * 1.5);
}

// ---------------------------------------------------------------- SWEET

TEST(SweetTest, HighLatencyTunnel) {
  AnonHarness harness;
  SweetTunnel sweet(harness.Attachment(), /*instance_id=*/1);
  sweet.Start(nullptr);
  harness.sim.loop().RunUntilIdle();
  EXPECT_TRUE(sweet.ready());
  SimTime start = harness.sim.now();
  Result<FetchReceipt> receipt = InternalError("pending");
  sweet.Fetch("files.example.com", 0, 100'000, [&](Result<FetchReceipt> r) {
    receipt = std::move(r);
  });
  harness.sim.loop().RunUntilIdle();
  ASSERT_TRUE(receipt.ok());
  // Mail batching latency dominates small transfers: > 3 s for 100 KB.
  EXPECT_GT(ToSeconds(receipt->completed_at - start), 3.0);
  EXPECT_EQ(receipt->observed_source, sweet.mail_gateway_ip());
  EXPECT_TRUE(sweet.ProtectsNetworkIdentity());
}

// ---------------------------------------------------------------- Chained

TEST(ChainTest, TorOverDissentComposition) {
  AnonHarness harness;
  TorNetwork tor_network(harness.sim);
  DissentServers servers(harness.sim);
  auto inner = std::make_unique<DissentClient>(harness.Attachment(), servers, 3);
  auto outer = std::make_unique<TorClient>(harness.Attachment(), tor_network, 4);
  DissentClient* inner_ptr = inner.get();
  TorClient* outer_ptr = outer.get();
  ChainedAnonymizer chain(std::move(inner), std::move(outer));
  harness.AttachGuest(&chain);

  SimTime ready_at = 0;
  chain.Start([&](Result<SimTime> t) { ready_at = *t; });
  harness.sim.loop().RunUntilIdle();
  EXPECT_TRUE(chain.ready());
  EXPECT_TRUE(inner_ptr->ready());
  EXPECT_TRUE(outer_ptr->ready());
  EXPECT_GT(chain.OverheadFactor(), 2.2);  // 2.0 x 1.12

  Result<FetchReceipt> receipt = InternalError("pending");
  chain.Fetch("files.example.com", 0, 1'000'000, [&](Result<FetchReceipt> r) {
    receipt = std::move(r);
  });
  harness.sim.loop().RunUntilIdle();
  ASSERT_TRUE(receipt.ok());
  // Exit identity comes from the outer (Tor) stage's per-stream exit.
  EXPECT_EQ(
      receipt->observed_source,
      tor_network.relays()[outer_ptr->ExitIndexForDestination("files.example.com")].ip);
  EXPECT_TRUE(chain.ProtectsNetworkIdentity());
}

TEST(AnonymizerTest, KindNames) {
  EXPECT_EQ(AnonymizerKindName(AnonymizerKind::kTor), "Tor");
  EXPECT_EQ(AnonymizerKindName(AnonymizerKind::kDissent), "Dissent");
  EXPECT_EQ(AnonymizerKindName(AnonymizerKind::kIncognito), "Incognito");
  EXPECT_EQ(AnonymizerKindName(AnonymizerKind::kSweet), "SWEET");
  EXPECT_EQ(AnonymizerKindName(AnonymizerKind::kChained), "Chained");
}

}  // namespace
}  // namespace nymix
