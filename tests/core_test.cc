#include <gtest/gtest.h>

#include "src/core/installed_os.h"
#include "src/core/metrics.h"
#include "src/core/sanivm.h"
#include "src/core/validation.h"

namespace nymix {
namespace {

struct CoreRig {
  explicit CoreRig(uint64_t seed = 1)
      : sim(seed),
        host(sim, HostConfig{}),
        tor(sim),
        dissent(sim),
        image(BaseImage::CreateDistribution("nymix", 42, 64 * kMiB)),
        manager(host, image, &tor, &dissent),
        cloud(sim, "drop.example.com"),
        sites(sim, PaperWebsiteProfiles()) {}

  // Synchronous wrappers over the async manager API.
  Nym* CreateNymOrDie(const std::string& name, NymManager::CreateOptions options = {},
                      NymStartupReport* report_out = nullptr) {
    Nym* created = nullptr;
    bool done = false;
    manager.CreateNym(name, options, [&](Result<Nym*> nym, NymStartupReport report) {
      NYMIX_CHECK_MSG(nym.ok(), nym.status().ToString().c_str());
      created = *nym;
      if (report_out != nullptr) {
        *report_out = report;
      }
      done = true;
    });
    sim.RunUntil([&] { return done; });
    return created;
  }

  Result<SimTime> VisitAndWait(Nym* nym, Website& site) {
    Result<SimTime> result = InternalError("pending");
    bool done = false;
    nym->browser()->Visit(site, [&](Result<SimTime> r) {
      result = std::move(r);
      done = true;
    });
    sim.RunUntil([&] { return done; });
    return result;
  }

  Result<SaveReceipt> SaveToCloud(Nym* nym, const std::string& account,
                                  const std::string& account_password,
                                  const std::string& archive_password) {
    Result<SaveReceipt> result = InternalError("pending");
    bool done = false;
    manager.SaveNymToCloud(*nym, cloud, account, account_password, archive_password,
                           [&](Result<SaveReceipt> r) {
      result = std::move(r);
      done = true;
    });
    sim.RunUntil([&] { return done; });
    return result;
  }

  struct LoadOutcome {
    Result<Nym*> nym = InternalError("pending");
    NymStartupReport report;
  };
  LoadOutcome LoadFromCloud(const std::string& name, const std::string& account,
                            const std::string& account_password,
                            const std::string& archive_password,
                            NymManager::CreateOptions options = {}) {
    LoadOutcome outcome;
    bool done = false;
    manager.LoadNymFromCloud(name, cloud, account, account_password, archive_password,
                             options, [&](Result<Nym*> nym, NymStartupReport report) {
                               outcome.nym = std::move(nym);
                               outcome.report = report;
                               done = true;
                             });
    sim.RunUntil([&] { return done; });
    return outcome;
  }

  Simulation sim;
  HostMachine host;
  TorNetwork tor;
  DissentServers dissent;
  std::shared_ptr<BaseImage> image;
  NymManager manager;
  CloudService cloud;
  WebsiteDirectory sites;
};

// ---------------------------------------------------------------- Lifecycle

TEST(NymManagerTest, CreateNymBootsBothVmsAndAnonymizer) {
  CoreRig rig;
  NymStartupReport report;
  Nym* nym = rig.CreateNymOrDie("alice-news", {}, &report);
  ASSERT_NE(nym, nullptr);
  EXPECT_EQ(nym->anon_vm()->state(), VmState::kRunning);
  EXPECT_EQ(nym->comm_vm()->state(), VmState::kRunning);
  EXPECT_TRUE(nym->anonymizer()->ready());
  EXPECT_NE(nym->browser(), nullptr);
  // AnonVM boot (10s) dominates the parallel CommVM boot (5s).
  EXPECT_NEAR(ToSeconds(report.boot_vm), 10.0, 0.2);
  // Fresh Tor bootstrap takes several seconds (cold directory).
  EXPECT_GT(ToSeconds(report.start_anonymizer), 5.0);
  EXPECT_EQ(report.ephemeral_nym, 0);
  // Abstract headline: "loads within 15 to 25 seconds".
  EXPECT_GT(ToSeconds(report.Total()), 15.0);
  EXPECT_LT(ToSeconds(report.Total()), 30.0);
  EXPECT_EQ(rig.manager.nyms().size(), 1u);
  EXPECT_EQ(rig.manager.FindNym("alice-news"), nym);
}

TEST(NymManagerTest, DuplicateNameRejected) {
  CoreRig rig;
  rig.CreateNymOrDie("alice");
  bool done = false;
  rig.manager.CreateNym("alice", {}, [&](Result<Nym*> nym, NymStartupReport) {
    EXPECT_EQ(nym.status().code(), StatusCode::kAlreadyExists);
    done = true;
  });
  rig.sim.RunUntil([&] { return done; });
}

TEST(NymManagerTest, TerminateWipesEverything) {
  CoreRig rig;
  Nym* nym = rig.CreateNymOrDie("throwaway");
  ASSERT_TRUE(rig.VisitAndWait(nym, rig.sites.ByName("BBC")).ok());
  uint64_t used_with_nym = rig.host.UsedMemoryBytes();
  EXPECT_GT(used_with_nym, rig.host.config().baseline_bytes + 400 * kMiB);

  ASSERT_TRUE(rig.manager.TerminateNym(nym).ok());
  EXPECT_EQ(rig.manager.nyms().size(), 0u);
  EXPECT_EQ(rig.host.vm_count(), 0u);
  rig.host.ksm().ScanNow();
  // All nym memory returned: amnesia.
  EXPECT_EQ(rig.host.UsedMemoryBytes(), rig.host.config().baseline_bytes);
  EXPECT_FALSE(rig.manager.TerminateNym(nym).ok());
}

TEST(NymManagerTest, NymboxCostsRoughly600MiB) {
  // Abstract: "Nymix consumes 600 MB per nymbox".
  CoreRig rig;
  uint64_t before = rig.host.ReservedMemoryBytes();
  rig.CreateNymOrDie("cost-check");
  uint64_t per_nymbox = rig.host.ReservedMemoryBytes() - before;
  EXPECT_GE(per_nymbox, 500 * kMiB);
  EXPECT_LE(per_nymbox, 700 * kMiB);
}

TEST(NymManagerTest, HomogeneousFingerprintsAcrossNyms) {
  CoreRig rig;
  Nym* a = rig.CreateNymOrDie("nym-a");
  Nym* b = rig.CreateNymOrDie("nym-b");
  EXPECT_TRUE(IndistinguishableFingerprints(*a->anon_vm(), *b->anon_vm()));
  EXPECT_EQ(FingerprintOf(*a->anon_vm()).resolution, "1024x768");
}

TEST(NymManagerTest, TamperedBaseImageRefused) {
  CoreRig rig;
  rig.image->TamperBlock(3, 999);
  bool done = false;
  rig.manager.CreateNym("victim", {}, [&](Result<Nym*> nym, NymStartupReport) {
    EXPECT_EQ(nym.status().code(), StatusCode::kFailedPrecondition);
    done = true;
  });
  rig.sim.RunUntil([&] { return done; });
  EXPECT_EQ(rig.manager.nyms().size(), 0u);
}

TEST(NymManagerTest, ConfigLayersDifferentiateRoles) {
  // §3.4: one shared base image; a per-role configuration layer masks
  // /etc/rc.local and the network configuration. All three VMs read the
  // same base /etc/hostname underneath.
  CoreRig rig;
  Nym* nym = rig.CreateNymOrDie("roles");
  auto anon_rc = nym->anon_vm()->disk().fs().ReadFile("/etc/rc.local");
  auto comm_rc = nym->comm_vm()->disk().fs().ReadFile("/etc/rc.local");
  ASSERT_TRUE(anon_rc.ok() && comm_rc.ok());
  std::string anon_text = StringFromBytes(anon_rc->Materialize());
  std::string comm_text = StringFromBytes(comm_rc->Materialize());
  EXPECT_NE(anon_text, comm_text);
  EXPECT_NE(anon_text.find("chromium"), std::string::npos);
  EXPECT_NE(comm_text.find("tor"), std::string::npos);
  // Network config differs too: the AnonVM has only the wire.
  std::string anon_net = StringFromBytes(
      nym->anon_vm()->disk().fs().ReadFile("/etc/network/interfaces")->Materialize());
  std::string comm_net = StringFromBytes(
      nym->comm_vm()->disk().fs().ReadFile("/etc/network/interfaces")->Materialize());
  EXPECT_EQ(anon_net.find("eth1"), std::string::npos);
  EXPECT_NE(comm_net.find("eth1"), std::string::npos);
  // Same base image below both.
  EXPECT_EQ(StringFromBytes(
                nym->anon_vm()->disk().fs().ReadFile("/etc/hostname")->Materialize()),
            StringFromBytes(
                nym->comm_vm()->disk().fs().ReadFile("/etc/hostname")->Materialize()));
  // A CommVM configured for Dissent gets a different startup script.
  NymManager::CreateOptions dissent;
  dissent.anonymizer = AnonymizerKind::kDissent;
  Nym* dissent_nym = rig.CreateNymOrDie("dissent-roles", dissent);
  std::string dissent_rc = StringFromBytes(
      dissent_nym->comm_vm()->disk().fs().ReadFile("/etc/rc.local")->Materialize());
  EXPECT_NE(dissent_rc.find("dissent"), std::string::npos);
  EXPECT_EQ(dissent_rc.find("/usr/bin/tor"), std::string::npos);
}

TEST(NymManagerTest, AnonymizerChoices) {
  CoreRig rig;
  NymManager::CreateOptions incognito;
  incognito.anonymizer = AnonymizerKind::kIncognito;
  EXPECT_EQ(rig.CreateNymOrDie("quick", incognito)->anonymizer()->kind(),
            AnonymizerKind::kIncognito);
  NymManager::CreateOptions dissent;
  dissent.anonymizer = AnonymizerKind::kDissent;
  EXPECT_EQ(rig.CreateNymOrDie("paranoid", dissent)->anonymizer()->kind(),
            AnonymizerKind::kDissent);
  NymManager::CreateOptions chained;
  chained.anonymizer = AnonymizerKind::kChained;
  Nym* best = rig.CreateNymOrDie("best-of-both", chained);
  EXPECT_EQ(best->anonymizer()->kind(), AnonymizerKind::kChained);
  EXPECT_GT(best->anonymizer()->OverheadFactor(), 2.0);
}

// ---------------------------------------------------------------- Unlinkability

TEST(NymManagerTest, ParallelNymsUnlinkableAtTracker) {
  CoreRig rig;
  Nym* work = rig.CreateNymOrDie("work");
  Nym* blog = rig.CreateNymOrDie("blog");
  Website& twitter = rig.sites.ByName("Twitter");
  ASSERT_TRUE(rig.VisitAndWait(work, twitter).ok());
  ASSERT_TRUE(rig.VisitAndWait(blog, twitter).ok());
  // Separate cookies: no shared client-side state.
  EXPECT_EQ(twitter.DistinctCookies(), 2u);
  // Separate anonymizer instances: independent circuits; both identities
  // are relay exits, not the user.
  for (const auto& record : twitter.tracker_log()) {
    EXPECT_NE(record.observed_source, rig.host.public_ip());
  }
}

TEST(NymManagerTest, LeakProbesGetNoResponse) {
  CoreRig rig;
  Nym* a = rig.CreateNymOrDie("probe-a");
  Nym* b = rig.CreateNymOrDie("probe-b");
  LeakProbeResult result = ProbeAnonVmIsolation(rig.sim, rig.host, *a, b);
  EXPECT_EQ(result.probes_sent, 18u);
  EXPECT_EQ(result.responses_received, 0u);
  EXPECT_EQ(result.dropped_by_commvm, result.probes_sent);
}

TEST(NymManagerTest, UplinkCaptureShowsOnlyDhcpAndAnonymizer) {
  CoreRig rig;
  PacketCapture capture;
  rig.host.uplink()->AttachCapture(&capture);
  rig.host.EmitDhcp();
  Nym* nym = rig.CreateNymOrDie("capture-check");
  ASSERT_TRUE(rig.VisitAndWait(nym, rig.sites.ByName("BBC")).ok());
  (void)ProbeAnonVmIsolation(rig.sim, rig.host, *nym, nullptr);
  CaptureAudit audit = AuditUplinkCapture(capture);
  EXPECT_TRUE(audit.only_dhcp_and_anonymizers) << "unexpected traffic classes";
  EXPECT_TRUE(audit.no_private_sources);
  EXPECT_GT(audit.histogram["Tor"], 0u);
  EXPECT_EQ(audit.histogram["Probe"], 0u);  // probes never reached the uplink
}

// ---------------------------------------------------------------- Quasi-persistence

TEST(NymManagerTest, CloudSaveRestoreRoundTrip) {
  CoreRig rig;
  ASSERT_TRUE(rig.cloud.CreateAccount("pseudo-user", "cloudpw").ok());
  Nym* nym = rig.CreateNymOrDie("twitter-nym");
  Website& twitter = rig.sites.ByName("Twitter");
  bool logged_in = false;
  nym->browser()->Login(twitter, "bob_blogger", "sitepw",
                        [&](Result<SimTime> r) { logged_in = r.ok(); });
  rig.sim.RunUntil([&] { return logged_in; });
  ASSERT_TRUE(rig.VisitAndWait(nym, twitter).ok());
  std::string cookie = nym->browser()->CookieFor("twitter.com");
  auto guard_before = static_cast<TorClient*>(nym->anonymizer())->entry_guard_index();

  auto receipt = rig.SaveToCloud(nym, "pseudo-user", "cloudpw", "nympw");
  ASSERT_TRUE(receipt.ok());
  EXPECT_EQ(receipt->sequence, 0u);
  EXPECT_GT(receipt->logical_size, 1 * kMiB);
  EXPECT_GT(receipt->anonvm_fraction, 0.5);
  ASSERT_TRUE(rig.manager.TerminateNym(nym).ok());

  auto outcome = rig.LoadFromCloud("twitter-nym", "pseudo-user", "cloudpw", "nympw");
  ASSERT_TRUE(outcome.nym.ok());
  Nym* restored = *outcome.nym;
  // The loader nym existed and is gone again.
  EXPECT_GT(ToSeconds(outcome.report.ephemeral_nym), 5.0);
  EXPECT_EQ(rig.manager.FindNym("twitter-nym-loader"), nullptr);
  EXPECT_EQ(rig.manager.nyms().size(), 1u);
  // Credentials and cookie survived: no retyping (§3.5).
  EXPECT_TRUE(restored->browser()->HasStoredCredential("twitter.com"));
  EXPECT_EQ(*restored->browser()->StoredAccount("twitter.com"), "bob_blogger");
  EXPECT_EQ(restored->browser()->CookieFor("twitter.com"), cookie);
  // Tor guard survived via the CommVM state.
  auto guard_after = static_cast<TorClient*>(restored->anonymizer())->entry_guard_index();
  ASSERT_TRUE(guard_before.has_value() && guard_after.has_value());
  EXPECT_EQ(*guard_after, *guard_before);
  // Restored bootstrap was warm (cached consensus).
  EXPECT_LT(ToSeconds(outcome.report.start_anonymizer), 6.0);
  // Next save uses the next sequence number.
  EXPECT_EQ(restored->save_sequence(), 1u);
}

TEST(NymManagerTest, WrongPasswordFailsLoad) {
  CoreRig rig;
  ASSERT_TRUE(rig.cloud.CreateAccount("user", "cloudpw").ok());
  Nym* nym = rig.CreateNymOrDie("secret");
  ASSERT_TRUE(rig.SaveToCloud(nym, "user", "cloudpw", "rightpw").ok());
  ASSERT_TRUE(rig.manager.TerminateNym(nym).ok());
  auto outcome = rig.LoadFromCloud("secret", "user", "cloudpw", "wrongpw");
  // Object names are blinded with the archive password, so a wrong password
  // computes a different name and the archive is simply not found — the
  // provider cannot distinguish "wrong password" from "never saved".
  EXPECT_EQ(outcome.nym.status().code(), StatusCode::kNotFound);
  // Loader cleaned up even on failure.
  EXPECT_EQ(rig.manager.nyms().size(), 0u);
}

TEST(NymManagerTest, MissingArchiveFailsLoad) {
  CoreRig rig;
  ASSERT_TRUE(rig.cloud.CreateAccount("user", "pw").ok());
  auto outcome = rig.LoadFromCloud("never-saved", "user", "pw", "nympw");
  EXPECT_FALSE(outcome.nym.ok());
  EXPECT_EQ(rig.manager.nyms().size(), 0u);
}

TEST(NymManagerTest, CloudProviderSeesOnlyExitsAndCiphertext) {
  CoreRig rig;
  ASSERT_TRUE(rig.cloud.CreateAccount("user", "pw").ok());
  Nym* nym = rig.CreateNymOrDie("deniable");
  ASSERT_TRUE(rig.VisitAndWait(nym, rig.sites.ByName("Gmail")).ok());
  ASSERT_TRUE(rig.SaveToCloud(nym, "user", "pw", "nympw").ok());
  // Provider's access log never contains the user's address or the nym name:
  // archives are indexed by the blinded object name, not the pseudonym.
  for (const auto& entry : rig.cloud.access_log()) {
    EXPECT_NE(entry.observed_source, rig.host.public_ip());
    EXPECT_EQ(entry.action.find("deniable"), std::string::npos) << entry.action;
  }
  auto listing = rig.cloud.List("user");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 1u);
  for (const std::string& object : *listing) {
    EXPECT_EQ(object.find("deniable"), std::string::npos) << object;
  }
  // Only the owner can recompute the object name (it needs the password).
  auto stored = rig.cloud.Get("user", BlindObjectName("deniable", "nympw"));
  ASSERT_TRUE(stored.ok());
  EXPECT_FALSE(rig.cloud.Get("user", "deniable").ok());
  // Stored bytes are ciphertext: no plaintext paths or cookies.
  std::string blob = StringFromBytes(stored->data);
  EXPECT_EQ(blob.find("cookies"), std::string::npos);
  EXPECT_EQ(blob.find("twitter"), std::string::npos);
}

TEST(NymManagerTest, LocalSaveRestoreAndForensics) {
  CoreRig rig;
  LocalStore usb("usb-2");
  Nym* nym = rig.CreateNymOrDie("local-nym");
  ASSERT_TRUE(rig.VisitAndWait(nym, rig.sites.ByName("BBC")).ok());
  Result<SaveReceipt> receipt = InternalError("pending");
  bool done = false;
  rig.manager.SaveNymToLocal(*nym, usb, "pw", [&](Result<SaveReceipt> r) {
    receipt = std::move(r);
    done = true;
  });
  rig.sim.RunUntil([&] { return done; });
  ASSERT_TRUE(receipt.ok());
  ASSERT_TRUE(rig.manager.TerminateNym(nym).ok());
  // Local storage is visible to confiscation (unlike the cloud).
  EXPECT_TRUE(usb.HasSuspiciousState());

  bool loaded = false;
  Result<Nym*> restored = InternalError("pending");
  NymStartupReport report;
  rig.manager.LoadNymFromLocal("local-nym", usb, "pw", {},
                               [&](Result<Nym*> nym_result, NymStartupReport r) {
                                 restored = std::move(nym_result);
                                 report = r;
                                 loaded = true;
                               });
  rig.sim.RunUntil([&] { return loaded; });
  ASSERT_TRUE(restored.ok());
  // No ephemeral download nym needed for local loads.
  EXPECT_LT(ToSeconds(report.ephemeral_nym), 2.0);
  EXPECT_TRUE((*restored)->browser()->HasCookieFor("bbc.co.uk"));
}

TEST(NymManagerTest, GuardSeedMakesLoaderUseSameGuard) {
  CoreRig rig;
  ASSERT_TRUE(rig.cloud.CreateAccount("user", "pw").ok());
  uint64_t seed = DeriveGuardSeed("drop.example.com/user", "nympw");
  NymManager::CreateOptions options;
  options.guard_seed = seed;
  Nym* nym = rig.CreateNymOrDie("seeded", options);
  auto original_guard = static_cast<TorClient*>(nym->anonymizer())->entry_guard_index();
  ASSERT_TRUE(rig.SaveToCloud(nym, "user", "pw", "nympw").ok());
  ASSERT_TRUE(rig.manager.TerminateNym(nym).ok());

  auto outcome = rig.LoadFromCloud("seeded", "user", "pw", "nympw", options);
  ASSERT_TRUE(outcome.nym.ok());
  auto restored_guard =
      static_cast<TorClient*>((*outcome.nym)->anonymizer())->entry_guard_index();
  ASSERT_TRUE(original_guard.has_value() && restored_guard.has_value());
  // Both the restored nym AND the ephemeral loader picked this guard — the
  // §3.5 fix for the remaining intersection-attack exposure.
  EXPECT_EQ(*restored_guard, *original_guard);
}

TEST(NymManagerTest, PersistentSavesIncrementSequence) {
  CoreRig rig;
  ASSERT_TRUE(rig.cloud.CreateAccount("user", "pw").ok());
  NymManager::CreateOptions options;
  options.mode = NymMode::kPersistent;
  Nym* nym = rig.CreateNymOrDie("grower", options);
  Website& gmail = rig.sites.ByName("Gmail");
  std::vector<uint64_t> sizes;
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(rig.VisitAndWait(nym, gmail).ok());
    auto receipt = rig.SaveToCloud(nym, "user", "pw", "nympw");
    ASSERT_TRUE(receipt.ok());
    EXPECT_EQ(receipt->sequence, static_cast<uint32_t>(cycle));
    sizes.push_back(receipt->logical_size);
  }
  // Persistent nyms grow across cycles (Fig. 6).
  EXPECT_GT(sizes[2], sizes[0]);
}

// ---------------------------------------------------------------- SaniVM

TEST(SaniVmTest, ScrubbedTransferWorkflow) {
  CoreRig rig;
  SaniService sani(rig.manager);
  bool ready = false;
  sani.Start([&](SimTime) { ready = true; });
  rig.sim.RunUntil([&] { return ready; });

  // The user's camera SD card, with a compromising photo.
  auto sdcard = std::make_shared<MemFs>();
  JpegFile photo;
  photo.image = GeneratePhoto(256, 192, 7, {{40, 40, 48, 48}});
  ExifData exif;
  exif.gps = GpsCoordinate{38.1234, 68.7742};
  exif.body_serial_number = "PHONE-123";
  photo.exif = exif;
  ASSERT_TRUE(
      sdcard->WriteFile("/DCIM/IMG_0001.jpg", Blob::FromBytes(EncodeJpeg(photo))).ok());
  ASSERT_TRUE(sani.MountHostFilesystem("sdcard", sdcard).ok());
  EXPECT_EQ(sani.MountedFilesystems(), std::vector<std::string>{"sdcard"});

  Nym* nym = rig.CreateNymOrDie("poster");
  ASSERT_TRUE(sani.RegisterNym(*nym).ok());

  // Risk analysis first (the user-facing list).
  auto analysis = sani.AnalyzeHostFile("sdcard", "/DCIM/IMG_0001.jpg");
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->Has(RiskType::kGpsLocation));
  EXPECT_TRUE(analysis->Has(RiskType::kFace));

  ScrubOptions options;
  options.level = ParanoiaLevel::kMetadataAndVisual;
  auto outcome = sani.TransferToNym(*nym, "sdcard", "/DCIM/IMG_0001.jpg", options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(sani.transfers_completed(), 1u);

  // The AnonVM sees the scrubbed file through its VirtFS share...
  auto share = nym->anon_vm()->GetShare("incoming");
  ASSERT_TRUE(share.ok());
  auto transferred = (*share)->ReadFile(outcome->guest_path);
  ASSERT_TRUE(transferred.ok());
  // ...and it is clean.
  auto clean = AnalyzeFile(transferred->bytes());
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->Has(RiskType::kGpsLocation));
  EXPECT_FALSE(clean->Has(RiskType::kDeviceSerial));
  EXPECT_FALSE(clean->Has(RiskType::kFace));
  // The original on the SD card is untouched.
  auto original = sani.AnalyzeHostFile("sdcard", "/DCIM/IMG_0001.jpg");
  EXPECT_TRUE(original->Has(RiskType::kGpsLocation));
}

TEST(SaniVmTest, StagedDirectoryWorkflow) {
  CoreRig rig;
  SaniService sani(rig.manager);
  bool ready = false;
  sani.Start([&](SimTime) { ready = true; });
  rig.sim.RunUntil([&] { return ready; });

  auto sdcard = std::make_shared<MemFs>();
  for (int i = 0; i < 2; ++i) {
    JpegFile photo;
    photo.image = GeneratePhoto(64, 48, static_cast<uint64_t>(i), {});
    ExifData exif;
    exif.gps = GpsCoordinate{38.0 + i, 68.0};
    photo.exif = exif;
    ASSERT_TRUE(sdcard->WriteFile("/DCIM/IMG_000" + std::to_string(i) + ".jpg",
                                  Blob::FromBytes(EncodeJpeg(photo)))
                    .ok());
  }
  // A non-scrubbable file stays pending instead of being transferred raw.
  ASSERT_TRUE(sdcard->WriteFile("/DCIM/notes.xyz", Blob::FromString("opaque bytes")).ok());
  ASSERT_TRUE(sani.MountHostFilesystem("sdcard", sdcard).ok());
  Nym* nym = rig.CreateNymOrDie("stager");
  ASSERT_TRUE(sani.RegisterNym(*nym).ok());

  // The user drags three files into the nym's transfer directory.
  ASSERT_TRUE(sani.StageForNym(*nym, "sdcard", "/DCIM/IMG_0000.jpg").ok());
  ASSERT_TRUE(sani.StageForNym(*nym, "sdcard", "/DCIM/IMG_0001.jpg").ok());
  ASSERT_TRUE(sani.StageForNym(*nym, "sdcard", "/DCIM/notes.xyz").ok());
  EXPECT_EQ(sani.PendingFiles(*nym).size(), 3u);

  auto outcomes = sani.ProcessPending(*nym, ScrubOptions{});
  ASSERT_EQ(outcomes.size(), 3u);
  int succeeded = 0, failed = 0;
  for (const auto& outcome : outcomes) {
    outcome.ok() ? ++succeeded : ++failed;
  }
  EXPECT_EQ(succeeded, 2);
  EXPECT_EQ(failed, 1);  // the unknown file type
  // The failure stays pending; the scrubbed files reached the share clean.
  EXPECT_EQ(sani.PendingFiles(*nym), std::vector<std::string>{"notes.xyz"});
  auto share = nym->anon_vm()->GetShare("incoming");
  ASSERT_TRUE(share.ok());
  auto scrubbed = (*share)->ReadFile("/IMG_0000.jpg");
  ASSERT_TRUE(scrubbed.ok());
  auto report = AnalyzeFile(scrubbed->bytes());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->Has(RiskType::kGpsLocation));
  EXPECT_EQ(sani.transfers_completed(), 2u);
  // Staging without registration fails.
  Nym* other = rig.CreateNymOrDie("unregistered-stager");
  EXPECT_EQ(sani.StageForNym(*other, "sdcard", "/DCIM/notes.xyz").code(),
            StatusCode::kFailedPrecondition);
}

TEST(ValidationTest, ProbeHarnessIsNotVacuous) {
  // A chatty neighbor on a direct wire DOES answer the exact probes the
  // isolation sweep sends — so zero responses from a nymbox means the
  // CommVM dropped them, not that responses are unobservable.
  CoreRig rig;
  Link* direct = rig.sim.CreateLink("direct-lan", Millis(1), 1'000'000'000);
  EchoResponder neighbor;
  direct->AttachB(&neighbor);
  Nym* nym = rig.CreateNymOrDie("prober");
  nym->anon_vm()->AttachNic(direct, /*side_a=*/true);

  Packet probe;
  probe.src_ip = kGuestAnonVmIp;
  probe.dst_ip = kHostLanIp;
  probe.dst_port = 7;
  probe.payload = BytesFromString("probe");
  probe.annotation = "Probe";
  uint64_t received_before = nym->anon_vm()->packets_received();
  nym->anon_vm()->SendPacket(direct, std::move(probe));
  rig.sim.loop().RunUntilIdle();
  EXPECT_EQ(neighbor.probes_heard(), 1u);
  EXPECT_EQ(nym->anon_vm()->packets_received(), received_before + 1);  // reply arrived

  // The same probes through the nymbox wire: the neighbor hears nothing.
  LeakProbeResult result = ProbeAnonVmIsolation(rig.sim, rig.host, *nym, nullptr);
  EXPECT_EQ(result.responses_received, 0u);
  EXPECT_EQ(neighbor.probes_heard(), 1u);  // unchanged
}

TEST(SaniVmTest, RequiresRegistrationAndMounts) {
  CoreRig rig;
  SaniService sani(rig.manager);
  bool ready = false;
  sani.Start([&](SimTime) { ready = true; });
  rig.sim.RunUntil([&] { return ready; });
  Nym* nym = rig.CreateNymOrDie("unregistered");
  ScrubOptions options;
  EXPECT_EQ(sani.TransferToNym(*nym, "nope", "/x", options).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(sani.RegisterNym(*nym).ok());
  EXPECT_FALSE(sani.RegisterNym(*nym).ok());
  EXPECT_EQ(sani.TransferToNym(*nym, "nope", "/x", options).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(sani.UnregisterNym(*nym).ok());
}

TEST(SaniVmTest, SaniVmHasNoNetwork) {
  CoreRig rig;
  SaniService sani(rig.manager);
  bool ready = false;
  sani.Start([&](SimTime) { ready = true; });
  rig.sim.RunUntil([&] { return ready; });
  // No NICs were ever attached: sending is impossible by construction, and
  // the VM reports zero network activity.
  EXPECT_EQ(sani.vm()->packets_received(), 0u);
  EXPECT_EQ(sani.vm()->role(), VmRole::kSaniVm);
}

// ---------------------------------------------------------------- Installed OS

TEST(InstalledOsTest, Windows7MatchesTableOne) {
  CoreRig rig;
  InstalledOsNymService service(rig.manager);
  auto media = MakeInstalledOsMedia(InstalledOsKind::kWindows7, 5);
  Result<Nym*> nym = InternalError("pending");
  InstalledOsReport report;
  bool done = false;
  service.BootAsNym(media, [&](Result<Nym*> n, InstalledOsReport r) {
    nym = std::move(n);
    report = r;
    done = true;
  });
  rig.sim.RunUntil([&] { return done; });
  ASSERT_TRUE(nym.ok());
  // Table 1 row "7": repair 129.3 s, boot 34.3 s, size 4.5 MB.
  EXPECT_NEAR(report.repair_seconds, 129.3, 5.0);
  EXPECT_NEAR(report.boot_seconds, 34.3, 3.0);
  EXPECT_NEAR(static_cast<double>(report.cow_bytes) / kMiB, 4.5, 0.8);
  EXPECT_TRUE(media.repaired);
  // The installed OS nym is non-anonymous (incognito NAT).
  EXPECT_FALSE((*nym)->anonymizer()->ProtectsNetworkIdentity());
}

TEST(InstalledOsTest, PhysicalDiskNeverWritten) {
  CoreRig rig;
  InstalledOsNymService service(rig.manager);
  auto media = MakeInstalledOsMedia(InstalledOsKind::kWindowsVista, 5);
  uint64_t disk_bytes = media.disk->TotalBytes();
  bool done = false;
  service.BootAsNym(media, [&](Result<Nym*>, InstalledOsReport) { done = true; });
  rig.sim.RunUntil([&] { return done; });
  EXPECT_EQ(media.disk->TotalBytes(), disk_bytes);
  EXPECT_TRUE(media.disk->Exists("/ProgramData/wifi/profiles.xml"));
}

TEST(InstalledOsTest, SecondBootSkipsRepair) {
  CoreRig rig;
  InstalledOsNymService service(rig.manager);
  auto media = MakeInstalledOsMedia(InstalledOsKind::kWindows8, 5);
  bool done = false;
  InstalledOsReport first;
  service.BootAsNym(media, [&](Result<Nym*> n, InstalledOsReport r) {
    ASSERT_TRUE(n.ok());
    ASSERT_TRUE(rig.manager.TerminateNym(*n).ok());
    first = r;
    done = true;
  });
  rig.sim.RunUntil([&] { return done; });
  EXPECT_GT(first.repair_seconds, 100.0);

  done = false;
  InstalledOsReport second;
  service.BootAsNym(media, [&](Result<Nym*> n, InstalledOsReport r) {
    ASSERT_TRUE(n.ok());
    second = r;
    done = true;
  });
  rig.sim.RunUntil([&] { return done; });
  EXPECT_EQ(second.repair_seconds, 0.0);
  EXPECT_NEAR(second.boot_seconds, first.boot_seconds, 1.0);
}

TEST(InstalledOsTest, TableOneCostModel) {
  auto vista = InstalledOsProfile::For(InstalledOsKind::kWindowsVista);
  auto win7 = InstalledOsProfile::For(InstalledOsKind::kWindows7);
  auto win8 = InstalledOsProfile::For(InstalledOsKind::kWindows8);
  EXPECT_NEAR(RepairSecondsFor(vista), 133.7, 2.0);
  EXPECT_NEAR(RepairSecondsFor(win7), 129.3, 2.0);
  EXPECT_NEAR(RepairSecondsFor(win8), 157.0, 2.0);
  EXPECT_NEAR(BootSecondsFor(vista), 37.7, 1.0);
  EXPECT_NEAR(BootSecondsFor(win7), 34.3, 1.0);
  EXPECT_NEAR(BootSecondsFor(win8), 58.7, 1.0);
  EXPECT_NEAR(static_cast<double>(CowBytesFor(vista)) / kMiB, 4.9, 0.5);
  EXPECT_NEAR(static_cast<double>(CowBytesFor(win8)) / kMiB, 14.0, 1.0);
  EXPECT_EQ(RepairSecondsFor(InstalledOsProfile::For(InstalledOsKind::kLinux)), 0.0);
}

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, IntersectionAttackNarrowsCandidates) {
  IntersectionObserver observer;
  observer.RecordRound({"alice", "bob", "carol", "dave"}, true);
  EXPECT_EQ(observer.AnonymitySetSize(), 4u);
  observer.RecordRound({"alice", "bob", "eve"}, true);
  EXPECT_EQ(observer.AnonymitySetSize(), 2u);  // {alice, bob}
  observer.RecordRound({"bob", "carol"}, true);
  EXPECT_EQ(observer.AnonymitySetSize(), 1u);  // bob exposed
  EXPECT_EQ(observer.posting_rounds(), 3u);
  EXPECT_EQ(*observer.CandidateSet().begin(), "bob");
}

TEST(MetricsTest, NonPostingRoundsDoNotNarrow) {
  IntersectionObserver observer;
  observer.RecordRound({"alice", "bob"}, true);
  observer.RecordRound({"carol"}, false);
  EXPECT_EQ(observer.AnonymitySetSize(), 2u);
}

TEST(MetricsTest, BuddiesPolicyBlocksUnsafePosts) {
  IntersectionObserver observer;
  observer.RecordRound({"alice", "bob", "carol"}, true);
  BuddiesPolicy policy(2);
  EXPECT_TRUE(policy.MayPost(observer, {"alice", "bob", "dave"}));   // set -> 2
  EXPECT_FALSE(policy.MayPost(observer, {"alice", "dave", "eve"}));  // set -> 1
  EXPECT_EQ(policy.ProjectedSetSize(observer, {"alice", "bob"}), 2u);
}

TEST(MetricsTest, EphemeralNymsResistIntersection) {
  // A user who posts from throwaway nyms (different pseudonyms) gives the
  // adversary one round per pseudonym — no intersection accumulates.
  IntersectionObserver per_nym_a;
  per_nym_a.RecordRound({"alice", "bob", "carol", "dave"}, true);
  IntersectionObserver per_nym_b;
  per_nym_b.RecordRound({"alice", "bob", "eve"}, true);
  EXPECT_EQ(per_nym_a.AnonymitySetSize(), 4u);
  EXPECT_EQ(per_nym_b.AnonymitySetSize(), 3u);
  // Versus one long-lived pseudonym across the same rounds:
  IntersectionObserver linked;
  linked.RecordRound({"alice", "bob", "carol", "dave"}, true);
  linked.RecordRound({"alice", "bob", "eve"}, true);
  EXPECT_EQ(linked.AnonymitySetSize(), 2u);
}

}  // namespace
}  // namespace nymix
