// nymflow's fixture suite: every dataflow scenario the ISSUE demands, run
// through the real two-pass analyzer (RunLint with FlowOptions) so the
// fixtures exercise lexing, modeling, taint propagation, suppression,
// baselining, and SARIF together — exactly the production pipeline, with
// inline sources instead of a checkout.
#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/nymlint/analyzer.h"
#include "tools/nymlint/jsonlite.h"
#include "tools/nymlint/sarif.h"

namespace nymlint {
namespace {

// A miniature registry mirroring tools/nymlint/identity_registry.txt's
// shape: one of each directive, so each scenario names its vocabulary.
constexpr char kRegistry[] = R"(# test registry
source-fn    Nym::name
source-field cookie
source-type  GuardIdentity
sink         KvStore::Put
sink         Telemetry::Emit
declassify   Scrub
shard-root   Simulation
channel-type CrossShardChannel
shared-safe  Config
)";

LintResult FlowLint(const std::vector<SourceFile>& files,
                    const std::string& baseline_text = "",
                    const std::string& registry_text = kRegistry) {
  FlowOptions flow;
  flow.enabled = true;
  flow.registry_path = "tools/nymlint/identity_registry.txt";
  flow.registry_text = registry_text;
  if (!baseline_text.empty()) {
    flow.baseline_path = "nymflow_baseline.json";
    flow.baseline_text = baseline_text;
  }
  return RunLint(files, flow);
}

LintResult FlowLintOne(const std::string& path, const std::string& content) {
  return FlowLint({SourceFile{path, content}});
}

size_t CountRule(const LintResult& result, const std::string& rule) {
  size_t n = 0;
  for (const Diagnostic& diag : result.diagnostics) {
    n += diag.rule == rule ? 1 : 0;
  }
  return n;
}

bool Fired(const LintResult& result, const std::string& rule) {
  return CountRule(result, rule) > 0;
}

// --- identity taint -------------------------------------------------------

TEST(NymflowTaint, DirectCallToSinkFires) {
  LintResult result = FlowLintOne("src/flow/direct.cc", R"cc(
    namespace nymix {
    void Checkpoint(Nym& nym, KvStore& store) {
      store.Put(nym.name(), "state");
    }
    }  // namespace nymix
  )cc");
  ASSERT_EQ(result.flow_findings.size(), 1u);
  const FlowFinding& finding = result.flow_findings[0];
  EXPECT_EQ(finding.diag.rule, "nymflow-identity-taint");
  EXPECT_EQ(finding.diag.path, "src/flow/direct.cc");
  EXPECT_NE(finding.diag.message.find("Nym::name"), std::string::npos);
  EXPECT_NE(finding.diag.message.find("KvStore::Put"), std::string::npos);
  // Fingerprint is line-free: rule|file|function|source|sink.
  EXPECT_EQ(finding.fingerprint,
            "nymflow-identity-taint|src/flow/direct.cc|Checkpoint|"
            "call to Nym::name|KvStore::Put");
  ASSERT_GE(finding.steps.size(), 2u);
}

TEST(NymflowTaint, OneLevelIndirectionThroughHelper) {
  // The tainted value takes a detour through a same-file helper's return
  // value; the summary pass has to carry it across the call edge.
  LintResult result = FlowLintOne("src/flow/indirect.cc", R"cc(
    namespace nymix {
    std::string Alias(Nym& nym) { return nym.name(); }
    void Checkpoint(Nym& nym, KvStore& store) {
      store.Put(Alias(nym), "state");
    }
    }  // namespace nymix
  )cc");
  ASSERT_EQ(result.flow_findings.size(), 1u);
  EXPECT_EQ(result.flow_findings[0].diag.rule, "nymflow-identity-taint");
}

TEST(NymflowTaint, FieldReadAssignedToLocalFires) {
  // source-field taint via an assignment: the local inherits the taint and
  // carries it to the sink two statements later.
  LintResult result = FlowLintOne("src/flow/field.cc", R"cc(
    namespace nymix {
    struct BrowserState { std::string cookie; };
    void Persist(BrowserState& browser, KvStore& store) {
      std::string session = browser.cookie;
      session += "-suffix";
      store.Put(session, "v");
    }
    }  // namespace nymix
  )cc");
  ASSERT_EQ(result.flow_findings.size(), 1u);
  EXPECT_NE(result.flow_findings[0].diag.message.find("cookie"), std::string::npos);
}

TEST(NymflowTaint, ContainerInsertTaintsContainer) {
  LintResult result = FlowLintOne("src/flow/container.cc", R"cc(
    namespace nymix {
    void Batch(Nym& nym, KvStore& store) {
      std::vector<std::string> keys;
      keys.push_back(nym.name());
      store.Put(keys.front(), "v");
    }
    }  // namespace nymix
  )cc");
  ASSERT_EQ(result.flow_findings.size(), 1u);
  bool noted = false;
  for (const FlowStep& step : result.flow_findings[0].steps) {
    noted = noted || step.note.find("container") != std::string::npos;
  }
  EXPECT_TRUE(noted);
}

TEST(NymflowTaint, SourceTypedParameterIsIntrinsic) {
  LintResult result = FlowLintOne("src/flow/typed.cc", R"cc(
    namespace nymix {
    void Report(GuardIdentity guard, Telemetry& telemetry) {
      telemetry.Emit(guard);
    }
    }  // namespace nymix
  )cc");
  ASSERT_EQ(result.flow_findings.size(), 1u);
  EXPECT_NE(result.flow_findings[0].diag.message.find("Telemetry::Emit"),
            std::string::npos);
}

TEST(NymflowTaint, DeclassifiedFlowIsClean) {
  LintResult result = FlowLintOne("src/flow/declassified.cc", R"cc(
    namespace nymix {
    void Checkpoint(Nym& nym, KvStore& store) {
      store.Put(Scrub(nym.name()), "state");
    }
    }  // namespace nymix
  )cc");
  EXPECT_TRUE(result.flow_findings.empty());
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(NymflowTaint, AllowSuppressionSilencesFinding) {
  LintResult result = FlowLintOne("src/flow/allowed.cc", R"cc(
    namespace nymix {
    void Checkpoint(Nym& nym, KvStore& store) {
      // nymlint:allow(nymflow-identity-taint): host-local scratch store
      store.Put(nym.name(), "state");
    }
    }  // namespace nymix
  )cc");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_TRUE(result.flow_findings.empty());
  EXPECT_EQ(result.suppressions_used, 1u);
}

TEST(NymflowTaint, FindingsOutsideSrcAreNotReported) {
  // The model spans tests/, but findings are gated to src/: tests handle
  // identity on purpose.
  LintResult result = FlowLintOne("tests/flow_fixture.cc", R"cc(
    namespace nymix {
    void Checkpoint(Nym& nym, KvStore& store) {
      store.Put(nym.name(), "state");
    }
    }  // namespace nymix
  )cc");
  EXPECT_TRUE(result.flow_findings.empty());
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(NymflowTaint, MultiTranslationUnitFlowSpansThreeFiles) {
  // source in a.h -> pass-through in b.h -> sink in use.cc. No single file
  // shows the whole flow; only the cross-TU summaries connect it.
  LintResult result = FlowLint({
      SourceFile{"src/flow/a.h", R"cc(
        namespace nymix {
        std::string WrapName(Nym& nym) { return nym.name(); }
        }  // namespace nymix
      )cc"},
      SourceFile{"src/flow/b.h", R"cc(
        namespace nymix {
        std::string PassThrough(Nym& nym) { return WrapName(nym); }
        }  // namespace nymix
      )cc"},
      SourceFile{"src/flow/use.cc", R"cc(
        namespace nymix {
        void Upload(Nym& nym, KvStore& store) {
          store.Put(PassThrough(nym), "state");
        }
        }  // namespace nymix
      )cc"},
  });
  ASSERT_EQ(result.flow_findings.size(), 1u);
  const FlowFinding& finding = result.flow_findings[0];
  EXPECT_EQ(finding.diag.path, "src/flow/use.cc");
  // The step chain should walk back through the helper files.
  bool through_helper = false;
  for (const FlowStep& step : finding.steps) {
    through_helper = through_helper || step.path == "src/flow/a.h";
  }
  EXPECT_TRUE(through_helper);
}

// --- shard confinement ----------------------------------------------------

TEST(NymflowShard, AliasSharedByTwoShardsFires) {
  LintResult result = FlowLintOne("src/flow/shards.cc", R"cc(
    namespace nymix {
    void Wire(Simulation& left, Simulation& right, Mailbox& box) {
      left.Attach(&box);
      right.Attach(&box);
    }
    }  // namespace nymix
  )cc");
  ASSERT_EQ(result.flow_findings.size(), 1u);
  const FlowFinding& finding = result.flow_findings[0];
  EXPECT_EQ(finding.diag.rule, "nymflow-shard-confinement");
  EXPECT_NE(finding.diag.message.find("'box'"), std::string::npos);
  EXPECT_NE(finding.diag.message.find("CrossShardChannel"), std::string::npos);
}

TEST(NymflowShard, ChannelMediatedSharingIsClean) {
  LintResult result = FlowLintOne("src/flow/channel.cc", R"cc(
    namespace nymix {
    void Wire(Simulation& left, Simulation& right, CrossShardChannel& channel) {
      left.Attach(&channel);
      right.Attach(&channel);
    }
    }  // namespace nymix
  )cc");
  EXPECT_TRUE(result.flow_findings.empty());
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(NymflowShard, SharedSafeAndConstAreExempt) {
  LintResult result = FlowLintOne("src/flow/safe.cc", R"cc(
    namespace nymix {
    void Wire(Simulation& left, Simulation& right, Config& config,
              const Registry& lookup) {
      left.Attach(&config);
      right.Attach(&config);
      left.Observe(lookup);
      right.Observe(lookup);
    }
    }  // namespace nymix
  )cc");
  EXPECT_TRUE(result.flow_findings.empty());
}

TEST(NymflowShard, SummaryMediatedExposureCrossesFunctions) {
  // Park() exposes its pointer argument inside a shard root; the caller
  // hands the same object to two shards only through Park().
  LintResult result = FlowLintOne("src/flow/summary_shard.cc", R"cc(
    namespace nymix {
    void Park(Simulation& shard, Mailbox& box) { shard.Attach(&box); }
    void Wire(Simulation& left, Simulation& right, Mailbox& box) {
      Park(left, box);
      Park(right, box);
    }
    }  // namespace nymix
  )cc");
  ASSERT_EQ(result.flow_findings.size(), 1u);
  EXPECT_EQ(result.flow_findings[0].diag.rule, "nymflow-shard-confinement");
}

// --- baseline -------------------------------------------------------------

constexpr char kLeakFixture[] = R"cc(
  namespace nymix {
  void Checkpoint(Nym& nym, KvStore& store) {
    store.Put(nym.name(), "state");
  }
  }  // namespace nymix
)cc";

TEST(NymflowBaseline, BaselineSuppressesKnownFinding) {
  LintResult first = FlowLintOne("src/flow/baselined.cc", kLeakFixture);
  ASSERT_EQ(first.flow_findings.size(), 1u);
  // Round-trip: the baseline the tool writes is the baseline the tool reads.
  std::string baseline = WriteBaseline(first.flow_findings, "known debt");
  LintResult second =
      FlowLint({SourceFile{"src/flow/baselined.cc", kLeakFixture}}, baseline);
  EXPECT_TRUE(second.diagnostics.empty());
  EXPECT_TRUE(second.flow_findings.empty());
  EXPECT_EQ(second.baseline_suppressed, 1u);
  EXPECT_TRUE(second.stale_baseline.empty());
}

TEST(NymflowBaseline, FingerprintSurvivesLineDrift) {
  LintResult first = FlowLintOne("src/flow/drift.cc", kLeakFixture);
  ASSERT_EQ(first.flow_findings.size(), 1u);
  std::string baseline = WriteBaseline(first.flow_findings, "known debt");
  // Same flow, shifted four lines down and reindented: still baselined.
  LintResult second = FlowLint(
      {SourceFile{"src/flow/drift.cc",
                  std::string("\n\n\n\n") + kLeakFixture}},
      baseline);
  EXPECT_TRUE(second.diagnostics.empty());
  EXPECT_EQ(second.baseline_suppressed, 1u);
}

TEST(NymflowBaseline, StaleEntryIsReported) {
  std::string baseline =
      R"({"version": 1, "entries": [{"fingerprint": )"
      R"("nymflow-identity-taint|src/gone.cc|Gone|call to Nym::name|KvStore::Put", )"
      R"("rule": "nymflow-identity-taint", "reason": "fixed long ago"}]})";
  LintResult result = FlowLint(
      {SourceFile{"src/flow/clean.cc", "namespace nymix { int Size() { return 1; } }\n"}},
      baseline);
  ASSERT_EQ(result.stale_baseline.size(), 1u);
  EXPECT_EQ(CountRule(result, "nymflow-stale-baseline"), 1u);
}

TEST(NymflowBaseline, MalformedBaselineIsDiagnosed) {
  LintResult result = FlowLint(
      {SourceFile{"src/flow/clean.cc", "namespace nymix { int Size() { return 1; } }\n"}},
      "{\"version\": 1, \"entries\": [{]}");
  EXPECT_TRUE(Fired(result, "nymflow-registry-error"));
}

// --- registry -------------------------------------------------------------

TEST(NymflowRegistry, UnknownDirectiveIsDiagnosed) {
  LintResult result =
      FlowLint({SourceFile{"src/flow/clean.cc",
                           "namespace nymix { int Size() { return 1; } }\n"}},
               "", "frobnicate Widget\n");
  ASSERT_TRUE(Fired(result, "nymflow-registry-error"));
  for (const Diagnostic& diag : result.diagnostics) {
    if (diag.rule == "nymflow-registry-error") {
      EXPECT_EQ(diag.path, "tools/nymlint/identity_registry.txt");
    }
  }
}

TEST(NymflowRegistry, QualifiedSinkNeedsMatchingReceiverType) {
  // Same call spelling, receiver typed Cache instead of KvStore: no match.
  LintResult result = FlowLintOne("src/flow/othertype.cc", R"cc(
    namespace nymix {
    void Stash(Nym& nym, Cache& store) {
      store.Put(nym.name(), "state");
    }
    }  // namespace nymix
  )cc");
  EXPECT_TRUE(result.flow_findings.empty());
}

// --- SARIF ----------------------------------------------------------------

TEST(NymflowSarif, ReportIsStructurallyValidSarif210) {
  LintResult result = FlowLintOne("src/flow/direct.cc", kLeakFixture);
  ASSERT_EQ(result.flow_findings.size(), 1u);
  JsonParseResult parsed =
      ParseJson(WriteSarif(result.diagnostics, result.flow_findings));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const JsonValue& root = parsed.value;

  // Top-level shape required by the 2.1.0 schema.
  EXPECT_NE(root.at("$schema").str.find("sarif-2.1.0"), std::string::npos);
  EXPECT_EQ(root.at("version").str, "2.1.0");
  ASSERT_TRUE(root.at("runs").is_array());
  ASSERT_EQ(root.at("runs").array.size(), 1u);
  const JsonValue& run = root.at("runs").array[0];
  EXPECT_EQ(run.at("columnKind").str, "utf16CodeUnits");

  // tool.driver with rule metadata for every registered rule.
  const JsonValue& driver = run.at("tool").at("driver");
  EXPECT_EQ(driver.at("name").str, "nymlint");
  ASSERT_TRUE(driver.at("rules").is_array());
  const std::vector<JsonValue>& rules = driver.at("rules").array;
  ASSERT_FALSE(rules.empty());
  for (const JsonValue& rule : rules) {
    EXPECT_TRUE(rule.at("id").is_string());
    EXPECT_TRUE(rule.at("shortDescription").at("text").is_string());
  }

  // Every result's ruleIndex must point at the rule with its ruleId.
  ASSERT_TRUE(run.at("results").is_array());
  ASSERT_FALSE(run.at("results").array.empty());
  for (const JsonValue& res : run.at("results").array) {
    EXPECT_EQ(res.at("level").str, "error");
    ASSERT_TRUE(res.at("ruleIndex").is_number());
    size_t index = static_cast<size_t>(res.at("ruleIndex").number);
    ASSERT_LT(index, rules.size());
    EXPECT_EQ(rules[index].at("id").str, res.at("ruleId").str);
    ASSERT_TRUE(res.at("locations").is_array());
    ASSERT_EQ(res.at("locations").array.size(), 1u);
    const JsonValue& loc =
        res.at("locations").array[0].at("physicalLocation");
    EXPECT_EQ(loc.at("artifactLocation").at("uriBaseId").str, "SRCROOT");
    EXPECT_TRUE(loc.at("artifactLocation").at("uri").is_string());
    EXPECT_TRUE(loc.at("region").at("startLine").is_number());
    EXPECT_TRUE(res.at("message").at("text").is_string());
  }
}

TEST(NymflowSarif, FlowFindingCarriesCodeFlowAndFingerprint) {
  LintResult result = FlowLintOne("src/flow/direct.cc", kLeakFixture);
  ASSERT_EQ(result.flow_findings.size(), 1u);
  JsonParseResult parsed =
      ParseJson(WriteSarif(result.diagnostics, result.flow_findings));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const std::vector<JsonValue>& results =
      parsed.value.at("runs").array[0].at("results").array;
  bool found = false;
  for (const JsonValue& res : results) {
    if (res.at("ruleId").str != "nymflow-identity-taint") {
      continue;
    }
    found = true;
    EXPECT_EQ(res.at("partialFingerprints").at("nymflowFingerprint/v1").str,
              result.flow_findings[0].fingerprint);
    ASSERT_TRUE(res.at("codeFlows").is_array());
    const JsonValue& thread =
        res.at("codeFlows").array[0].at("threadFlows").array[0];
    EXPECT_EQ(thread.at("locations").array.size(),
              result.flow_findings[0].steps.size());
    const JsonValue& first_step = thread.at("locations").array[0];
    EXPECT_TRUE(first_step.at("location").at("message").at("text").is_string());
  }
  EXPECT_TRUE(found);
}

// --- reports --------------------------------------------------------------

TEST(NymflowReport, JsonReportCarriesFlowBlock) {
  LintResult result = FlowLintOne("src/flow/direct.cc", kLeakFixture);
  std::ostringstream out;
  WriteJsonReport(result, out);
  JsonParseResult parsed = ParseJson(out.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.at("version").number, 2);
  const JsonValue& flow = parsed.value.at("flow");
  EXPECT_GE(flow.at("functions").number, 1);
  EXPECT_EQ(flow.at("findings").number, 1);
  EXPECT_EQ(flow.at("baseline_suppressed").number, 0);
}

}  // namespace
}  // namespace nymlint
