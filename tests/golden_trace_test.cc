// Golden-trace regression suite: re-runs each scenario in
// tests/golden_scenarios.cc and compares its output byte-for-byte against
// the checked-in corpus under tests/golden/. A mismatch means observable
// simulator behavior changed; if the change is intentional, regenerate
// with tools/regolden.sh and review the JSON diff in the commit.
#include <gtest/gtest.h>

// nymlint:allow-file(store-raw-io): the golden corpus is checked-in JSON
// reviewed in diffs, not simulator state; framing it in the record log
// would defeat the human-readable-diff purpose of the suite.
#include <fstream>
#include <sstream>
#include <string>

#include "src/store/nbt.h"
#include "tests/golden_scenarios.h"

namespace nymix {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " — run tools/regolden.sh to (re)generate the corpus";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// One TEST per scenario would need value-parameterized plumbing for no
// benefit; the loop's ASSERT messages carry the scenario name instead.
TEST(GoldenTraceTest, CorpusMatchesGeneratedBytes) {
  for (const GoldenScenario& scenario : GoldenScenarios()) {
    SCOPED_TRACE(scenario.name);
    std::string golden = ReadFileOrDie(std::string(NYMIX_GOLDEN_DIR) + "/" +
                                       scenario.name + ".json");
    ASSERT_FALSE(golden.empty());
    std::string generated = scenario.generate();
    if (golden != generated) {
      // Locate the first divergent byte so the failure is actionable
      // without dumping two multi-hundred-KiB strings.
      size_t i = 0;
      size_t limit = std::min(golden.size(), generated.size());
      while (i < limit && golden[i] == generated[i]) {
        ++i;
      }
      size_t from = i < 60 ? 0 : i - 60;
      FAIL() << scenario.name << ": golden mismatch at byte " << i << " of "
             << golden.size() << " (generated " << generated.size() << ")\n"
             << "golden:    ..." << golden.substr(from, 120) << "\n"
             << "generated: ..." << generated.substr(from, 120) << "\n"
             << "If this change is intentional, run tools/regolden.sh and "
                "commit the updated tests/golden/*.json.";
    }
  }
}

// The corpus generator itself must be deterministic: two in-process runs of
// the same scenario must produce identical bytes, otherwise regolden.sh
// would churn the files on every invocation.
TEST(GoldenTraceTest, ScenariosAreRerunStable) {
  for (const GoldenScenario& scenario : GoldenScenarios()) {
    SCOPED_TRACE(scenario.name);
    ASSERT_EQ(scenario.generate(), scenario.generate());
  }
}

// The binary twin: exporting each scenario's NBT encoding back to JSON
// (the tools/nbt2json path) must reproduce the checked-in golden bytes.
// This pins the whole chain — NBT encode, decode, byte-identical export —
// against the same corpus the JSON generators are pinned to, without
// checking in a second set of opaque binary files.
TEST(GoldenTraceTest, NbtExportMatchesGoldenJson) {
  for (const GoldenScenario& scenario : GoldenScenarios()) {
    SCOPED_TRACE(scenario.name);
    std::string golden = ReadFileOrDie(std::string(NYMIX_GOLDEN_DIR) + "/" +
                                       scenario.name + ".json");
    Bytes encoded = scenario.generate_nbt();
    Result<NbtDocument> doc = DecodeNbt(encoded);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_EQ(golden, NbtToJson(*doc));
  }
}

}  // namespace
}  // namespace nymix
