// Bob's workflow (§2, "People's Republic of Tyrannistan"): a dissident who
//   1. keeps a pre-configured pseudonymous Twitter nym whose encrypted
//      state lives in the cloud (nothing incriminating on his devices),
//   2. posts a protest photo only after the SaniVM scrubs its GPS EXIF,
//      camera serial, and visible faces,
//   3. checks the Buddies-style anonymity metric before posting, and
//   4. survives device confiscation: the forensic view of his USB stick is
//      empty, and the cloud provider saw only Tor exits and ciphertext.
//
//   ./build/examples/dissident_workflow
#include <cstdio>
#include <set>

#include "src/core/metrics.h"
#include "src/core/testbed.h"

using namespace nymix;

int main() {
  Testbed bed(/*seed=*/7);
  std::printf("== Bob the dissident: pre-configured cloud nym + photo scrubbing ==\n\n");

  // --- Session 1: configure the nym once --------------------------------
  NymManager::CreateOptions options;
  options.mode = NymMode::kPreConfigured;
  // Guard choice derived from storage location + password, so even the
  // ephemeral download nym will use the same Tor entry guard (§3.5).
  options.guard_seed = DeriveGuardSeed("drop.example.com/tulip-gardener", "correct horse");
  Nym* nym = bed.CreateNymBlocking("protest-voice", options);

  bool account_done = false;
  bed.manager().CreateCloudAccount(*nym, bed.cloud(), "tulip-gardener", "cloud-pass",
                                   [&](Status status) {
                                     NYMIX_CHECK(status.ok());
                                     account_done = true;
                                   });
  bed.sim().RunUntil([&] { return account_done; });

  Website& twitter = bed.sites().ByName("Twitter");
  bool logged_in = false;
  nym->browser()->Login(twitter, "@tyrannistan_truth", "site-pass",
                        [&](Result<SimTime> r) { logged_in = r.ok(); });
  bed.sim().RunUntil([&] { return logged_in; });
  NYMIX_CHECK(bed.VisitBlocking(nym, twitter).ok());
  std::printf("configured nym: credential stored for twitter.com = %s\n",
              nym->browser()->StoredAccount("twitter.com")->c_str());

  auto receipt = bed.SaveBlocking(nym, "tulip-gardener", "cloud-pass", "correct horse");
  NYMIX_CHECK(receipt.ok());
  std::printf("snapshot to cloud: %s encrypted (AnonVM fraction %.0f%%), seq=%u\n\n",
              FormatSize(receipt->logical_size).c_str(), 100 * receipt->anonvm_fraction,
              receipt->sequence);
  NYMIX_CHECK(bed.manager().TerminateNym(nym).ok());

  // --- Session 2 (another day): restore, scrub, post --------------------
  NymStartupReport report;
  auto restored = bed.LoadBlocking("protest-voice", "tulip-gardener", "cloud-pass",
                                   "correct horse", options, &report);
  NYMIX_CHECK(restored.ok());
  nym = *restored;
  std::printf("restored from cloud in %.1f s (ephemeral download nym %.1f s, boot %.1f s, "
              "warm Tor start %.1f s)\n",
              ToSeconds(report.Total()), ToSeconds(report.ephemeral_nym),
              ToSeconds(report.boot_vm), ToSeconds(report.start_anonymizer));
  std::printf("no retyping: credential still present = %s\n\n",
              nym->browser()->HasStoredCredential("twitter.com") ? "yes" : "NO (bug)");

  // The protest photo on Bob's camera card: GPS, serial, and two faces.
  SaniService sani(bed.manager());
  bool sani_ready = false;
  sani.Start([&](SimTime) { sani_ready = true; });
  bed.sim().RunUntil([&] { return sani_ready; });

  auto sdcard = std::make_shared<MemFs>();
  JpegFile photo;
  photo.image = GeneratePhoto(256, 192, 99, {{40, 40, 48, 48}, {150, 70, 56, 56}});
  ExifData exif;
  exif.gps = GpsCoordinate{38.5731, 68.7864};  // Tyrannimen Square
  exif.body_serial_number = "IMEI-356938035643809";
  exif.camera_model = "Galaxy S4";
  exif.datetime_original = "2014:05:01 21:14:03";
  photo.exif = exif;
  NYMIX_CHECK(sdcard->WriteFile("/DCIM/IMG_0001.jpg", Blob::FromBytes(EncodeJpeg(photo))).ok());
  NYMIX_CHECK(sani.MountHostFilesystem("camera-sd", sdcard).ok());
  NYMIX_CHECK(sani.RegisterNym(*nym).ok());

  auto risks = sani.AnalyzeHostFile("camera-sd", "/DCIM/IMG_0001.jpg");
  std::printf("SaniVM risk analysis: %s\n", risks->Summary().c_str());

  ScrubOptions scrub;
  scrub.level = ParanoiaLevel::kMetadataAndVisual;  // strip EXIF + blur faces + noise
  auto outcome = sani.TransferToNym(*nym, "camera-sd", "/DCIM/IMG_0001.jpg", scrub);
  NYMIX_CHECK(outcome.ok());
  std::printf("scrub actions:");
  for (const auto& action : outcome->actions) {
    std::printf(" [%s]", action.c_str());
  }
  auto transferred = (*nym->anon_vm()->GetShare("incoming"))->ReadFile(outcome->guest_path);
  auto clean = AnalyzeFile(transferred->bytes());
  std::printf("\npost-scrub analysis: %s\n\n", clean->Summary().c_str());

  // Buddies check before posting (§7): is the anonymity set big enough?
  IntersectionObserver adversary;
  adversary.RecordRound({"bob", "farid", "gulya", "rustam", "zarina"}, true);
  BuddiesPolicy policy(/*min_anonymity_set=*/3);
  std::set<std::string> online_now = {"bob", "farid", "zarina", "anora"};
  std::printf("Buddies: anonymity set if posting now = %zu (threshold %zu) -> %s\n",
              policy.ProjectedSetSize(adversary, online_now), policy.threshold(),
              policy.MayPost(adversary, online_now) ? "post allowed" : "POST BLOCKED");
  NYMIX_CHECK(bed.VisitBlocking(nym, twitter).ok());  // the post itself
  std::printf("posted; tracker saw exit %s\n\n",
              twitter.tracker_log().back().observed_source.ToString().c_str());

  // --- Confiscation scenario -------------------------------------------
  LocalStore usb("bobs-usb-stick");
  std::printf("forensics on Bob's USB stick: %zu suspicious blobs (cloud-only persistence)\n",
              usb.InspectDevice().size());
  std::printf("cloud provider's view (%zu log entries):\n", bed.cloud().access_log().size());
  for (const auto& entry : bed.cloud().access_log()) {
    std::printf("  t=%7.1fs  from %-15s  %s\n", ToSeconds(entry.time),
                entry.observed_source.ToString().c_str(), entry.action.c_str());
  }
  NYMIX_CHECK(bed.manager().TerminateNym(nym).ok());
  std::printf("\nworkflow complete at virtual t=%.1f s\n", ToSeconds(bed.sim().now()));
  return 0;
}
