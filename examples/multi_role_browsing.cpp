// Alice's workflow (§2, "Freetopia"): strong barriers between the roles of
// one ordinary user — work mail, family social media, and research about
// her unannounced pregnancy — each in its own nym with an anonymizer
// matched to its sensitivity. Shows per-tracker unlinkability, fingerprint
// homogeneity, KSM savings across concurrent nymboxes, and selective
// persistence (keep the work nym, burn the sensitive one).
//
//   ./build/examples/multi_role_browsing
#include <cstdio>

#include "src/core/metrics.h"
#include "src/core/testbed.h"

using namespace nymix;

int main() {
  Testbed bed(/*seed=*/11);
  std::printf("== Alice: three parallel roles, three nymboxes ==\n\n");

  // Work mail is not secret — incognito mode is cheap. Family social media
  // gets Tor. The sensitive research gets Tor too (she could pick Dissent).
  NymManager::CreateOptions work_options;
  work_options.anonymizer = AnonymizerKind::kIncognito;
  work_options.mode = NymMode::kPersistent;
  Nym* work = bed.CreateNymBlocking("work", work_options);

  NymManager::CreateOptions family_options;
  family_options.anonymizer = AnonymizerKind::kTor;
  Nym* family = bed.CreateNymBlocking("family", family_options);

  NymManager::CreateOptions private_options;
  private_options.anonymizer = AnonymizerKind::kTor;
  private_options.mode = NymMode::kEphemeral;
  Nym* research = bed.CreateNymBlocking("research", private_options);

  std::printf("three nyms up: %zu VMs on the host\n", bed.host().vm_count());
  std::printf("fingerprints identical: %s\n\n",
              (IndistinguishableFingerprints(*work->anon_vm(), *family->anon_vm()) &&
               IndistinguishableFingerprints(*family->anon_vm(), *research->anon_vm()))
                  ? "yes"
                  : "NO (bug)");

  // Browse per role. Facebook is visited by BOTH the family nym and the
  // research nym — the tracker must not link them.
  Website& gmail = bed.sites().ByName("Gmail");
  Website& facebook = bed.sites().ByName("Facebook");
  NYMIX_CHECK(bed.VisitBlocking(work, gmail).ok());
  NYMIX_CHECK(bed.VisitBlocking(family, facebook).ok());
  NYMIX_CHECK(bed.VisitBlocking(research, facebook).ok());

  std::printf("facebook.com tracker log:\n");
  for (const auto& record : facebook.tracker_log()) {
    std::printf("  source=%-15s cookie=%s\n", record.observed_source.ToString().c_str(),
                record.cookie.c_str());
  }
  std::printf("distinct cookies seen: %zu (one per nym; nothing links them)\n",
              facebook.DistinctCookies());
  std::printf("work nym's mail provider saw Alice's real address (%s) — by her choice:\n"
              "  gmail tracker source=%s\n\n",
              bed.host().public_ip().ToString().c_str(),
              gmail.tracker_log()[0].observed_source.ToString().c_str());

  // Memory economics of running three nymboxes (Figure 3 mechanics).
  KsmStats ksm = bed.host().ksm().ScanNow();
  std::printf("host memory: used %s of %s; KSM merged %llu guest pages (saves %s)\n\n",
              FormatSize(bed.host().UsedMemoryBytes()).c_str(),
              FormatSize(bed.host().config().ram_bytes).c_str(),
              static_cast<unsigned long long>(ksm.pages_sharing),
              FormatSize(ksm.bytes_saved()).c_str());

  // Selective persistence: keep work, discard the sensitive role entirely.
  LocalStore laptop_disk("laptop-second-partition");
  bool saved = false;
  bed.manager().SaveNymToLocal(*work, laptop_disk, "alices-password",
                               [&](Result<SaveReceipt> r) {
                                 NYMIX_CHECK_MSG(r.ok(), r.status().ToString().c_str());
                                 std::printf("work nym archived locally: %s encrypted\n",
                                             FormatSize(r->logical_size).c_str());
                                 saved = true;
                               });
  bed.sim().RunUntil([&] { return saved; });

  NYMIX_CHECK(bed.manager().TerminateNym(research).ok());
  NYMIX_CHECK(bed.manager().TerminateNym(family).ok());
  NYMIX_CHECK(bed.manager().TerminateNym(work).ok());
  bed.host().ksm().ScanNow();
  std::printf("all nyms terminated; host back to %s used\n",
              FormatSize(bed.host().UsedMemoryBytes()).c_str());
  std::printf("the research role left no trace; the work role can be restored tomorrow\n");
  std::printf("\ncomplete at virtual t=%.1f s\n", ToSeconds(bed.sim().now()));
  return 0;
}
