// Quickstart: the simplest Nymix session — boot a throwaway nym over Tor,
// read the news, and terminate it. Shows the core lifecycle, the network
// identity the site observed, the leak-validation checks, and the amnesia
// guarantee. All times and sizes are virtual-time simulation values.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/testbed.h"

using namespace nymix;

int main() {
  Testbed bed(/*seed=*/2024);
  std::printf("== Nymix quickstart: one ephemeral nym ==\n\n");

  // Watch the physical uplink like the paper's Wireshark (§5.1).
  PacketCapture capture;
  bed.host().uplink()->AttachCapture(&capture);
  bed.host().EmitDhcp();

  // 1. Start a fresh nym. The Nym Manager boots an AnonVM + CommVM pair
  //    and bootstraps a dedicated Tor instance inside the CommVM.
  NymStartupReport report;
  Nym* nym = bed.CreateNymBlocking("morning-news", {}, &report);
  std::printf("nym '%s' ready in %.1f s  (boot VMs %.1f s, start Tor %.1f s)\n",
              nym->name().c_str(), ToSeconds(report.Total()), ToSeconds(report.boot_vm),
              ToSeconds(report.start_anonymizer));
  std::printf("nymbox cost: %s of host RAM\n\n",
              FormatSize(nym->anon_vm()->config().ram_bytes +
                         nym->anon_vm()->config().disk_capacity +
                         nym->comm_vm()->config().ram_bytes +
                         nym->comm_vm()->config().disk_capacity)
                  .c_str());

  // 2. Browse. The BBC's tracker sees a Tor exit and a fresh cookie.
  Website& bbc = bed.sites().ByName("BBC");
  auto visit = bed.VisitBlocking(nym, bbc);
  NYMIX_CHECK(visit.ok());
  std::printf("visited %s; the site observed source=%s cookie=%s\n",
              bbc.profile().domain.c_str(),
              bbc.tracker_log()[0].observed_source.ToString().c_str(),
              bbc.tracker_log()[0].cookie.c_str());
  std::printf("our real public address %s never appeared\n\n",
              bed.host().public_ip().ToString().c_str());

  // 3. Validate isolation: raw probe packets from the AnonVM at the LAN,
  //    the host, and the Internet all vanish (§5.1).
  LeakProbeResult probes = ProbeAnonVmIsolation(bed.sim(), bed.host(), *nym, nullptr);
  std::printf("leak probes: %zu sent, %zu answered, %llu dropped by the CommVM\n",
              probes.probes_sent, probes.responses_received,
              static_cast<unsigned long long>(probes.dropped_by_commvm));
  CaptureAudit audit = AuditUplinkCapture(capture);
  std::printf("uplink capture audit: %s — traffic classes:", audit.Passed() ? "PASS" : "FAIL");
  for (const auto& [annotation, count] : audit.histogram) {
    std::printf(" %s=%zu", annotation.c_str(), count);
  }
  std::printf("\n\n");

  // 4. Terminate: memory wiped, disks discarded, nothing remains.
  uint64_t used_before = bed.host().UsedMemoryBytes();
  NYMIX_CHECK(bed.manager().TerminateNym(nym).ok());
  bed.host().ksm().ScanNow();
  std::printf("terminated: host memory %s -> %s (baseline %s); %zu nyms remain\n",
              FormatSize(used_before).c_str(), FormatSize(bed.host().UsedMemoryBytes()).c_str(),
              FormatSize(bed.host().config().baseline_bytes).c_str(),
              bed.manager().nyms().size());
  std::printf("\nquickstart complete at virtual t=%.1f s\n", ToSeconds(bed.sim().now()));
  return 0;
}
