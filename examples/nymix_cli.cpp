// nymix_cli: an interactive/scriptable front-end to the Nym Manager — the
// closest thing to the paper's user-facing workflow ("Nymix on boot
// presents the user with a Nym Manager, offering options to start a fresh
// nym or load an existing nym", §3.5). Reads commands from stdin, drives
// the simulated deployment, prints state.
//
//   ./build/examples/nymix_cli <<'EOF'
//   create work tor
//   visit work Twitter
//   account user pw
//   save work user pw nympw
//   terminate work
//   load work user pw nympw
//   status
//   quit
//   EOF
//
// Commands:
//   create <name> [tor|dissent|incognito|sweet|chained]
//   visit <name> <Site>            (Gmail, Twitter, Youtube, TorBlog, BBC,
//                                   Facebook, Slashdot, ESPN)
//   login <name> <Site> <account> <password>
//   account <user> <password>      create a cloud account
//   save <name> <user> <cloudpw> <nympw>
//   load <name> <user> <cloudpw> <nympw>
//   terminate <name>
//   probe <name>                   leak-probe sweep from the nym's AnonVM
//   resolve <name> <domain>        DNS through the nym's CommVM proxy
//   status                         nyms, memory, KSM, capture audit
//   quit
#include <cstdio>
#include <iostream>
#include <sstream>

#include "src/core/testbed.h"

using namespace nymix;

namespace {

Result<AnonymizerKind> ParseAnonymizer(const std::string& text) {
  if (text.empty() || text == "tor") {
    return AnonymizerKind::kTor;
  }
  if (text == "dissent") {
    return AnonymizerKind::kDissent;
  }
  if (text == "incognito") {
    return AnonymizerKind::kIncognito;
  }
  if (text == "sweet") {
    return AnonymizerKind::kSweet;
  }
  if (text == "chained") {
    return AnonymizerKind::kChained;
  }
  return InvalidArgumentError("unknown anonymizer: " + text);
}

}  // namespace

int main() {
  Testbed bed(/*seed=*/2014);
  PacketCapture capture;
  bed.host().uplink()->AttachCapture(&capture);
  bed.host().EmitDhcp();
  bed.host().ksm().Start(Seconds(2));

  std::printf("nymix> Nym Manager ready. 'help' lists commands.\n");
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty() || command[0] == '#') {
      continue;
    }

    if (command == "quit" || command == "exit") {
      break;
    } else if (command == "help") {
      std::printf("commands: create visit login account save load terminate probe "
                  "resolve status quit\n");
    } else if (command == "create") {
      std::string name, tool;
      in >> name >> tool;
      auto kind = ParseAnonymizer(tool);
      if (name.empty() || !kind.ok()) {
        std::printf("usage: create <name> [tor|dissent|incognito|sweet|chained]\n");
        continue;
      }
      NymManager::CreateOptions options;
      options.anonymizer = *kind;
      bool done = false;
      bed.manager().CreateNym(name, options, [&](Result<Nym*> nym, NymStartupReport report) {
        if (nym.ok()) {
          std::printf("created '%s' (%s) in %.1fs [boot %.1fs, anonymizer %.1fs]\n",
                      name.c_str(), (*nym)->anonymizer()->Name().data(),
                      ToSeconds(report.Total()), ToSeconds(report.boot_vm),
                      ToSeconds(report.start_anonymizer));
        } else {
          std::printf("error: %s\n", nym.status().ToString().c_str());
        }
        done = true;
      });
      bed.sim().RunUntil([&] { return done; });
    } else if (command == "visit") {
      std::string name, site_name;
      in >> name >> site_name;
      Nym* nym = bed.manager().FindNym(name);
      if (nym == nullptr) {
        std::printf("error: no nym '%s'\n", name.c_str());
        continue;
      }
      Website& site = bed.sites().ByName(site_name);
      bool done = false;
      SimTime start = bed.sim().now();
      nym->browser()->Visit(site, [&](Result<SimTime> result) {
        if (result.ok()) {
          std::printf("loaded %s in %.1fs; tracker saw source=%s\n",
                      site.profile().domain.c_str(), ToSeconds(bed.sim().now() - start),
                      site.tracker_log().back().observed_source.ToString().c_str());
        } else {
          std::printf("error: %s\n", result.status().ToString().c_str());
        }
        done = true;
      });
      bed.sim().RunUntil([&] { return done; });
    } else if (command == "login") {
      std::string name, site_name, account, password;
      in >> name >> site_name >> account >> password;
      Nym* nym = bed.manager().FindNym(name);
      if (nym == nullptr) {
        std::printf("error: no nym '%s'\n", name.c_str());
        continue;
      }
      bool done = false;
      nym->browser()->Login(bed.sites().ByName(site_name), account, password,
                            [&](Result<SimTime> result) {
                              std::printf(result.ok() ? "logged in as %s\n" : "error: %s\n",
                                          result.ok()
                                              ? account.c_str()
                                              : result.status().ToString().c_str());
                              done = true;
                            });
      bed.sim().RunUntil([&] { return done; });
    } else if (command == "account") {
      std::string user, password;
      in >> user >> password;
      Status status = bed.cloud().CreateAccount(user, password);
      std::printf(status.ok() ? "cloud account '%s' created\n" : "error: %s\n",
                  status.ok() ? user.c_str() : status.ToString().c_str());
    } else if (command == "save") {
      std::string name, user, cloud_password, nym_password;
      in >> name >> user >> cloud_password >> nym_password;
      Nym* nym = bed.manager().FindNym(name);
      if (nym == nullptr) {
        std::printf("error: no nym '%s'\n", name.c_str());
        continue;
      }
      bool done = false;
      bed.manager().SaveNymToCloud(*nym, bed.cloud(), user, cloud_password, nym_password,
                                   [&](Result<SaveReceipt> receipt) {
                                     if (receipt.ok()) {
                                       std::printf("saved '%s': %s encrypted (seq %u, "
                                                   "AnonVM %.0f%%)\n",
                                                   name.c_str(),
                                                   FormatSize(receipt->logical_size).c_str(),
                                                   receipt->sequence,
                                                   100 * receipt->anonvm_fraction);
                                     } else {
                                       std::printf("error: %s\n",
                                                   receipt.status().ToString().c_str());
                                     }
                                     done = true;
                                   });
      bed.sim().RunUntil([&] { return done; });
    } else if (command == "load") {
      std::string name, user, cloud_password, nym_password;
      in >> name >> user >> cloud_password >> nym_password;
      bool done = false;
      bed.manager().LoadNymFromCloud(
          name, bed.cloud(), user, cloud_password, nym_password, {},
          [&](Result<Nym*> nym, NymStartupReport report) {
            if (nym.ok()) {
              std::printf("restored '%s' in %.1fs [ephemeral %.1fs, boot %.1fs, "
                          "anonymizer %.1fs]\n",
                          name.c_str(), ToSeconds(report.Total()),
                          ToSeconds(report.ephemeral_nym), ToSeconds(report.boot_vm),
                          ToSeconds(report.start_anonymizer));
            } else {
              std::printf("error: %s\n", nym.status().ToString().c_str());
            }
            done = true;
          });
      bed.sim().RunUntil([&] { return done; });
    } else if (command == "terminate") {
      std::string name;
      in >> name;
      Nym* nym = bed.manager().FindNym(name);
      if (nym == nullptr) {
        std::printf("error: no nym '%s'\n", name.c_str());
        continue;
      }
      Status status = bed.manager().TerminateNym(nym);
      std::printf(status.ok() ? "terminated '%s' (memory wiped)\n" : "error: %s\n",
                  status.ok() ? name.c_str() : status.ToString().c_str());
    } else if (command == "probe") {
      std::string name;
      in >> name;
      Nym* nym = bed.manager().FindNym(name);
      if (nym == nullptr) {
        std::printf("error: no nym '%s'\n", name.c_str());
        continue;
      }
      LeakProbeResult result = ProbeAnonVmIsolation(bed.sim(), bed.host(), *nym, nullptr);
      std::printf("probes: %zu sent, %zu answered, %llu dropped by CommVM -> %s\n",
                  result.probes_sent, result.responses_received,
                  static_cast<unsigned long long>(result.dropped_by_commvm),
                  result.responses_received == 0 ? "ISOLATED" : "LEAK!");
    } else if (command == "resolve") {
      std::string name, domain;
      in >> name >> domain;
      Nym* nym = bed.manager().FindNym(name);
      if (nym == nullptr) {
        std::printf("error: no nym '%s'\n", name.c_str());
        continue;
      }
      bool done = false;
      nym->dns()->Resolve(domain, [&](Result<Ipv4Address> ip) {
        std::printf(ip.ok() ? "%s -> %s (via %s)\n" : "error: %s\n",
                    ip.ok() ? domain.c_str() : ip.status().ToString().c_str(),
                    ip.ok() ? ip->ToString().c_str() : "",
                    DnsProxy::TransportName(nym->dns()->transport()).data());
        done = true;
      });
      bed.sim().RunUntil([&] { return done; });
    } else if (command == "status") {
      bed.host().ksm().ScanNow();
      std::printf("t=%.1fs | nyms: %zu | host memory %s / %s | KSM saved %s\n",
                  ToSeconds(bed.sim().now()), bed.manager().nyms().size(),
                  FormatSize(bed.host().UsedMemoryBytes()).c_str(),
                  FormatSize(bed.host().config().ram_bytes).c_str(),
                  FormatSize(bed.host().ksm().stats().bytes_saved()).c_str());
      for (Nym* nym : bed.manager().nyms()) {
        std::printf("  %-16s %-10s %-12s seq=%u\n", nym->name().c_str(),
                    nym->anonymizer()->Name().data(), NymModeName(nym->mode()).data(),
                    nym->save_sequence());
      }
      CaptureAudit audit = AuditUplinkCapture(capture);
      std::printf("  uplink audit: %s |", audit.Passed() ? "PASS" : "FAIL");
      for (const auto& [annotation, count] : audit.histogram) {
        std::printf(" %s=%zu", annotation.c_str(), count);
      }
      std::printf("\n");
    } else {
      std::printf("unknown command '%s' (try 'help')\n", command.c_str());
    }
  }
  std::printf("nymix> session over at t=%.1fs; %zu nyms left running\n",
              ToSeconds(bed.sim().now()), bed.manager().nyms().size());
  return 0;
}
