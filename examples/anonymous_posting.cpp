// Anonymous posting through Dissent (§3.3/§4.1 + §7's Buddies plan): a
// nym joins a DC-net group, checks the Buddies anonymity-set policy, and
// posts a message through a REAL XOR-combined round — then a disruptor
// jams a round and the blame audit unmasks them.
//
//   ./build/examples/anonymous_posting
#include <cstdio>
#include <set>

#include "src/core/metrics.h"
#include "src/core/testbed.h"

using namespace nymix;

int main() {
  Testbed bed(/*seed=*/17);
  std::printf("== Posting through a live DC-net round ==\n\n");

  NymManager::CreateOptions options;
  options.anonymizer = AnonymizerKind::kDissent;
  Nym* nym = bed.CreateNymBlocking("speaker", options);
  auto* dissent = static_cast<DissentClient*>(nym->anonymizer());
  std::printf("joined DC-net group: member %zu of %zu, slot %zu (shuffled per round)\n",
              *dissent->member_index(), bed.dissent().config().group_size, *dissent->slot());

  // Buddies gate (§7): refuse to post when the anonymity set is too small.
  IntersectionObserver adversary;
  adversary.RecordRound({"bob", "farid", "zarina", "gulya"}, true);
  BuddiesPolicy policy(3);
  std::set<std::string> online = {"bob", "farid", "zarina", "rustam"};
  std::printf("Buddies projected anonymity set: %zu (threshold %zu) -> %s\n\n",
              policy.ProjectedSetSize(adversary, online), policy.threshold(),
              policy.MayPost(adversary, online) ? "posting" : "BLOCKED");
  NYMIX_CHECK(policy.MayPost(adversary, online));

  // The actual round: everyone else transmits cover ciphertexts; the
  // message is recovered only from the combined XOR.
  Result<Bytes> mixed = InternalError("pending");
  bool done = false;
  SimTime start = bed.sim().now();
  dissent->PostAnonymousMessage(BytesFromString("rally at nine, bring candles"),
                                [&](Result<Bytes> r) {
                                  mixed = std::move(r);
                                  done = true;
                                });
  bed.sim().RunUntil([&] { return done; });
  NYMIX_CHECK(mixed.ok());
  std::printf("round output (slot payload): \"%s\"\n", StringFromBytes(*mixed).c_str());
  std::printf("round latency: %.2f s (batching interval %.2f s)\n\n",
              ToSeconds(bed.sim().now() - start),
              ToSeconds(bed.dissent().config().round_interval));

  // A disruptor jams the next round; checksums catch it and the
  // seed-reveal audit names the culprit.
  DcNetGroup& group = bed.dissent().dcnet();
  uint64_t round = 99;
  auto slots = group.SlotPermutation(round);
  std::vector<Bytes> messages(group.member_count());
  messages[2] = BytesFromString("another message");
  auto jammed = group.RunRound(messages, slots, round, /*disruptor=*/7);
  std::printf("disrupted round: %zu corrupted slot(s) detected\n",
              jammed.corrupted_slots.size());

  std::vector<Bytes> transmitted;
  for (size_t member = 0; member < group.member_count(); ++member) {
    transmitted.push_back(
        *group.MemberCiphertext(member, slots[member], messages[member], round));
  }
  Prng noise(Mix64(round ^ 0xbadc0deULL));
  for (auto& byte : transmitted[7]) {
    byte ^= static_cast<uint8_t>(noise.NextBelow(256));
  }
  auto blamed = group.Blame(transmitted, messages, slots, round);
  std::printf("blame audit (seeds revealed, anonymity of that round sacrificed): ");
  for (size_t member : blamed) {
    std::printf("member %zu ", member);
  }
  std::printf("expelled\n");

  NYMIX_CHECK(bed.manager().TerminateNym(nym).ok());
  std::printf("\ndone at virtual t=%.1f s\n", ToSeconds(bed.sim().now()));
  return 0;
}
