// Installed OS as a nym (§3.7): boot the machine's own Windows inside a
// copy-on-write nymbox — reuse its WiFi credentials and files, leave the
// physical disk untouched, and keep deniability. Reproduces the Table 1
// costs interactively and shows the SaniVM pulling a document off the
// installed OS for a pseudonymous nym.
//
//   ./build/examples/installed_os_nym
#include <cstdio>

#include "src/core/testbed.h"

using namespace nymix;

int main() {
  Testbed bed(/*seed=*/5);
  std::printf("== Booting the installed Windows 7 as a nym ==\n\n");

  InstalledOsNymService service(bed.manager());
  auto media = MakeInstalledOsMedia(InstalledOsKind::kWindows7, 1234);
  uint64_t disk_before = media.disk->TotalBytes();

  Nym* os_nym = nullptr;
  InstalledOsReport report;
  bool booted = false;
  service.BootAsNym(media, [&](Result<Nym*> nym, InstalledOsReport r) {
    NYMIX_CHECK_MSG(nym.ok(), nym.status().ToString().c_str());
    os_nym = *nym;
    report = r;
    booted = true;
  });
  bed.sim().RunUntil([&] { return booted; });

  std::printf("%-14s repair %.1f s   boot %.1f s   COW delta %.1f MB\n",
              InstalledOsKindName(media.profile.kind).data(), report.repair_seconds,
              report.boot_seconds, static_cast<double>(report.cow_bytes) / kMiB);
  std::printf("physical disk untouched: %s (before %s, after %s)\n",
              media.disk->TotalBytes() == disk_before ? "yes" : "NO (bug)",
              FormatSize(disk_before).c_str(), FormatSize(media.disk->TotalBytes()).c_str());
  std::printf("network mode: %s (installed-OS nyms are deliberately non-anonymous)\n\n",
              os_nym->anonymizer()->Name().data());

  // The point of §3.7: reach files and network state the user already has.
  auto wifi = media.disk->ReadFile("/ProgramData/wifi/profiles.xml");
  std::printf("reusable WiFi profile found: %s\n",
              wifi.ok() ? StringFromBytes(wifi->Materialize()).c_str() : "(missing)");

  // Transfer a document from the installed OS to a pseudonymous nym — only
  // through the SaniVM, and only after scrubbing (§3.6).
  SaniService sani(bed.manager());
  bool sani_ready = false;
  sani.Start([&](SimTime) { sani_ready = true; });
  bed.sim().RunUntil([&] { return sani_ready; });
  NYMIX_CHECK(sani.MountHostFilesystem("installed-os", media.disk).ok());

  DocFile memo;
  memo.properties.creator = "Alice Freetopian";
  memo.properties.company = "MegaCorp";
  memo.properties.revision = 12;
  memo.paragraphs = {"Quarterly numbers look fine.", "Ship the release Friday."};
  memo.hidden_runs = {"deleted: salary table attached"};
  auto host_disk = media.disk;
  NYMIX_CHECK(
      host_disk->WriteFile("/Users/user/Documents/memo.doc", Blob::FromBytes(EncodeDoc(memo)))
          .ok());

  Nym* pseudonym = bed.CreateNymBlocking("forum-voice");
  NYMIX_CHECK(sani.RegisterNym(*pseudonym).ok());
  auto risks = sani.AnalyzeHostFile("installed-os", "/Users/user/Documents/memo.doc");
  std::printf("document risks before scrub: %s\n", risks->Summary().c_str());
  ScrubOptions options;
  options.level = ParanoiaLevel::kRasterize;  // document -> bitmaps
  auto outcome =
      sani.TransferToNym(*pseudonym, "installed-os", "/Users/user/Documents/memo.doc", options);
  NYMIX_CHECK_MSG(outcome.ok(), outcome.status().ToString().c_str());
  auto transferred =
      (*pseudonym->anon_vm()->GetShare("incoming"))->ReadFile(outcome->guest_path);
  auto pages = UnbundleRasterPages(transferred->bytes());
  std::printf("transferred as %zu bitmap page(s); author/company/hidden text gone\n\n",
              pages->size());

  NYMIX_CHECK(bed.manager().TerminateNym(pseudonym).ok());
  NYMIX_CHECK(bed.manager().TerminateNym(os_nym).ok());
  std::printf("done at virtual t=%.1f s; installed OS will boot clean on bare metal\n",
              ToSeconds(bed.sim().now()));
  return 0;
}
