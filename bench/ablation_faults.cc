// Ablation (ours, motivated by §5.1/§3.5's robustness claims): how Nymix
// degrades under injected faults. Three phases:
//   1. Loss sweep — seeded packet loss on the host uplink vs Tor fetch
//      success rate and latency. Retries (FlowOptions + RetryWithBackoff)
//      ride out low loss; above the abort knee every fetch fails with a
//      clean Status instead of hanging.
//   2. Relay crash — the destination's bound exit crashes; the next fetch
//      stalls, fails over to a fresh exit, and completes.
//   3. VM crash + recovery — InjectCrash kills both nymbox VMs mid-session;
//      RecoverNym rebuilds from the saved writable layers with the same
//      entry guard (§3.5).
#include <cstdio>

#include "bench/bench_stats.h"
#include "src/core/testbed.h"

using namespace nymix;

namespace {

struct FetchStats {
  int attempts = 0;
  int successes = 0;
  double total_success_seconds = 0.0;

  double success_rate() const {
    return attempts == 0 ? 0.0 : static_cast<double>(successes) / attempts;
  }
  double mean_success_seconds() const {
    return successes == 0 ? 0.0 : total_success_seconds / successes;
  }
};

// One blocking fetch through the nym's anonymizer; returns ok-ness.
bool FetchBlocking(Testbed& bed, Nym* nym, const std::string& host, double* seconds) {
  bool done = false;
  bool ok = false;
  SimTime start = bed.sim().now();
  nym->anonymizer()->Fetch(host, 2 * kKiB, 200 * kKiB, [&](Result<FetchReceipt> receipt) {
    ok = receipt.ok();
    done = true;
  });
  bed.sim().RunUntil([&] { return done; });
  *seconds = ToSeconds(bed.sim().now() - start);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  BenchStats stats("ablation_faults", argc, argv);

  // ---- Phase 1: loss sweep -------------------------------------------
  std::printf("# Fault ablation: uplink loss vs Tor fetch outcome (200 KiB, 12 fetches)\n");
  std::printf("%-10s %10s %12s %16s\n", "loss", "success", "rate", "mean latency(s)");
  const double loss_levels[] = {0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40};
  constexpr int kFetches = 12;
  for (double loss : loss_levels) {
    Testbed bed(/*seed=*/Mix64(Fnv1a64("ablation_faults") ^
                               static_cast<uint64_t>(loss * 1000)));
    stats.Attach(bed.sim());
    Nym* nym = bed.CreateNymBlocking("sweep");
    // Loss begins after bootstrap: the sweep isolates fetch-path
    // robustness (bootstrap under loss is the relay-crash phase's story).
    LinkFaultProfile profile;
    profile.loss_probability = loss;
    bed.host().uplink()->SetFaultProfile(profile,
                                         bed.sim().faults().SeedFor("host.uplink"));
    FetchStats fetch_stats;
    const std::string host = bed.sites().ByName("BBC").profile().domain;
    for (int i = 0; i < kFetches; ++i) {
      double seconds = 0.0;
      ++fetch_stats.attempts;
      if (FetchBlocking(bed, nym, host, &seconds)) {
        ++fetch_stats.successes;
        fetch_stats.total_success_seconds += seconds;
      }
    }
    std::printf("%-10.2f %6d/%-3d %11.0f%% %16.1f\n", loss, fetch_stats.successes,
                fetch_stats.attempts, fetch_stats.success_rate() * 100.0,
                fetch_stats.mean_success_seconds());
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "loss_%02d.", static_cast<int>(loss * 100));
    stats.Set(std::string(prefix) + "success_rate", fetch_stats.success_rate());
    stats.Set(std::string(prefix) + "mean_latency_s", fetch_stats.mean_success_seconds());
  }
  std::printf("# Below the ~20%% knee retries ride out loss; above it the x4 abort\n");
  std::printf("# multiplier dooms every attempt and fetches fail with a clean Status.\n\n");

  // ---- Phase 2: exit relay crash + failover --------------------------
  {
    Testbed bed(/*seed=*/Fnv1a64("ablation_faults.relay"));
    stats.Attach(bed.sim());
    Nym* nym = bed.CreateNymBlocking("crashy");
    auto* tor = static_cast<TorClient*>(nym->anonymizer());
    const std::string host = bed.sites().ByName("BBC").profile().domain;
    double baseline_s = 0.0;
    NYMIX_CHECK(FetchBlocking(bed, nym, host, &baseline_s));
    size_t bound_exit = tor->ExitIndexForDestination(host);
    bed.tor().CrashRelay(bound_exit);
    double failover_s = 0.0;
    bool recovered = FetchBlocking(bed, nym, host, &failover_s);
    bed.tor().RestartRelay(bound_exit);
    std::printf("# Exit-crash failover: baseline fetch %.1f s, post-crash fetch %s in %.1f s\n",
                baseline_s, recovered ? "recovered" : "FAILED", failover_s);
    std::printf("#   (stall timeout + backoff + fresh exit; stream isolation kept)\n\n");
    stats.Set("relay_crash.baseline_s", baseline_s);
    stats.Set("relay_crash.failover_s", failover_s);
    stats.Set("relay_crash.recovered", recovered ? 1.0 : 0.0);
    NYMIX_CHECK_MSG(recovered, "fetch did not recover from exit crash");
  }

  // ---- Phase 3: VM crash + NymManager recovery ------------------------
  {
    Testbed bed(/*seed=*/Fnv1a64("ablation_faults.vmcrash"));
    stats.Attach(bed.sim());
    NymManager::CreateOptions options;
    options.guard_seed = 77;
    Nym* nym = bed.CreateNymBlocking("phoenix", options);
    auto* tor = static_cast<TorClient*>(nym->anonymizer());
    size_t guard_before = *tor->entry_guard_index();
    NYMIX_CHECK(bed.manager().CheckpointNym(*nym).ok());
    bed.manager().InjectCrash(*nym);
    SimTime crash_at = bed.sim().now();
    NymStartupReport report;
    auto recovered = bed.RecoverNymBlocking(nym, &report);
    NYMIX_CHECK_MSG(recovered.ok(), recovered.status().ToString().c_str());
    auto* fresh_tor = static_cast<TorClient*>((*recovered)->anonymizer());
    bool guard_kept = *fresh_tor->entry_guard_index() == guard_before;
    double recovery_s = ToSeconds(bed.sim().now() - crash_at);
    std::printf("# VM crash recovery: %.1f s (boot %.1f s + warm anonymizer %.1f s), guard %s\n",
                recovery_s, ToSeconds(report.boot_vm), ToSeconds(report.start_anonymizer),
                guard_kept ? "preserved" : "LOST");
    stats.Set("vm_crash.recovery_s", recovery_s);
    stats.Set("vm_crash.boot_vm_s", ToSeconds(report.boot_vm));
    stats.Set("vm_crash.start_anonymizer_s", ToSeconds(report.start_anonymizer));
    stats.Set("vm_crash.guard_preserved", guard_kept ? 1.0 : 0.0);
    NYMIX_CHECK_MSG(guard_kept, "entry guard lost across crash recovery");
  }

  return stats.Finish();
}
