// Union filesystem micro-benchmarks: the copy-on-write layer is on every
// guest I/O path, and archive serialization bounds save-cycle cost.
#include <benchmark/benchmark.h>

#include "src/unionfs/disk_image.h"
#include "src/unionfs/serialize.h"

namespace nymix {
namespace {

std::shared_ptr<BaseImage> Image() {
  static std::shared_ptr<BaseImage> image =
      BaseImage::CreateDistribution("bench", 1, 16 * kMiB);
  return image;
}

void BM_UnionReadThroughLayers(benchmark::State& state) {
  VmDisk disk(Image(), nullptr, 64 * kMiB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.fs().ReadFile("/etc/os-release"));
  }
}
BENCHMARK(BM_UnionReadThroughLayers);

void BM_UnionWriteCow(benchmark::State& state) {
  VmDisk disk(Image(), nullptr, 1024 * kMiB);
  uint64_t i = 0;
  for (auto _ : state) {
    uint64_t index = i++;
    benchmark::DoNotOptimize(disk.WriteFile("/cache/f" + std::to_string(index % 1000),
                                            Blob::Synthetic(8192, index)));
  }
}
BENCHMARK(BM_UnionWriteCow);

void BM_WhiteoutUnlink(benchmark::State& state) {
  VmDisk disk(Image(), nullptr, 64 * kMiB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.fs().Unlink("/etc/hostname"));
    disk.DiscardWritable();
  }
}
BENCHMARK(BM_WhiteoutUnlink);

void BM_SerializeWritableLayer(benchmark::State& state) {
  MemFs fs;
  for (int64_t i = 0; i < state.range(0); ++i) {
    NYMIX_CHECK(fs.WriteFile("/cache/f" + std::to_string(i),
                             Blob::Synthetic(64 * kKiB, static_cast<uint64_t>(i)))
                    .ok());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeMemFs(fs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SerializeWritableLayer)->Arg(100)->Arg(1000);

void BM_MerkleVerifyImageBlock(benchmark::State& state) {
  auto image = Image();
  uint64_t block = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(image->VerifyBlock(block++ % image->block_count()));
  }
}
BENCHMARK(BM_MerkleVerifyImageBlock);

}  // namespace
}  // namespace nymix

BENCHMARK_MAIN();
