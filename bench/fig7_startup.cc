// Figure 7: "Average startup time by phase for each initial configuration"
// — fresh, pre-configured, and persisted nyms, each ending with a Twitter
// page load. Phases: Boot VM, Start Tor, Load webpage, plus the one-shot
// Ephemeral Nym used to download quasi-persistent state from the cloud.
// Five executions per configuration are averaged, as in §5.4.
#include <cstdio>
#include <vector>

#include "bench/bench_stats.h"
#include "src/core/testbed.h"

using namespace nymix;

namespace {

struct Phases {
  double ephemeral = 0;
  double boot = 0;
  double tor = 0;
  double page = 0;
  double Total() const { return ephemeral + boot + tor + page; }
};

Phases Average(const std::vector<Phases>& runs) {
  Phases avg;
  for (const Phases& run : runs) {
    avg.ephemeral += run.ephemeral;
    avg.boot += run.boot;
    avg.tor += run.tor;
    avg.page += run.page;
  }
  double n = static_cast<double>(runs.size());
  avg.ephemeral /= n;
  avg.boot /= n;
  avg.tor /= n;
  avg.page /= n;
  return avg;
}

double PageLoadSeconds(Testbed& bed, Nym* nym) {
  SimTime start = bed.sim().now();
  auto visit = bed.VisitBlocking(nym, bed.sites().ByName("Twitter"));
  NYMIX_CHECK_MSG(visit.ok(), visit.status().ToString().c_str());
  return ToSeconds(bed.sim().now() - start);
}

}  // namespace

int main(int argc, char** argv) {
  BenchStats stats("fig7_startup", argc, argv);
  constexpr int kRuns = 5;
  std::vector<Phases> fresh_runs, preconfig_runs, persisted_runs;

  for (int run = 0; run < kRuns; ++run) {
    // --- Fresh: new nym, cold Tor, visit, discard. ----------------------
    {
      Testbed bed(/*seed=*/200 + run);
      stats.Attach(bed.sim());
      NymStartupReport report;
      Nym* nym = bed.CreateNymBlocking("fresh", {}, &report);
      Phases phases;
      phases.boot = ToSeconds(report.boot_vm);
      phases.tor = ToSeconds(report.start_anonymizer);
      phases.page = PageLoadSeconds(bed, nym);
      fresh_runs.push_back(phases);
    }

    // --- Pre-configured: snapshot once, then always load that snapshot
    //     (state is never updated after the session). ---------------------
    {
      Testbed bed(/*seed=*/300 + run);
      stats.Attach(bed.sim());
      NYMIX_CHECK(bed.cloud().CreateAccount("user", "cpw").ok());
      Nym* nym = bed.CreateNymBlocking("preconf");
      bool logged = false;
      nym->browser()->Login(bed.sites().ByName("Twitter"), "acct", "pw",
                            [&](Result<SimTime>) { logged = true; });
      bed.sim().RunUntil([&] { return logged; });
      NYMIX_CHECK(bed.SaveBlocking(nym, "user", "cpw", "npw").ok());
      NYMIX_CHECK(bed.manager().TerminateNym(nym).ok());

      NymStartupReport report;
      auto restored = bed.LoadBlocking("preconf", "user", "cpw", "npw", {}, &report);
      NYMIX_CHECK(restored.ok());
      Phases phases;
      phases.ephemeral = ToSeconds(report.ephemeral_nym);
      phases.boot = ToSeconds(report.boot_vm);
      phases.tor = ToSeconds(report.start_anonymizer);
      phases.page = PageLoadSeconds(bed, *restored);
      preconfig_runs.push_back(phases);
      // Pre-configured: changes are discarded, no save-back.
    }

    // --- Persisted: like pre-configured but each session saves back, so
    //     the downloaded state is larger (browser cache accumulates). -----
    {
      Testbed bed(/*seed=*/400 + run);
      stats.Attach(bed.sim());
      NYMIX_CHECK(bed.cloud().CreateAccount("user", "cpw").ok());
      Nym* nym = bed.CreateNymBlocking("persist");
      bool logged = false;
      nym->browser()->Login(bed.sites().ByName("Twitter"), "acct", "pw",
                            [&](Result<SimTime>) { logged = true; });
      bed.sim().RunUntil([&] { return logged; });
      NYMIX_CHECK(bed.VisitBlocking(nym, bed.sites().ByName("Twitter")).ok());
      NYMIX_CHECK(bed.SaveBlocking(nym, "user", "cpw", "npw").ok());
      NYMIX_CHECK(bed.manager().TerminateNym(nym).ok());
      // A couple of growth cycles before timing, as in §5.3's protocol.
      for (int cycle = 0; cycle < 2; ++cycle) {
        auto r = bed.LoadBlocking("persist", "user", "cpw", "npw");
        NYMIX_CHECK(r.ok());
        NYMIX_CHECK(bed.VisitBlocking(*r, bed.sites().ByName("Twitter")).ok());
        NYMIX_CHECK(bed.SaveBlocking(*r, "user", "cpw", "npw").ok());
        NYMIX_CHECK(bed.manager().TerminateNym(*r).ok());
      }

      NymStartupReport report;
      auto restored = bed.LoadBlocking("persist", "user", "cpw", "npw", {}, &report);
      NYMIX_CHECK(restored.ok());
      Phases phases;
      phases.ephemeral = ToSeconds(report.ephemeral_nym);
      phases.boot = ToSeconds(report.boot_vm);
      phases.tor = ToSeconds(report.start_anonymizer);
      phases.page = PageLoadSeconds(bed, *restored);
      persisted_runs.push_back(phases);
      // Persisted nyms save changes back after the session.
      auto save = bed.SaveBlocking(*restored, "user", "cpw", "npw");
      NYMIX_CHECK(save.ok());
    }
  }

  Phases fresh = Average(fresh_runs);
  Phases preconf = Average(preconfig_runs);
  Phases persisted = Average(persisted_runs);

  std::printf("# Figure 7: average startup time (s) by phase, %d runs each\n", kRuns);
  std::printf("%-14s %10s %10s %10s %12s %8s\n", "config", "boot_vm", "start_tor",
              "load_page", "ephemeral", "total");
  auto row = [](const char* name, const Phases& p) {
    std::printf("%-14s %10.1f %10.1f %10.1f %12.1f %8.1f\n", name, p.boot, p.tor, p.page,
                p.ephemeral, p.Total());
  };
  row("fresh", fresh);
  row("pre-config.", preconf);
  row("persisted", persisted);

  std::printf("\n# quasi-persistent nyms beat fresh on Start Tor (stored entry guards and\n"
              "# cached consensus) but pay for the one-time ephemeral download nym (§5.4)\n");

  stats.SetLabel("figure", "7");
  stats.Set("runs", kRuns);
  auto emit = [&stats](const char* config, const Phases& p) {
    std::string prefix = std::string(config) + ".";
    stats.Set(prefix + "ephemeral_nym_s", p.ephemeral);
    stats.Set(prefix + "boot_vm_s", p.boot);
    stats.Set(prefix + "start_tor_s", p.tor);
    stats.Set(prefix + "load_page_s", p.page);
    stats.Set(prefix + "total_s", p.Total());
  };
  emit("fresh", fresh);
  emit("preconfigured", preconf);
  emit("persisted", persisted);
  return stats.Finish();
}
