// Ablation (ours, motivated by §3.3/§4.1's pluggable-anonymizer design):
// the security/performance trade-off across the supported communication
// tools — bootstrap cost, 5 MB fetch time, wire overhead, and whether the
// destination learns the user's network identity.
#include <cstdio>

#include "bench/bench_stats.h"
#include "src/core/testbed.h"

using namespace nymix;

int main(int argc, char** argv) {
  BenchStats stats("ablation_anonymizers", argc, argv);
  std::printf("# Anonymizer ablation: bootstrap / 5 MB fetch / overhead / identity\n");
  std::printf("%-12s %12s %12s %10s %18s\n", "tool", "bootstrap(s)", "fetch 5MB(s)",
              "overhead", "identity exposed?");

  struct Row {
    const char* name;
    AnonymizerKind kind;
  };
  const Row rows[] = {
      {"incognito", AnonymizerKind::kIncognito},
      {"tor", AnonymizerKind::kTor},
      {"dissent", AnonymizerKind::kDissent},
      {"sweet", AnonymizerKind::kSweet},
      {"tor+dissent", AnonymizerKind::kChained},
  };

  for (const Row& row : rows) {
    Testbed bed(/*seed=*/Fnv1a64(row.name));
    stats.Attach(bed.sim());
    NymManager::CreateOptions options;
    options.anonymizer = row.kind;
    NymStartupReport report;
    Nym* nym = bed.CreateNymBlocking(std::string("ablate-") + row.name, options, &report);

    SimTime start = bed.sim().now();
    bool done = false;
    nym->anonymizer()->Fetch(bed.sites().ByName("BBC").profile().domain, 0, 5 * 1000 * 1000,
                             [&](Result<FetchReceipt> receipt) {
                               NYMIX_CHECK_MSG(receipt.ok(),
                                               receipt.status().ToString().c_str());
                               done = true;
                             });
    bed.sim().RunUntil([&] { return done; });
    double fetch_seconds = ToSeconds(bed.sim().now() - start);

    std::printf("%-12s %12.1f %12.1f %9.2fx %18s\n", row.name,
                ToSeconds(report.start_anonymizer), fetch_seconds,
                nym->anonymizer()->OverheadFactor(),
                nym->anonymizer()->ProtectsNetworkIdentity() ? "no" : "YES");
    std::string prefix = std::string(row.name) + ".";
    stats.Set(prefix + "bootstrap_s", ToSeconds(report.start_anonymizer));
    stats.Set(prefix + "fetch_5mb_s", fetch_seconds);
    stats.Set(prefix + "overhead_factor", nym->anonymizer()->OverheadFactor());
  }

  std::printf("\n# incognito: fast, zero network protection (IPTables masquerade, §4.1)\n");
  std::printf("# tor: the default; dissent: DC-net costs, strongest traffic analysis story\n");
  std::printf("# tor+dissent: §3.3's \"best of both worlds\" serial composition\n");
  return stats.Finish();
}
