// Figure 5: "Time to download the Linux kernel with many nyms downloading
// in parallel." Each nym runs its own Tor instance; the host uplink is the
// DeterLab-style 10 Mbit/s, 80 ms RTT bottleneck. Ideal = N x (tarball /
// 10 Mbit); actual pays the per-flow Tor cell overhead (~12%, §5.2).
#include <cstdio>
#include <vector>

#include "bench/bench_stats.h"
#include "src/core/testbed.h"

using namespace nymix;

int main(int argc, char** argv) {
  BenchStats stats("fig5_bandwidth", argc, argv);
  std::printf("# Figure 5: kernel (linux-3.14.2, %s) download time vs parallel nyms\n",
              FormatSize(kLinuxKernelTarballBytes).c_str());
  std::printf("%-5s %12s %12s %12s\n", "nyms", "actual(s)", "ideal(s)", "overhead");

  double single_ideal =
      static_cast<double>(kLinuxKernelTarballBytes) * 8 / 10'000'000.0;

  for (int n = 1; n <= 8; ++n) {
    // Fresh deployment per point so earlier downloads don't share circuits.
    Testbed bed(/*seed=*/100 + n);
    stats.Attach(bed.sim());
    std::vector<Nym*> nyms;
    for (int i = 0; i < n; ++i) {
      nyms.push_back(bed.CreateNymBlocking("dl-" + std::to_string(i)));
    }
    // Start all downloads at the same instant.
    std::vector<double> times;
    for (Nym* nym : nyms) {
      DownloadKernel(*nym->anonymizer(), bed.mirror(), bed.sim(), [&](Result<double> elapsed) {
        NYMIX_CHECK_MSG(elapsed.ok(), elapsed.status().ToString().c_str());
        times.push_back(*elapsed);
      });
    }
    bed.sim().RunUntil([&] { return times.size() == static_cast<size_t>(n); });
    double last = 0;
    for (double t : times) {
      last = std::max(last, t);
    }
    double ideal = single_ideal * n;
    std::printf("%-5d %12.1f %12.1f %11.1f%%\n", n, last, ideal, 100.0 * (last - ideal) / ideal);
    stats.Set("download_s_nyms_" + std::to_string(n), last);
    stats.Set("overhead_pct_nyms_" + std::to_string(n), 100.0 * (last - ideal) / ideal);
  }

  std::printf("\n# overhead is flat in N: Tor's cost is a fixed per-byte factor (paper: ~12%%)\n");

  stats.SetLabel("figure", "5");
  return stats.Finish();
}
