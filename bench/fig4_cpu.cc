// Figure 4: "Accumulated values for parallel running instances of
// Peacekeeper running in independent pseudonyms. 0 represents the
// evaluation when run directly on the host."
//
// Expected curve: the single-nym score scaled by perfect core sharing
// (score / max(1, N/4)). Actual beats expected for N > cores because the
// subtests' render/idle gaps interleave across VMs (§5.2).
#include <cstdio>
#include <vector>

#include "bench/bench_stats.h"
#include "src/core/testbed.h"

using namespace nymix;

namespace {

double AverageScore(Testbed& bed, size_t nyms) {
  std::vector<double> scores;
  for (size_t i = 0; i < nyms; ++i) {
    Peacekeeper::Run(bed.host(), /*virtualized=*/true,
                     [&scores](double score) { scores.push_back(score); });
  }
  bed.sim().RunUntil([&] { return scores.size() == nyms; });
  double total = 0;
  for (double score : scores) {
    total += score;
  }
  return total / static_cast<double>(nyms);
}

}  // namespace

int main(int argc, char** argv) {
  BenchStats stats("fig4_cpu", argc, argv);
  Testbed bed(/*seed=*/4);
  stats.Attach(bed.sim());
  std::printf("# Figure 4: average Peacekeeper score vs number of nyms\n");
  std::printf("# quad-core host, virtualization overhead %.0f%%\n",
              100 * bed.host().config().virtualization_overhead);
  std::printf("%-5s %10s %10s\n", "nyms", "actual", "expected");

  // N = 0: native run on the host.
  double native = 0;
  Peacekeeper::Run(bed.host(), /*virtualized=*/false, [&](double score) { native = score; });
  bed.sim().RunUntil([&] { return native > 0; });
  std::printf("%-5d %10.0f %10.0f\n", 0, native, native);

  double single = AverageScore(bed, 1);
  for (size_t n = 1; n <= 8; ++n) {
    double actual = n == 1 ? single : AverageScore(bed, n);
    double expected = Peacekeeper::ExpectedScore(single, n, bed.host().config().cores);
    std::printf("%-5zu %10.0f %10.0f\n", n, actual, expected);
    stats.Set("score_nyms_" + std::to_string(n), actual);
  }

  std::printf("\n# single-nym wall-time overhead vs native: %.1f%% "
              "(paper: \"about a 20%% overhead\")\n",
              100.0 * (native / single - 1.0));
  std::printf("# for N > 4 cores, actual > expected: idle gaps overlap (paper's finding)\n");

  stats.SetLabel("figure", "4");
  stats.Set("score_native", native);
  stats.Set("virtualization_overhead_pct", 100.0 * (native / single - 1.0));
  return stats.Finish();
}
