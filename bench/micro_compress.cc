// nymzip micro-benchmarks: compression/decompression throughput and ratio
// on the content classes nym archives actually contain.
#include <benchmark/benchmark.h>

#include "src/compress/nymzip.h"
#include "src/util/prng.h"

namespace nymix {
namespace {

Bytes TextLike(size_t size) {
  static const std::string kPhrase =
      "user_pref(\"browser.cache.disk.capacity\", 83000); // chromium prefs\n";
  Bytes out;
  while (out.size() < size) {
    out.insert(out.end(), kPhrase.begin(), kPhrase.end());
  }
  out.resize(size);
  return out;
}

Bytes RandomLike(size_t size) {
  Prng prng(7);
  return prng.NextBytes(size);
}

void BM_CompressText(benchmark::State& state) {
  Bytes data = TextLike(static_cast<size_t>(state.range(0)));
  size_t compressed = 0;
  for (auto _ : state) {
    Bytes frame = NymzipCompress(data);
    compressed = frame.size();
    benchmark::DoNotOptimize(frame);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
  state.counters["ratio"] = static_cast<double>(compressed) / static_cast<double>(data.size());
}
BENCHMARK(BM_CompressText)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_CompressRandom(benchmark::State& state) {
  Bytes data = RandomLike(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NymzipCompress(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CompressRandom)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_Decompress(benchmark::State& state) {
  Bytes frame = NymzipCompress(TextLike(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    auto out = NymzipDecompress(frame);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Decompress)->Arg(1024 * 1024);

}  // namespace
}  // namespace nymix

BENCHMARK_MAIN();
