// Micro-benchmarks for the crypto substrate: the archive pipeline's
// throughput justifies the NymManager's archive_processing_bps model
// constant, and PBKDF2 cost shows the password-guessing barrier.
#include <benchmark/benchmark.h>

#include "src/crypto/aead.h"
#include "src/crypto/hmac.h"
#include "src/crypto/merkle.h"
#include "src/crypto/sha256.h"
#include "src/util/prng.h"

namespace nymix {
namespace {

Bytes TestData(size_t size) {
  Prng prng(42);
  return prng.NextBytes(size);
}

void BM_Sha256(benchmark::State& state) {
  Bytes data = TestData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_ChaCha20(benchmark::State& state) {
  Bytes data = TestData(static_cast<size_t>(state.range(0)));
  ChaChaKey key = {};
  ChaChaNonce nonce = {};
  for (auto _ : state) {
    Bytes copy = data;
    ChaCha20XorInPlace(key, nonce, 1, copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_AeadSealOpen(benchmark::State& state) {
  Bytes data = TestData(static_cast<size_t>(state.range(0)));
  ChaChaKey key = {};
  ChaChaNonce nonce = {};
  for (auto _ : state) {
    Bytes sealed = AeadSeal(key, nonce, data, {});
    auto opened = AeadOpen(key, nonce, sealed, {});
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0) * 2);
}
BENCHMARK(BM_AeadSealOpen)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_Pbkdf2(benchmark::State& state) {
  Bytes password = BytesFromString("correct horse battery staple");
  Bytes salt = BytesFromString("my-nym");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Pbkdf2Sha256(password, salt, static_cast<uint32_t>(state.range(0)), 32));
  }
}
BENCHMARK(BM_Pbkdf2)->Arg(256)->Arg(2048);

void BM_MerkleBuild(benchmark::State& state) {
  std::vector<Sha256Digest> leaves;
  for (int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(Sha256::Hash("block" + std::to_string(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::Build(leaves));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MerkleBuild)->Arg(1024)->Arg(16384);

void BM_MerkleVerify(benchmark::State& state) {
  std::vector<Sha256Digest> leaves;
  for (int i = 0; i < 16384; ++i) {
    leaves.push_back(Sha256::Hash("block" + std::to_string(i)));
  }
  MerkleTree tree = MerkleTree::Build(leaves);
  auto proof = tree.ProveLeaf(12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::VerifyProof(tree.root(), leaves[12345], *proof));
  }
}
BENCHMARK(BM_MerkleVerify);

}  // namespace
}  // namespace nymix

BENCHMARK_MAIN();
