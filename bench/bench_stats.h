// Common bench plumbing for machine-readable output. Every figure/table
// bench accepts:
//   --stats-out=<path>   one JSON document per run: headline values set by
//                        the bench plus the full metrics-registry dump
//   --trace-out=<path>   Chrome trace_event JSON covering every attached
//                        simulation (open in chrome://tracing or Perfetto)
//   --trace-format=json|nbt
//                        trace artifact encoding: Chrome JSON (default) or
//                        the compact NBT binary format (src/store/nbt);
//                        tools/nbt2json converts an NBT artifact into the
//                        byte-identical JSON the json format would emit
// Without --stats-out/--trace-out nothing is enabled and every
// instrumentation site in the stack stays on its disabled (null-check) path.
#ifndef BENCH_BENCH_STATS_H_
#define BENCH_BENCH_STATS_H_

#include <map>
#include <string>

#include "src/obs/observability.h"

namespace nymix {

class Simulation;

class BenchStats {
 public:
  // Parses --stats-out= / --trace-out= out of argv; other arguments are
  // left for the bench itself.
  BenchStats(std::string bench_name, int argc, char** argv);

  // Hooks a simulation's event loop into the shared Observability. Call
  // once per simulation; each attached run is laid out after the previous
  // one in the trace, so sequential simulations (which all start at
  // virtual t=0) do not pile up on the origin.
  void Attach(Simulation& sim);

  // Headline values for the stats doc, e.g. Set("fresh.boot_vm_s", 9.8).
  void Set(const std::string& name, double value);
  void SetLabel(const std::string& name, const std::string& value);

  bool stats_requested() const { return !stats_path_.empty(); }
  bool trace_requested() const { return !trace_path_.empty(); }
  // "json" or "nbt" (validated at parse time).
  const std::string& trace_format() const { return trace_format_; }
  Observability& obs() { return obs_; }

  // Writes whichever files were requested. Returns 0, or 1 after printing
  // a diagnostic to stderr on I/O failure — benches fold this into their
  // exit code.
  int Finish();

 private:
  std::string bench_name_;
  std::string stats_path_;
  std::string trace_path_;
  std::string trace_format_ = "json";
  Observability obs_;
  std::map<std::string, double> values_;
  std::map<std::string, std::string> labels_;
};

}  // namespace nymix

#endif  // BENCH_BENCH_STATS_H_
