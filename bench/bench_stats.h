// Common bench plumbing for machine-readable output. Every figure/table
// bench accepts:
//   --stats-out=<path>   one JSON document per run: headline values set by
//                        the bench plus the full metrics-registry dump
//   --trace-out=<path>   Chrome trace_event JSON covering every attached
//                        simulation (open in chrome://tracing or Perfetto)
//   --trace-format=json|nbt
//                        trace artifact encoding: Chrome JSON (default) or
//                        the compact NBT binary format (src/store/nbt);
//                        tools/nbt2json converts an NBT artifact into the
//                        byte-identical JSON the json format would emit
// Without --stats-out/--trace-out nothing is enabled and every
// instrumentation site in the stack stays on its disabled (null-check) path.
#ifndef BENCH_BENCH_STATS_H_
#define BENCH_BENCH_STATS_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/observability.h"

namespace nymix {

class Simulation;

// Canonical JSON emitter for bench artifacts. The writer owns every
// separator and all indentation, so no bench can emit a dangling comma or
// an unbalanced brace no matter which optional sections it skips (the bug
// class scale_fleet's hand-rolled emitter patched point-wise before).
//
// Layout: 2-space pretty printing, one key or array element per line.
// BeginObject(kCompact) renders that object (and everything inside it) on
// a single line — the row format bench artifacts use for point arrays.
class JsonWriter {
 public:
  enum Style { kPretty, kCompact };

  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void BeginObject(Style style = kPretty);
  void EndObject();
  void BeginArray(Style style = kPretty);
  void EndArray();

  // Starts a key inside the current object; the next call writes its value.
  void Key(std::string_view name);

  void String(std::string_view value);
  void Number(double value);
  // Fixed-precision decimal, for fields whose artifact-diff granularity is
  // deliberate (e.g. wall_seconds at 4 places).
  void Number(double value, int precision);
  void Number(uint64_t value);
  void Number(int64_t value);
  void Number(int value) { Number(static_cast<int64_t>(value)); }
  void Bool(bool value);

  // Positions the stream for one externally-rendered value (e.g.
  // MetricsRegistry::WriteJson) and returns it. The caller must write
  // exactly one well-formed JSON value before the next writer call,
  // using indent() as its continuation-line prefix.
  std::ostream& RawValue();

  // Indentation of the line the current value sits on.
  std::string indent() const { return std::string(2 * stack_.size(), ' '); }

  // True once every Begin* has been matched — callers assert this before
  // trusting the artifact.
  bool balanced() const { return stack_.empty() && !pending_key_; }

 private:
  struct Frame {
    bool array = false;
    bool first = true;
    bool compact = false;
  };

  // Emits the separator/indentation owed before a value or key.
  void BeforeValue();
  bool InCompact() const { return !stack_.empty() && stack_.back().compact; }

  std::ostream& out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

class BenchStats {
 public:
  // Parses --stats-out= / --trace-out= out of argv; other arguments are
  // left for the bench itself.
  BenchStats(std::string bench_name, int argc, char** argv);

  // Hooks a simulation's event loop into the shared Observability. Call
  // once per simulation; each attached run is laid out after the previous
  // one in the trace, so sequential simulations (which all start at
  // virtual t=0) do not pile up on the origin.
  void Attach(Simulation& sim);

  // Headline values for the stats doc, e.g. Set("fresh.boot_vm_s", 9.8).
  void Set(const std::string& name, double value);
  void SetLabel(const std::string& name, const std::string& value);

  bool stats_requested() const { return !stats_path_.empty(); }
  bool trace_requested() const { return !trace_path_.empty(); }
  // "json" or "nbt" (validated at parse time).
  const std::string& trace_format() const { return trace_format_; }
  Observability& obs() { return obs_; }

  // Writes whichever files were requested. Returns 0, or 1 after printing
  // a diagnostic to stderr on I/O failure — benches fold this into their
  // exit code.
  int Finish();

 private:
  std::string bench_name_;
  std::string stats_path_;
  std::string trace_path_;
  std::string trace_format_ = "json";
  Observability obs_;
  std::map<std::string, double> values_;
  std::map<std::string, std::string> labels_;
};

}  // namespace nymix

#endif  // BENCH_BENCH_STATS_H_
