// Figure 3: "RAM usage and shared pages with varying number of pseudonyms
// before and after the new pseudonym becomes active."
//
// Protocol (§5.2): launch pseudonyms in succession; after each launch note
// used memory and KSM shared pages, interact with a website (Gmail,
// Twitter, Youtube, Tor Blog, BBC, Facebook, Slashdot, ESPN in order),
// then note both again. The dashed line is the expected per-pseudonym
// allocation (AnonVM 384 MB RAM + 128 MB disk, CommVM 128 MB + 16 MB).
#include <cstdio>

#include "bench/bench_stats.h"
#include "src/core/testbed.h"

using namespace nymix;

int main(int argc, char** argv) {
  BenchStats stats("fig3_memory", argc, argv);
  Testbed bed(/*seed=*/3);
  stats.Attach(bed.sim());
  bed.host().ksm().Start(Seconds(2));

  const char* kVisitOrder[] = {"Gmail", "Twitter",  "Youtube",  "TorBlog",
                               "BBC",   "Facebook", "Slashdot", "ESPN"};

  std::printf("# Figure 3: RAM usage and KSM shared pages vs number of nyms\n");
  std::printf("# host: %u cores, %s RAM, baseline %s\n", bed.host().config().cores,
              FormatSize(bed.host().config().ram_bytes).c_str(),
              FormatSize(bed.host().config().baseline_bytes).c_str());
  std::printf("%-5s %-10s %12s %12s %12s %14s %14s\n", "nyms", "site", "expected(MB)",
              "used_before", "used_after", "shared_before", "shared_after");

  for (int n = 1; n <= 8; ++n) {
    // Launch pseudonym n (incognito keeps the bench about memory, not Tor
    // bootstrap; the memory shape is anonymizer-independent).
    NymManager::CreateOptions options;
    options.anonymizer = AnonymizerKind::kTor;
    Nym* nym = bed.CreateNymBlocking("nym-" + std::to_string(n), options);
    bed.host().ksm().ScanNow();
    uint64_t used_before = bed.host().UsedMemoryBytes();
    uint64_t shared_before = bed.host().ksm().stats().pages_sharing;

    // Interact with the n-th website (sign in where applicable).
    Website& site = bed.sites().ByName(kVisitOrder[n - 1]);
    if (site.profile().supports_login) {
      bool logged = false;
      nym->browser()->Login(site, "user-" + std::to_string(n), "pw",
                            [&](Result<SimTime>) { logged = true; });
      bed.sim().RunUntil([&] { return logged; });
    }
    NYMIX_CHECK(bed.VisitBlocking(nym, site).ok());
    bed.host().ksm().ScanNow();
    uint64_t used_after = bed.host().UsedMemoryBytes();
    uint64_t shared_after = bed.host().ksm().stats().pages_sharing;

    uint64_t expected = bed.host().ReservedMemoryBytes();
    std::printf("%-5d %-10s %12.0f %12.0f %12.0f %14llu %14llu\n", n, kVisitOrder[n - 1],
                static_cast<double>(expected) / kMiB, static_cast<double>(used_before) / kMiB,
                static_cast<double>(used_after) / kMiB,
                static_cast<unsigned long long>(shared_before),
                static_cast<unsigned long long>(shared_after));
  }

  KsmStats final_stats = bed.host().ksm().stats();
  double saving = 100.0 * static_cast<double>(final_stats.bytes_saved()) /
                  static_cast<double>(bed.host().AllocatedMemoryBytes());
  std::printf("\n# at 8 nyms: KSM saves %s (%.1f%% of allocated memory; paper: \"over 5%%\")\n",
              FormatSize(final_stats.bytes_saved()).c_str(), saving);
  std::printf("# per-nymbox expected cost: %s (paper headline: ~600 MB)\n",
              FormatSize(656 * kMiB).c_str());

  stats.SetLabel("figure", "3");
  stats.Set("nyms", 8);
  stats.Set("ksm_bytes_saved", static_cast<double>(final_stats.bytes_saved()));
  stats.Set("ksm_saving_pct", saving);
  stats.Set("used_bytes", static_cast<double>(bed.host().UsedMemoryBytes()));
  stats.Set("allocated_bytes", static_cast<double>(bed.host().AllocatedMemoryBytes()));
  return stats.Finish();
}
