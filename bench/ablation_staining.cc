// Staining ablation (§3.3/§3.5): a hostile site plants an evercookie [38]
// — a stain stored outside the cookie jar that survives "clear cookies".
// The experiment runs three sessions against the stainer under each nym
// usage model and reports how many *distinct browser instances* the
// tracker could distinguish (1 = fully linked, 3 = fully unlinkable):
//
//   in-browser private mode  — same VM, cookies cleared between sessions:
//                              the evercookie survives; fully linked.
//   persistent nym           — state saved after every session: the stain
//                              is faithfully preserved; fully linked
//                              (the paper's stated risk of this mode).
//   pre-configured nym       — every session restores the pre-stain
//                              snapshot: "a malware infection affecting
//                              one browsing session will be scrubbed at
//                              the user's next session".
//   ephemeral nyms           — a fresh nymbox per session; nothing to
//                              stain across sessions.
#include <cstdio>

#include "bench/bench_stats.h"
#include "src/core/testbed.h"

using namespace nymix;

namespace {

WebsiteProfile StainerProfile() {
  WebsiteProfile profile;
  profile.name = "Stainer";
  profile.domain = "tracker.example.com";
  profile.page_bytes = 500 * kKiB;
  profile.revisit_bytes = 200 * kKiB;
  profile.cache_first_bytes = 2 * kMiB;
  profile.cache_revisit_bytes = 512 * kKiB;
  profile.plants_evercookie = true;
  profile.memory_dirty_bytes = 4 * kMiB;
  return profile;
}

size_t Report(const char* model, const Website& site) {
  size_t stains = site.DistinctEvercookies();
  std::printf("%-22s %9zu %16zu   %s\n", model, site.visit_count(), stains,
              stains <= 1 ? "LINKED across sessions" : "unlinkable");
  return stains;
}

}  // namespace

int main(int argc, char** argv) {
  BenchStats stats("ablation_staining", argc, argv);
  std::printf("# Evercookie staining across 3 sessions, per usage model\n");
  std::printf("%-22s %9s %16s   %s\n", "model", "sessions", "distinct stains", "verdict");

  // --- In-browser private mode: one long-lived VM, clear cookies only. ---
  {
    Testbed bed(1);
    Website stainer(bed.sim(), StainerProfile());
    Nym* nym = bed.CreateNymBlocking("private-mode");
    for (int session = 0; session < 3; ++session) {
      NYMIX_CHECK(bed.VisitBlocking(nym, stainer).ok());
      NYMIX_CHECK(nym->browser()->ClearCookies().ok());  // "private browsing"
    }
    stats.Set("private_mode.distinct_stains",
              static_cast<double>(Report("in-browser private", stainer)));
  }

  // --- Persistent nym: save after each session, restore before the next. --
  {
    Testbed bed(2);
    Website stainer(bed.sim(), StainerProfile());
    NYMIX_CHECK(bed.cloud().CreateAccount("u", "cp").ok());
    Nym* nym = bed.CreateNymBlocking("persistent");
    for (int session = 0; session < 3; ++session) {
      NYMIX_CHECK(bed.VisitBlocking(nym, stainer).ok());
      NYMIX_CHECK(bed.SaveBlocking(nym, "u", "cp", "np").ok());
      NYMIX_CHECK(bed.manager().TerminateNym(nym).ok());
      auto restored = bed.LoadBlocking("persistent", "u", "cp", "np");
      NYMIX_CHECK(restored.ok());
      nym = *restored;
    }
    stats.Set("persistent.distinct_stains",
              static_cast<double>(Report("persistent nym", stainer)));
  }

  // --- Pre-configured nym: snapshot BEFORE contact, reload it each time. --
  {
    Testbed bed(3);
    Website stainer(bed.sim(), StainerProfile());
    NYMIX_CHECK(bed.cloud().CreateAccount("u", "cp").ok());
    Nym* nym = bed.CreateNymBlocking("preconf");
    NYMIX_CHECK(bed.SaveBlocking(nym, "u", "cp", "np").ok());  // clean snapshot
    NYMIX_CHECK(bed.manager().TerminateNym(nym).ok());
    for (int session = 0; session < 3; ++session) {
      auto restored = bed.LoadBlocking("preconf", "u", "cp", "np");
      NYMIX_CHECK(restored.ok());
      NYMIX_CHECK(bed.VisitBlocking(*restored, stainer).ok());
      // Session changes deliberately NOT saved back.
      NYMIX_CHECK(bed.manager().TerminateNym(*restored).ok());
    }
    stats.Set("preconfigured.distinct_stains",
              static_cast<double>(Report("pre-configured nym", stainer)));
  }

  // --- Ephemeral nyms: a fresh nymbox per session. ------------------------
  {
    Testbed bed(4);
    Website stainer(bed.sim(), StainerProfile());
    for (int session = 0; session < 3; ++session) {
      Nym* nym = bed.CreateNymBlocking("throwaway-" + std::to_string(session));
      NYMIX_CHECK(bed.VisitBlocking(nym, stainer).ok());
      NYMIX_CHECK(bed.manager().TerminateNym(nym).ok());
    }
    stats.Set("ephemeral.distinct_stains",
              static_cast<double>(Report("ephemeral nyms", stainer)));
  }

  std::printf("\n# §3.5: persistent mode \"increases risk that the effects of a stain ...\n"
              "# will persist for the lifetime of the nym\"; pre-configured mode scrubs\n"
              "# it at the next session; ephemeral nyms never accumulate one.\n");
  return stats.Finish();
}
