// KSM ablation (§4.2: "Nymix enables KSM... Nymix can save a bit of RAM
// through the use of KSM, as we show in our evaluations"): host memory
// with and without kernel samepage merging as nyms accumulate, and the
// marginal nym capacity it buys on the 16 GB evaluation machine.
#include <cstdio>

#include "bench/bench_stats.h"
#include "src/core/testbed.h"

using namespace nymix;

int main(int argc, char** argv) {
  BenchStats stats("ablation_ksm", argc, argv);
  std::printf("# Host used memory (MB) with and without KSM\n");
  std::printf("%-5s %12s %12s %12s\n", "nyms", "ksm off", "ksm on", "saved");

  Testbed bed(13);
  stats.Attach(bed.sim());
  for (int n = 1; n <= 8; ++n) {
    Nym* nym = bed.CreateNymBlocking("k-" + std::to_string(n));
    NYMIX_CHECK(
        bed.VisitBlocking(nym, *bed.sites().all()[static_cast<size_t>(n - 1)]).ok());
    uint64_t allocated = bed.host().AllocatedMemoryBytes();  // what "off" would use
    bed.host().ksm().ScanNow();
    uint64_t used = bed.host().UsedMemoryBytes();
    std::printf("%-5d %12.0f %12.0f %12.0f\n", n, static_cast<double>(allocated) / kMiB,
                static_cast<double>(used) / kMiB,
                static_cast<double>(allocated - used) / kMiB);
  }

  uint64_t saved = bed.host().ksm().stats().bytes_saved();
  uint64_t per_nymbox = 656 * kMiB;
  std::printf("\n# at 8 nyms KSM frees %s — %.2f extra nymboxes' worth of RAM\n",
              FormatSize(saved).c_str(),
              static_cast<double>(saved) / static_cast<double>(per_nymbox));
  std::printf("# KSM matters because every VM boots from the same base image (§3.4)\n");

  stats.Set("nyms", 8);
  stats.Set("ksm_bytes_saved", static_cast<double>(saved));
  stats.Set("extra_nymboxes",
            static_cast<double>(saved) / static_cast<double>(per_nymbox));
  return stats.Finish();
}
