// Table 1: "Time and memory costs of using various versions of Windows as
// a nym in Nymix" — repair time, boot time, and copy-on-write delta size
// for Windows Vista, 7, and 8 (plus Linux, which needs no repair, §3.7).
#include <cstdio>

#include "bench/bench_stats.h"
#include "src/core/testbed.h"

using namespace nymix;

int main(int argc, char** argv) {
  BenchStats stats("tab1_installed_os", argc, argv);
  std::printf("# Table 1: installed OS as a nym\n");
  std::printf("%-14s %12s %10s %10s\n", "OS", "Repair (S)", "Boot (S)", "Size (MB)");

  const InstalledOsKind kinds[] = {InstalledOsKind::kWindowsVista, InstalledOsKind::kWindows7,
                                   InstalledOsKind::kWindows8, InstalledOsKind::kLinux};
  for (InstalledOsKind kind : kinds) {
    Testbed bed(/*seed=*/static_cast<uint64_t>(kind) + 50);
    stats.Attach(bed.sim());
    InstalledOsNymService service(bed.manager());
    auto media = MakeInstalledOsMedia(kind, 77);
    uint64_t disk_before = media.disk->TotalBytes();

    InstalledOsReport report;
    bool done = false;
    service.BootAsNym(media, [&](Result<Nym*> nym, InstalledOsReport r) {
      NYMIX_CHECK_MSG(nym.ok(), nym.status().ToString().c_str());
      report = r;
      done = true;
    });
    bed.sim().RunUntil([&] { return done; });
    NYMIX_CHECK(media.disk->TotalBytes() == disk_before);  // COW invariant

    std::printf("%-14s %12.1f %10.1f %10.1f\n", InstalledOsKindName(kind).data(),
                report.repair_seconds, report.boot_seconds,
                static_cast<double>(report.cow_bytes) / kMiB);
    std::string prefix = std::string(InstalledOsKindName(kind)) + ".";
    stats.Set(prefix + "repair_s", report.repair_seconds);
    stats.Set(prefix + "boot_s", report.boot_seconds);
    stats.Set(prefix + "cow_mb", static_cast<double>(report.cow_bytes) / kMiB);
  }

  std::printf("\n# paper values:  Vista 133.7 / 37.7 / 4.9    7: 129.3 / 34.3 / 4.5\n");
  std::printf("#                8: 157.0 / 58.7 / 14      (Linux: boots without repair)\n");
  std::printf("# the physical disk is read-only throughout; all writes hit the COW layer\n");

  stats.SetLabel("table", "1");
  return stats.Finish();
}
