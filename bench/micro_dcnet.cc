// DC-net round engine micro-benchmarks: the O(N^2) pad generation is why
// "Dissent ... is less mature and currently less scalable than Tor" (§3.3);
// per-round cost and blame-audit cost vs group size make that concrete.
#include <benchmark/benchmark.h>

#include "src/anon/dcnet.h"

namespace nymix {
namespace {

void BM_DcNetRound(benchmark::State& state) {
  size_t members = static_cast<size_t>(state.range(0));
  DcNetGroup group(members, 512, 42);
  std::vector<Bytes> messages(members);
  messages[0] = BytesFromString("payload for the round");
  uint64_t round = 1;
  for (auto _ : state) {
    auto slots = group.SlotPermutation(round);
    auto result = group.RunRound(messages, slots, round++);
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(group.round_bytes()));
  state.counters["members"] = static_cast<double>(members);
}
BENCHMARK(BM_DcNetRound)->Arg(4)->Arg(16)->Arg(32);

void BM_DcNetMemberCiphertext(benchmark::State& state) {
  size_t members = static_cast<size_t>(state.range(0));
  DcNetGroup group(members, 512, 42);
  Bytes message = BytesFromString("x");
  uint64_t round = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.MemberCiphertext(0, 0, message, round++));
  }
}
BENCHMARK(BM_DcNetMemberCiphertext)->Arg(4)->Arg(16)->Arg(32);

void BM_DcNetBlame(benchmark::State& state) {
  size_t members = static_cast<size_t>(state.range(0));
  DcNetGroup group(members, 512, 42);
  std::vector<Bytes> messages(members);
  auto slots = group.SlotPermutation(1);
  std::vector<Bytes> transmitted;
  for (size_t member = 0; member < members; ++member) {
    transmitted.push_back(*group.MemberCiphertext(member, slots[member], messages[member], 1));
  }
  transmitted[members / 2][0] ^= 0xff;  // one disruptor
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.Blame(transmitted, messages, slots, 1));
  }
}
BENCHMARK(BM_DcNetBlame)->Arg(4)->Arg(16);

}  // namespace
}  // namespace nymix

BENCHMARK_MAIN();
