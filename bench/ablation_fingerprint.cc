// Fingerprint-homogeneity ablation (§4.2 / §6's Panopticlick discussion):
// how many bits of identifying information does a browser's device
// fingerprint carry? Conventional machines differ in CPU model, screen,
// MAC, and core count; every Nymix AnonVM reports the same values, so
// within the Nymix population a fingerprint carries ~0 bits.
#include <cstdio>

#include "bench/bench_stats.h"
#include "src/core/metrics.h"
#include "src/core/testbed.h"

using namespace nymix;

int main(int argc, char** argv) {
  BenchStats stats("ablation_fingerprint", argc, argv);
  constexpr size_t kPopulation = 5000;
  Prng prng(31337);

  // Conventional browsers: natural hardware variety.
  auto natives = SyntheticNativePopulation(kPopulation, prng);
  double native_bits_total = 0;
  double native_bits_max = 0;
  for (size_t i = 0; i < 200; ++i) {
    double bits = FingerprintSurprisalBits(natives, natives[i * 17 % natives.size()]);
    native_bits_total += bits;
    native_bits_max = std::max(native_bits_max, bits);
  }

  // Nymix browsers: sample real AnonVMs from a deployment.
  Testbed bed(12);
  stats.Attach(bed.sim());
  std::vector<FingerprintSurface> nymix_population;
  std::vector<Nym*> nyms;
  for (int i = 0; i < 6; ++i) {
    nyms.push_back(bed.CreateNymBlocking("fp-" + std::to_string(i)));
  }
  for (Nym* nym : nyms) {
    nymix_population.push_back(FingerprintOf(*nym->anon_vm()));
  }
  // Scale the sample up to the same population size (every Nymix VM is
  // identical, so replication is exact, not an approximation).
  while (nymix_population.size() < kPopulation) {
    nymix_population.push_back(nymix_population[0]);
  }
  double nymix_bits = FingerprintSurprisalBits(nymix_population, nymix_population[3]);

  std::printf("# Device-fingerprint surprisal within a %zu-browser population\n", kPopulation);
  std::printf("%-24s %14s %14s\n", "population", "mean bits", "max bits");
  std::printf("%-24s %14.2f %14.2f\n", "conventional browsers", native_bits_total / 200,
              native_bits_max);
  std::printf("%-24s %14.2f %14.2f\n", "Nymix AnonVMs", nymix_bits, nymix_bits);

  std::printf("\n# every AnonVM reports: cpu=\"%s\" res=%s mac=%s cores=%u\n",
              nymix_population[0].cpu_model.c_str(), nymix_population[0].resolution.c_str(),
              nymix_population[0].mac.c_str(), nymix_population[0].visible_cpus);
  std::printf("# §4.2: \"we want Nymix to run the same on every machine\"; structural\n"
              "# homogeneity is \"future proof\" vs the plugin arms race (§6, Han et al.)\n");

  stats.Set("native_mean_bits", native_bits_total / 200);
  stats.Set("native_max_bits", native_bits_max);
  stats.Set("nymix_bits", nymix_bits);
  return stats.Finish();
}
