// Guard-persistence ablation (§3.5): why quasi-persistent nyms keep Tor
// state. A pure amnesiac system picks a NEW entry guard every boot, so
// over many sessions the client eventually lands on a compromised guard;
// with a persistent guard the exposure is a single draw. The third column
// is the paper's remaining gap — the ephemeral cloud-download nym picks
// its own fresh guard — and the fourth is the proposed fix implemented
// here: seeding the loader's guard from H(location || password).
//
// Monte Carlo over a synthetic user population using the deployed Tor
// network's guard set (1 of 4 guards compromised).
#include <cstdio>
#include <vector>

#include "bench/bench_stats.h"
#include "src/core/testbed.h"

using namespace nymix;

int main(int argc, char** argv) {
  BenchStats stats("ablation_guard_persistence", argc, argv);
  constexpr int kUsers = 2000;
  constexpr int kSessions = 30;
  constexpr size_t kGuards = 4;
  constexpr size_t kCompromisedGuard = 2;  // 25% of guard capacity is hostile

  Prng prng(1234);
  std::printf("# Fraction of users whose entry guard was compromised at least once\n");
  std::printf("# %d users, %d sessions, %zu guards (1 compromised)\n", kUsers, kSessions,
              kGuards);
  std::printf("%-10s %16s %16s %20s %18s\n", "sessions", "rotate-per-boot", "persistent",
              "persistent+loader", "seeded (ours)");

  // Per-user persistent guard draws.
  std::vector<size_t> persistent_guard(kUsers);
  std::vector<uint64_t> seed(kUsers);
  for (int u = 0; u < kUsers; ++u) {
    persistent_guard[u] = prng.NextBelow(kGuards);
    seed[u] = prng.NextU64();
  }

  std::vector<bool> exposed_rotate(kUsers, false);
  std::vector<bool> exposed_persist(kUsers, false);
  std::vector<bool> exposed_loader(kUsers, false);
  std::vector<bool> exposed_seeded(kUsers, false);

  for (int s = 1; s <= kSessions; ++s) {
    for (int u = 0; u < kUsers; ++u) {
      // Amnesiac: fresh guard each boot.
      if (prng.NextBelow(kGuards) == kCompromisedGuard) {
        exposed_rotate[u] = true;
      }
      // Persistent: the stored guard, every session.
      if (persistent_guard[u] == kCompromisedGuard) {
        exposed_persist[u] = true;
      }
      // Persistent nym + unseeded ephemeral loader: the nym's own traffic
      // uses the stored guard, but each session's loader picks fresh.
      if (persistent_guard[u] == kCompromisedGuard ||
          prng.NextBelow(kGuards) == kCompromisedGuard) {
        exposed_loader[u] = true;
      }
      // Seeded (this repo's DeriveGuardSeed): loader and nym share the
      // deterministic guard.
      if (seed[u] % kGuards == kCompromisedGuard) {
        exposed_seeded[u] = true;
      }
    }
    if (s == 1 || s == 5 || s == 10 || s == 20 || s == 30) {
      auto frac = [&](const std::vector<bool>& exposed) {
        int count = 0;
        for (bool e : exposed) {
          count += e ? 1 : 0;
        }
        return 100.0 * count / kUsers;
      };
      std::printf("%-10d %15.1f%% %15.1f%% %19.1f%% %17.1f%%\n", s, frac(exposed_rotate),
                  frac(exposed_persist), frac(exposed_loader), frac(exposed_seeded));
      if (s == kSessions) {
        stats.Set("rotate_exposed_pct", frac(exposed_rotate));
        stats.Set("persistent_exposed_pct", frac(exposed_persist));
        stats.Set("loader_exposed_pct", frac(exposed_loader));
        stats.Set("seeded_exposed_pct", frac(exposed_seeded));
      }
    }
  }

  std::printf("\n# rotate-per-boot converges to 100%% (\"greatly increasing her\n"
              "# vulnerability to intersection attacks\", §3.5); a persistent guard\n"
              "# caps exposure at the compromised-capacity fraction. The unseeded\n"
              "# loader leaks back toward the rotating curve — the gap §3.5 notes —\n"
              "# and guard seeding closes it exactly onto the persistent curve.\n");

  // Sanity-tie to the real implementation: two TorClients with the same
  // derived seed pick the same guard through the actual selection code.
  Testbed bed(5);
  stats.Attach(bed.sim());
  uint64_t guard_seed = DeriveGuardSeed("drop.example.com/acct", "pw");
  NymManager::CreateOptions options;
  options.guard_seed = guard_seed;
  Nym* a = bed.CreateNymBlocking("seed-check-a", options);
  Nym* b = bed.CreateNymBlocking("seed-check-b", options);
  auto guard_a = static_cast<TorClient*>(a->anonymizer())->entry_guard_index();
  auto guard_b = static_cast<TorClient*>(b->anonymizer())->entry_guard_index();
  std::printf("\n# implementation check: two seeded clients -> guard %zu and %zu (%s)\n",
              *guard_a, *guard_b, *guard_a == *guard_b ? "match" : "MISMATCH");
  stats.Set("seeded_guards_match", *guard_a == *guard_b ? 1 : 0);
  int stats_rc = stats.Finish();
  return *guard_a == *guard_b ? stats_rc : 1;
}
