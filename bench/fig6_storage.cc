// Figure 6: "Sizes of quasi-persistent pseudonym data across save/restore
// cycles." Four persistent nyms, each bound to one site (Gmail, Facebook,
// Twitter, Tor Blog); on each of ten cycles the nym is restored from the
// cloud, the browser revisits the site (fetching updates into the cache),
// and the nym is saved back. Reported: the encrypted archive size per
// cycle and the AnonVM share (§5.3: "85% of the pseudonym size").
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_stats.h"
#include "src/core/testbed.h"

using namespace nymix;

int main(int argc, char** argv) {
  BenchStats stats("fig6_storage", argc, argv);
  Testbed bed(/*seed=*/6);
  stats.Attach(bed.sim());
  const std::vector<std::string> kSites = {"Gmail", "Facebook", "Twitter", "TorBlog"};
  NYMIX_CHECK(bed.cloud().CreateAccount("fig6-user", "cloud-pw").ok());

  std::map<std::string, std::vector<double>> sizes_mb;
  std::map<std::string, std::vector<double>> anon_fraction;

  for (const std::string& site_name : kSites) {
    Website& site = bed.sites().ByName(site_name);
    std::string nym_name = "nym-" + site_name;

    // Cycle 1: fresh nym, sign in where applicable, configure the browser
    // to remember the login, save to cloud.
    Nym* nym = bed.CreateNymBlocking(nym_name);
    if (site.profile().supports_login) {
      bool logged = false;
      nym->browser()->Login(site, "user-" + site_name, "pw",
                            [&](Result<SimTime>) { logged = true; });
      bed.sim().RunUntil([&] { return logged; });
    }
    NYMIX_CHECK(bed.VisitBlocking(nym, site).ok());
    auto receipt = bed.SaveBlocking(nym, "fig6-user", "cloud-pw", "nym-pw");
    NYMIX_CHECK(receipt.ok());
    sizes_mb[site_name].push_back(static_cast<double>(receipt->logical_size) / kMiB);
    anon_fraction[site_name].push_back(receipt->anonvm_fraction);
    NYMIX_CHECK(bed.manager().TerminateNym(nym).ok());

    // Cycles 2..10: restore, browse (fetch updates), save back.
    for (int cycle = 2; cycle <= 10; ++cycle) {
      auto restored = bed.LoadBlocking(nym_name, "fig6-user", "cloud-pw", "nym-pw");
      NYMIX_CHECK_MSG(restored.ok(), restored.status().ToString().c_str());
      nym = *restored;
      NYMIX_CHECK(bed.VisitBlocking(nym, site).ok());
      receipt = bed.SaveBlocking(nym, "fig6-user", "cloud-pw", "nym-pw");
      NYMIX_CHECK(receipt.ok());
      sizes_mb[site_name].push_back(static_cast<double>(receipt->logical_size) / kMiB);
      anon_fraction[site_name].push_back(receipt->anonvm_fraction);
      NYMIX_CHECK(bed.manager().TerminateNym(nym).ok());
    }
  }

  std::printf("# Figure 6: encrypted pseudonym size (MB) per save/restore cycle\n");
  std::printf("%-6s %10s %10s %10s %10s\n", "cycle", "Gmail", "Facebook", "Twitter", "TorBlog");
  for (int cycle = 0; cycle < 10; ++cycle) {
    std::printf("%-6d %10.1f %10.1f %10.1f %10.1f\n", cycle + 1, sizes_mb["Gmail"][cycle],
                sizes_mb["Facebook"][cycle], sizes_mb["Twitter"][cycle],
                sizes_mb["TorBlog"][cycle]);
  }

  double fraction_sum = 0;
  int fraction_count = 0;
  for (const auto& [site, fractions] : anon_fraction) {
    (void)site;
    for (double f : fractions) {
      fraction_sum += f;
      ++fraction_count;
    }
  }
  std::printf("\n# mean AnonVM share of archive: %.0f%% (paper: \"85%% of the pseudonym "
              "size\", dominated by the Chromium cache, default cap 83 MB)\n",
              100.0 * fraction_sum / fraction_count);
  std::printf("# single-cycle archives (pre-configured nyms) are \"in the order of "
              "megabytes\": smallest first save = %.1f MB\n",
              sizes_mb["TorBlog"][0]);

  stats.SetLabel("figure", "6");
  stats.Set("mean_anonvm_fraction", fraction_sum / fraction_count);
  for (const std::string& site_name : kSites) {
    stats.Set(site_name + ".first_save_mb", sizes_mb[site_name].front());
    stats.Set(site_name + ".final_save_mb", sizes_mb[site_name].back());
  }
  return stats.Finish();
}
