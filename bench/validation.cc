// §5.1 "Validating the System": the leak-check experiment as a runnable
// report. Captures at the host uplink while an idle and then active Nymix
// client runs; fires cross-VM and LAN probes from AnonVMs and checks that
// every answer channel stays silent.
#include <cstdio>

#include "bench/bench_stats.h"
#include "src/core/testbed.h"

using namespace nymix;

int main(int argc, char** argv) {
  BenchStats stats("validation", argc, argv);
  Testbed bed(/*seed=*/9);
  stats.Attach(bed.sim());
  PacketCapture capture;
  bed.host().uplink()->AttachCapture(&capture);

  std::printf("# Section 5.1 validation report\n\n");

  // Idle client: only DHCP on the wire.
  bed.host().EmitDhcp();
  bed.sim().loop().RunUntilIdle();
  std::printf("[idle host]      capture: %zu packets, classes:", capture.size());
  for (const auto& [annotation, count] : capture.AnnotationHistogram()) {
    std::printf(" %s=%zu", annotation.c_str(), count);
  }
  std::printf("\n");

  // Two active pseudonyms with different anonymizers.
  Nym* tor_nym = bed.CreateNymBlocking("validate-tor");
  NymManager::CreateOptions dissent_options;
  dissent_options.anonymizer = AnonymizerKind::kDissent;
  Nym* dissent_nym = bed.CreateNymBlocking("validate-dissent", dissent_options);
  NYMIX_CHECK(bed.VisitBlocking(tor_nym, bed.sites().ByName("BBC")).ok());
  NYMIX_CHECK(bed.VisitBlocking(dissent_nym, bed.sites().ByName("Slashdot")).ok());

  std::printf("[active nyms]    capture: %zu packets, classes:", capture.size());
  for (const auto& [annotation, count] : capture.AnnotationHistogram()) {
    std::printf(" %s=%zu", annotation.c_str(), count);
  }
  std::printf("\n\n");

  // Restricted communication model: probes from each AnonVM.
  LeakProbeResult from_tor = ProbeAnonVmIsolation(bed.sim(), bed.host(), *tor_nym, dissent_nym);
  LeakProbeResult from_dissent =
      ProbeAnonVmIsolation(bed.sim(), bed.host(), *dissent_nym, tor_nym);
  std::printf("probe sweep from AnonVM(tor):     sent=%zu answered=%zu dropped=%llu\n",
              from_tor.probes_sent, from_tor.responses_received,
              static_cast<unsigned long long>(from_tor.dropped_by_commvm));
  std::printf("probe sweep from AnonVM(dissent): sent=%zu answered=%zu dropped=%llu\n",
              from_dissent.probes_sent, from_dissent.responses_received,
              static_cast<unsigned long long>(from_dissent.dropped_by_commvm));

  CaptureAudit audit = AuditUplinkCapture(capture);
  std::printf("\nuplink audit: only DHCP + anonymizer traffic: %s\n",
              audit.only_dhcp_and_anonymizers ? "PASS" : "FAIL");
  std::printf("uplink audit: no private/guest source addresses: %s\n",
              audit.no_private_sources ? "PASS" : "FAIL");
  bool silent = from_tor.responses_received == 0 && from_dissent.responses_received == 0;
  std::printf("restricted communication model (no probe answered): %s\n",
              silent ? "PASS" : "FAIL");
  std::printf("\noverall: %s — matches §5.1: \"The AnonVM can only communicate with a\n"
              "functional CommVM and the CommVM could only communicate with the Internet\"\n",
              (audit.Passed() && silent) ? "PASS" : "FAIL");

  stats.SetLabel("section", "5.1");
  stats.Set("probes_sent",
            static_cast<double>(from_tor.probes_sent + from_dissent.probes_sent));
  stats.Set("probes_answered",
            static_cast<double>(from_tor.responses_received + from_dissent.responses_received));
  stats.Set("uplink_packets", static_cast<double>(capture.size()));
  stats.Set("passed", (audit.Passed() && silent) ? 1 : 0);
  int stats_rc = stats.Finish();
  return (audit.Passed() && silent) ? stats_rc : 1;
}
