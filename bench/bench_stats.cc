#include "bench/bench_stats.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "src/net/simulation.h"
#include "src/obs/json.h"
#include "src/store/file_io.h"
#include "src/store/nbt.h"

namespace nymix {

namespace {

// Matches "--flag=value"; returns the value or nullptr.
const char* FlagValue(const char* arg, const char* flag) {
  size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
    return arg + flag_len + 1;
  }
  return nullptr;
}

}  // namespace

BenchStats::BenchStats(std::string bench_name, int argc, char** argv)
    : bench_name_(std::move(bench_name)) {
  for (int i = 1; i < argc; ++i) {
    if (const char* value = FlagValue(argv[i], "--stats-out")) {
      stats_path_ = value;
    } else if (const char* value = FlagValue(argv[i], "--trace-out")) {
      trace_path_ = value;
    } else if (const char* value = FlagValue(argv[i], "--trace-format")) {
      trace_format_ = value;
    }
  }
  if (trace_format_ != "json" && trace_format_ != "nbt") {
    std::fprintf(stderr, "bench_stats: --trace-format must be json or nbt, got \"%s\"\n",
                 trace_format_.c_str());
    std::exit(2);
  }
  if (!stats_path_.empty()) {
    obs_.metrics.set_enabled(true);
  }
  if (!trace_path_.empty()) {
    obs_.trace.set_enabled(true);
  }
}

void BenchStats::Attach(Simulation& sim) {
  if (obs_.trace.event_count() > 0) {
    obs_.trace.NextTimeline();
  }
  sim.loop().set_observability(&obs_);
}

void BenchStats::Set(const std::string& name, double value) { values_[name] = value; }

void BenchStats::SetLabel(const std::string& name, const std::string& value) {
  labels_[name] = value;
}

int BenchStats::Finish() {
  int rc = 0;
  if (!stats_path_.empty()) {
    std::ofstream out(stats_path_, std::ios::binary | std::ios::trunc);
    if (out) {
      out << "{\n  \"bench\": \"" << JsonEscape(bench_name_) << "\"";
      if (!labels_.empty()) {
        out << ",\n  \"labels\": {";
        bool first = true;
        for (const auto& [name, value] : labels_) {
          out << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": \""
              << JsonEscape(value) << "\"";
          first = false;
        }
        out << "\n  }";
      }
      if (!values_.empty()) {
        out << ",\n  \"values\": {";
        bool first = true;
        for (const auto& [name, value] : values_) {
          out << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
              << "\": " << JsonNumber(value);
          first = false;
        }
        out << "\n  }";
      }
      out << ",\n  \"metrics\": ";
      obs_.metrics.WriteJson(out, "  ");
      out << "\n}\n";
      out.flush();
      if (!out) {
        std::fprintf(stderr, "bench_stats: write failed: %s\n", stats_path_.c_str());
        rc = 1;
      }
    } else {
      std::fprintf(stderr, "bench_stats: cannot open %s\n", stats_path_.c_str());
      rc = 1;
    }
  }
  if (!trace_path_.empty()) {
    if (trace_format_ == "nbt") {
      Status written = WriteFileBytes(trace_path_, EncodeNbt(&obs_.trace, nullptr));
      if (!written.ok()) {
        std::fprintf(stderr, "bench_stats: cannot write %s: %s\n", trace_path_.c_str(),
                     written.ToString().c_str());
        rc = 1;
      }
    } else if (!obs_.trace.WriteChromeJsonFile(trace_path_)) {
      std::fprintf(stderr, "bench_stats: cannot write %s\n", trace_path_.c_str());
      rc = 1;
    }
  }
  return rc;
}

}  // namespace nymix
