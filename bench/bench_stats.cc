#include "bench/bench_stats.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "src/net/simulation.h"
#include "src/obs/json.h"
#include "src/store/file_io.h"
#include "src/store/nbt.h"

namespace nymix {

namespace {

// Matches "--flag=value"; returns the value or nullptr.
const char* FlagValue(const char* arg, const char* flag) {
  size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
    return arg + flag_len + 1;
  }
  return nullptr;
}

}  // namespace

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) {
    return;  // document root
  }
  Frame& frame = stack_.back();
  if (frame.compact) {
    if (!frame.first) {
      out_ << ", ";
    }
  } else {
    out_ << (frame.first ? "\n" : ",\n") << indent();
  }
  frame.first = false;
}

void JsonWriter::BeginObject(Style style) {
  BeforeValue();
  Frame frame;
  frame.compact = style == kCompact || InCompact();
  out_ << '{';
  stack_.push_back(frame);
}

void JsonWriter::EndObject() {
  Frame frame = stack_.back();
  stack_.pop_back();
  if (!frame.compact && !frame.first) {
    out_ << '\n' << indent();
  }
  out_ << '}';
}

void JsonWriter::BeginArray(Style style) {
  BeforeValue();
  Frame frame;
  frame.array = true;
  frame.compact = style == kCompact || InCompact();
  out_ << '[';
  stack_.push_back(frame);
}

void JsonWriter::EndArray() {
  Frame frame = stack_.back();
  stack_.pop_back();
  if (!frame.compact && !frame.first) {
    out_ << '\n' << indent();
  }
  out_ << ']';
}

void JsonWriter::Key(std::string_view name) {
  BeforeValue();
  out_ << '"' << JsonEscape(name) << "\": ";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ << '"' << JsonEscape(value) << '"';
}

void JsonWriter::Number(double value) {
  BeforeValue();
  out_ << JsonNumber(value);
}

void JsonWriter::Number(double value, int precision) {
  BeforeValue();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  out_ << buf;
}

void JsonWriter::Number(uint64_t value) {
  BeforeValue();
  out_ << JsonNumber(value);
}

void JsonWriter::Number(int64_t value) {
  BeforeValue();
  out_ << JsonNumber(value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ << (value ? "true" : "false");
}

std::ostream& JsonWriter::RawValue() {
  BeforeValue();
  return out_;
}

BenchStats::BenchStats(std::string bench_name, int argc, char** argv)
    : bench_name_(std::move(bench_name)) {
  for (int i = 1; i < argc; ++i) {
    if (const char* value = FlagValue(argv[i], "--stats-out")) {
      stats_path_ = value;
    } else if (const char* value = FlagValue(argv[i], "--trace-out")) {
      trace_path_ = value;
    } else if (const char* value = FlagValue(argv[i], "--trace-format")) {
      trace_format_ = value;
    }
  }
  if (trace_format_ != "json" && trace_format_ != "nbt") {
    std::fprintf(stderr, "bench_stats: --trace-format must be json or nbt, got \"%s\"\n",
                 trace_format_.c_str());
    std::exit(2);
  }
  if (!stats_path_.empty()) {
    obs_.metrics.set_enabled(true);
  }
  if (!trace_path_.empty()) {
    obs_.trace.set_enabled(true);
  }
}

void BenchStats::Attach(Simulation& sim) {
  if (obs_.trace.event_count() > 0) {
    obs_.trace.NextTimeline();
  }
  sim.loop().set_observability(&obs_);
}

void BenchStats::Set(const std::string& name, double value) { values_[name] = value; }

void BenchStats::SetLabel(const std::string& name, const std::string& value) {
  labels_[name] = value;
}

int BenchStats::Finish() {
  int rc = 0;
  if (!stats_path_.empty()) {
    std::ofstream out(stats_path_, std::ios::binary | std::ios::trunc);
    if (out) {
      JsonWriter writer(out);
      writer.BeginObject();
      writer.Key("bench");
      writer.String(bench_name_);
      if (!labels_.empty()) {
        writer.Key("labels");
        writer.BeginObject();
        for (const auto& [name, value] : labels_) {
          writer.Key(name);
          writer.String(value);
        }
        writer.EndObject();
      }
      if (!values_.empty()) {
        writer.Key("values");
        writer.BeginObject();
        for (const auto& [name, value] : values_) {
          writer.Key(name);
          writer.Number(value);
        }
        writer.EndObject();
      }
      writer.Key("metrics");
      obs_.metrics.WriteJson(writer.RawValue(), writer.indent());
      writer.EndObject();
      out << "\n";
      out.flush();
      if (!out) {
        std::fprintf(stderr, "bench_stats: write failed: %s\n", stats_path_.c_str());
        rc = 1;
      }
    } else {
      std::fprintf(stderr, "bench_stats: cannot open %s\n", stats_path_.c_str());
      rc = 1;
    }
  }
  if (!trace_path_.empty()) {
    if (trace_format_ == "nbt") {
      Status written = WriteFileBytes(trace_path_, EncodeNbt(&obs_.trace, nullptr));
      if (!written.ok()) {
        std::fprintf(stderr, "bench_stats: cannot write %s: %s\n", trace_path_.c_str(),
                     written.ToString().c_str());
        rc = 1;
      }
    } else if (!obs_.trace.WriteChromeJsonFile(trace_path_)) {
      std::fprintf(stderr, "bench_stats: cannot write %s\n", trace_path_.c_str());
      rc = 1;
    }
  }
  return rc;
}

}  // namespace nymix
