// Fleet-scale wall-clock benchmark: how fast does the simulator itself run
// as the modeled deployment grows? N nyms are spread over N/8 hosts (the
// §5.2 16 GB desktop comfortably fits 8 nymboxes), each host with live KSM
// scanning, a private test Tor deployment, and a Tor-fetch browsing
// workload with nym churn (terminate + replace). This is the harness for
// the incremental hot paths (docs/performance.md): KSM delta scans,
// dirty-driven fair-share rescheduling, and the event-loop node pool.
//
// Usage:
//   scale_fleet [--n=8,64,256,1024] [--mode=both|incremental|full]
//               [--full-recompute] [--out=BENCH_scale.json] [--seed=13]
//               [--stats-out=...] [--trace-out=...]
//
// --mode=both (default) runs every N in both modes and reports the
// wall-clock speedup; --full-recompute is shorthand for --mode=full (the
// pre-incremental recompute-the-world reference). Virtual-time results are
// mode-independent: the incremental paths are exact, so a --trace-out from
// an incremental run is byte-identical to one from a full run (asserted by
// tests/determinism_test.cc).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_stats.h"
#include "src/core/nym_manager.h"
#include "src/workload/website.h"

using namespace nymix;

namespace {

constexpr int kNymsPerHost = 8;
constexpr int kVisitsPerGeneration = 2;
constexpr int kGenerations = 2;  // one churn (terminate + replace) per slot

// One host cluster: a 16 GB machine, its own test Tor deployment, and a
// destination site. Per-cluster Tor keeps flow competition host-local (the
// real contention is each host's 10 Mbit uplink anyway) instead of welding
// the whole fleet into one connected component.
struct Cluster {
  std::unique_ptr<HostMachine> host;
  std::unique_ptr<TorNetwork> tor;
  std::unique_ptr<NymManager> manager;
  std::unique_ptr<Website> site;
};

struct SlotState {
  Nym* nym = nullptr;
  int visits_done = 0;
  int generation = 0;
  bool finished = false;
};

struct PointResult {
  int n = 0;
  double wall_seconds = 0;
  uint64_t events = 0;
  double events_per_sec = 0;
  double sim_seconds = 0;
  uint64_t visits = 0;
  uint64_t churns = 0;
  uint64_t waterfills_full = 0;
  uint64_t waterfills_component = 0;
  uint64_t waterfill_skips = 0;
  uint64_t ksm_memories_merged = 0;
  uint64_t ksm_memories_skipped = 0;
  uint64_t ksm_pages_sharing = 0;
};

class Fleet {
 public:
  Fleet(Simulation& sim, int nym_count, uint64_t seed, bool full_recompute)
      : sim_(sim), nym_count_(nym_count), think_prng_(seed ^ 0x5ca1e) {
    sim_.flows().set_full_recompute(full_recompute);
    int hosts = (nym_count + kNymsPerHost - 1) / kNymsPerHost;
    TorNetwork::Config tor_config;
    tor_config.relay_count = 6;
    tor_config.guard_count = 2;
    tor_config.exit_count = 2;
    // One distribution image for the whole fleet, like every host booting
    // from a copy of the same Nymix release stick. Sharing the object also
    // shares the memoized whole-image Merkle verification across hosts.
    auto image = BaseImage::CreateDistribution("nymix", 42, 64 * kMiB);
    for (int c = 0; c < hosts; ++c) {
      auto cluster = std::make_unique<Cluster>();
      cluster->host = std::make_unique<HostMachine>(sim_, HostConfig{});
      cluster->host->ksm().set_full_rescan(full_recompute);
      cluster->tor = std::make_unique<TorNetwork>(sim_, tor_config);
      cluster->manager =
          std::make_unique<NymManager>(*cluster->host, image, cluster->tor.get(), nullptr);
      WebsiteProfile profile;
      profile.name = "site-" + std::to_string(c);
      profile.domain = "site" + std::to_string(c) + ".example.com";
      cluster->site = std::make_unique<Website>(sim_, profile);
      cluster->host->ksm().Start(Seconds(2));
      clusters_.push_back(std::move(cluster));
    }
    slots_.resize(static_cast<size_t>(nym_count));
  }

  void Run() {
    for (int i = 0; i < nym_count_; ++i) {
      SpawnNym(i);
    }
    sim_.RunUntil([this] { return finished_slots_ == nym_count_; });
    for (auto& cluster : clusters_) {
      cluster->host->ksm().Stop();
    }
  }

  uint64_t visits() const { return total_visits_; }
  uint64_t churns() const { return total_churns_; }
  const std::vector<std::unique_ptr<Cluster>>& clusters() const { return clusters_; }

 private:
  Cluster& ClusterOf(int slot) { return *clusters_[static_cast<size_t>(slot / kNymsPerHost)]; }

  void SpawnNym(int slot) {
    SlotState& state = slots_[static_cast<size_t>(slot)];
    std::string name = "c" + std::to_string(slot / kNymsPerHost) + "-s" +
                       std::to_string(slot % kNymsPerHost) + "-g" +
                       std::to_string(state.generation);
    ClusterOf(slot).manager->CreateNym(
        name, NymManager::CreateOptions{}, [this, slot](Result<Nym*> nym, NymStartupReport) {
          NYMIX_CHECK_MSG(nym.ok(), nym.status().ToString().c_str());
          slots_[static_cast<size_t>(slot)].nym = *nym;
          slots_[static_cast<size_t>(slot)].visits_done = 0;
          VisitNext(slot);
        });
  }

  void VisitNext(int slot) {
    SlotState& state = slots_[static_cast<size_t>(slot)];
    state.nym->browser()->Visit(*ClusterOf(slot).site, [this, slot](Result<SimTime> done) {
      NYMIX_CHECK_MSG(done.ok(), done.status().ToString().c_str());
      ++total_visits_;
      SlotState& state = slots_[static_cast<size_t>(slot)];
      ++state.visits_done;
      // Think time before the next action; acting from a fresh event also
      // means churn never tears a nym down from inside its own callback.
      SimDuration think = Millis(500 + static_cast<SimDuration>(think_prng_.NextBelow(1500)));
      sim_.loop().ScheduleAfter(think, [this, slot] { Advance(slot); });
    });
  }

  void Advance(int slot) {
    SlotState& state = slots_[static_cast<size_t>(slot)];
    if (state.visits_done < kVisitsPerGeneration) {
      VisitNext(slot);
      return;
    }
    ++state.generation;
    NYMIX_CHECK(ClusterOf(slot).manager->TerminateNym(state.nym).ok());
    state.nym = nullptr;
    if (state.generation >= kGenerations) {
      state.finished = true;
      ++finished_slots_;
      return;
    }
    ++total_churns_;
    SpawnNym(slot);
  }

  Simulation& sim_;
  int nym_count_;
  Prng think_prng_;
  std::vector<std::unique_ptr<Cluster>> clusters_;
  std::vector<SlotState> slots_;
  int finished_slots_ = 0;
  uint64_t total_visits_ = 0;
  uint64_t total_churns_ = 0;
};

PointResult RunPoint(BenchStats& stats, bool attach_obs, int n, uint64_t seed,
                     bool full_recompute) {
  // nymlint:allow(determinism-wallclock): wall-clock throughput is the measurement; it never feeds virtual time
  auto wall_start = std::chrono::steady_clock::now();
  Simulation sim(seed);
  if (attach_obs) {
    stats.Attach(sim);
    // The trace must be byte-identical between incremental and full modes
    // (that is the equivalence contract this bench demonstrates), so keep
    // the simulator's wall-clock self-profiling args out of it.
    stats.obs().trace.set_record_wall_time(false);
  }
  Fleet fleet(sim, n, seed, full_recompute);
  fleet.Run();
  // nymlint:allow(determinism-wallclock): wall-clock throughput is the measurement; it never feeds virtual time
  auto wall_end = std::chrono::steady_clock::now();

  PointResult result;
  result.n = n;
  result.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  result.events = sim.loop().events_executed();
  result.events_per_sec =
      result.wall_seconds > 0 ? static_cast<double>(result.events) / result.wall_seconds : 0;
  result.sim_seconds = static_cast<double>(sim.now()) / 1e6;
  result.visits = fleet.visits();
  result.churns = fleet.churns();
  result.waterfills_full = sim.flows().waterfills_full();
  result.waterfills_component = sim.flows().waterfills_component();
  result.waterfill_skips = sim.flows().waterfill_skips();
  for (const auto& cluster : fleet.clusters()) {
    result.ksm_memories_merged += cluster->host->ksm().memories_merged();
    result.ksm_memories_skipped += cluster->host->ksm().memories_skipped();
    result.ksm_pages_sharing += cluster->host->ksm().stats().pages_sharing;
  }
  return result;
}

void WriteJson(const std::string& path, const std::string& mode, uint64_t seed,
               const std::vector<PointResult>& incremental,
               const std::vector<PointResult>& full) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "scale_fleet: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  char buf[512];
  auto emit_points = [&](const char* key, const std::vector<PointResult>& points) {
    out << "  \"" << key << "\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const PointResult& p = points[i];
      std::snprintf(buf, sizeof(buf),
                    "    {\"n\": %d, \"wall_seconds\": %.4f, \"events\": %llu, "
                    "\"events_per_sec\": %.1f, \"sim_seconds\": %.2f, \"visits\": %llu, "
                    "\"churns\": %llu, \"waterfills_full\": %llu, "
                    "\"waterfills_component\": %llu, \"waterfill_skips\": %llu, "
                    "\"ksm_memories_merged\": %llu, \"ksm_memories_skipped\": %llu, "
                    "\"ksm_pages_sharing\": %llu}%s\n",
                    p.n, p.wall_seconds, static_cast<unsigned long long>(p.events),
                    p.events_per_sec, p.sim_seconds, static_cast<unsigned long long>(p.visits),
                    static_cast<unsigned long long>(p.churns),
                    static_cast<unsigned long long>(p.waterfills_full),
                    static_cast<unsigned long long>(p.waterfills_component),
                    static_cast<unsigned long long>(p.waterfill_skips),
                    static_cast<unsigned long long>(p.ksm_memories_merged),
                    static_cast<unsigned long long>(p.ksm_memories_skipped),
                    static_cast<unsigned long long>(p.ksm_pages_sharing),
                    i + 1 < points.size() ? "," : "");
      out << buf;
    }
    out << "  ]";
  };

  out << "{\n  \"bench\": \"scale_fleet\",\n  \"mode\": \"" << mode << "\",\n  \"seed\": " << seed
      << ",\n";
  if (!incremental.empty()) {
    emit_points("incremental", incremental);
    out << (full.empty() ? "\n" : ",\n");
  }
  if (!full.empty()) {
    emit_points("full_recompute", full);
    out << ",\n  \"speedup\": [\n";
    for (size_t i = 0; i < full.size(); ++i) {
      double speedup = 0;
      if (i < incremental.size() && incremental[i].wall_seconds > 0) {
        speedup = full[i].wall_seconds / incremental[i].wall_seconds;
      }
      std::snprintf(buf, sizeof(buf), "    {\"n\": %d, \"wall_clock\": %.2f}%s\n", full[i].n,
                    speedup, i + 1 < full.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n";
  }
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  BenchStats stats("scale_fleet", argc, argv);
  std::vector<int> ns = {8, 64, 256, 1024};
  std::string mode = "both";
  std::string out_path = "BENCH_scale.json";
  uint64_t seed = 13;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      ns.clear();
      std::string list = arg.substr(4);
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) {
          comma = list.size();
        }
        ns.push_back(std::stoi(list.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    } else if (arg.rfind("--mode=", 0) == 0) {
      mode = arg.substr(7);
    } else if (arg == "--full-recompute") {
      mode = "full";
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    }
  }
  NYMIX_CHECK_MSG(mode == "both" || mode == "incremental" || mode == "full",
                  "--mode must be both, incremental or full");
  // Tracing/metrics change the per-event work (and trace layout is
  // per-simulation-attach), so obs-attached runs are for equivalence
  // checking, not for headline throughput.
  const bool attach_obs = stats.stats_requested() || stats.trace_requested();

  std::printf("# scale_fleet: %d-nym-per-host clusters, live KSM, Tor fetch + churn\n",
              kNymsPerHost);
  std::printf("%-6s %-12s %12s %12s %14s\n", "n", "mode", "wall (s)", "events", "events/s");

  std::vector<PointResult> incremental;
  std::vector<PointResult> full;
  for (int n : ns) {
    if (mode != "full") {
      PointResult p = RunPoint(stats, attach_obs, n, seed, /*full_recompute=*/false);
      std::printf("%-6d %-12s %12.3f %12llu %14.0f\n", n, "incremental", p.wall_seconds,
                  static_cast<unsigned long long>(p.events), p.events_per_sec);
      incremental.push_back(p);
    }
    if (mode != "incremental") {
      PointResult p = RunPoint(stats, attach_obs, n, seed, /*full_recompute=*/true);
      std::printf("%-6d %-12s %12.3f %12llu %14.0f\n", n, "full", p.wall_seconds,
                  static_cast<unsigned long long>(p.events), p.events_per_sec);
      full.push_back(p);
    }
    if (mode == "both") {
      std::printf("%-6d %-12s %12.2fx\n", n, "speedup",
                  full.back().wall_seconds / incremental.back().wall_seconds);
    }
  }

  WriteJson(out_path, mode, seed, incremental, full);
  std::printf("# wrote %s\n", out_path.c_str());

  for (size_t i = 0; i < incremental.size(); ++i) {
    std::string prefix = "n" + std::to_string(incremental[i].n);
    stats.Set(prefix + ".events_per_sec", incremental[i].events_per_sec);
    stats.Set(prefix + ".wall_seconds", incremental[i].wall_seconds);
  }
  return stats.Finish();
}
