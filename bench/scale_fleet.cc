// Fleet-scale wall-clock benchmark: how fast does the simulator itself run
// as the modeled deployment grows? N nyms are spread over N/8 hosts (the
// §5.2 16 GB desktop comfortably fits 8 nymboxes), each host with live KSM
// scanning, a private test Tor deployment, and a Tor-fetch browsing
// workload with nym churn (terminate + replace). This is the harness for
// the incremental hot paths (docs/performance.md): KSM delta scans,
// dirty-driven fair-share rescheduling, and the event-loop node pool.
//
// Usage:
//   scale_fleet [--n=8,64,256,1024] [--mode=both|incremental|full]
//               [--full-recompute] [--out=BENCH_scale.json] [--seed=13]
//               [--threads=1,8] [--shards=8] [--topology=isolated|crossed]
//               [--warm-start[=CKPT]] [--stats-out=...] [--trace-out=...]
//               [--trace-format=json|nbt]
//
// --warm-start restores every fleet's base images from a deterministic
// image checkpoint (src/store) instead of rebuilding them — O(changed):
// only an image whose (name, seed, size) identity is missing from the
// checkpoint gets cold-built (and written back, so the next run is warm).
// The checkpoint file defaults to BENCH_scale.ckpt. Image content is a
// pure function of its identity, so warm and cold runs produce
// byte-identical traces — CI's warm-start smoke compares the SHA-256s.
// Each run records "checkpoint_restore_ms" (time spent in the restore
// path) and each threaded point records "trace_encode_ms" (trace
// serialization cost); tools/bench_diff.py gates both warn-only.
//
// --mode=both (default) runs every N in both modes and reports the
// wall-clock speedup; --full-recompute is shorthand for --mode=full (the
// pre-incremental recompute-the-world reference). Virtual-time results are
// mode-independent: the incremental paths are exact, so a --trace-out from
// an incremental run is byte-identical to one from a full run (asserted by
// tests/determinism_test.cc).
//
// --threads=T1,T2,... additionally runs each N through the sharded
// parallel executor (src/parallel) at each thread count, with --shards
// fixing the partition (default 8). Every threaded point records a SHA-256
// of its merged trace and metrics dump; the bench FAILS (exit 1) if any
// two thread counts disagree for the same N — that is the executor's
// byte-identity contract, checked on every bench run. The JSON gains
// "threaded", "threads_speedup" and "hardware_threads" entries;
// tools/bench_diff.py gates the speedup only when the recorded hardware
// actually has the cores to show one.
//
// --topology=crossed runs the threaded series over the cross-shard fleet
// workload (src/core/fleet.h, FleetTopology::kCrossed): every page visit is
// followed by a windowed cloud fetch served from the next shard over a
// CrossShardChannel ring, so the executor's adaptive horizons, mailboxes
// and placement actually get exercised (cross_deliveries > 0, epochs > 1).
// Each n first runs a serial calibration pass whose observed per-host
// weights feed BalancedPlacement; the resulting placement is shared by
// every thread count of that n. Threaded rows gain "topology",
// "cloud_fetches" and the parallel.* executor columns (barrier_wait_ms,
// shard_skew_events, outbox_depth).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_stats.h"
#include "src/core/fleet.h"
#include "src/core/nym_manager.h"
#include "src/crypto/sha256.h"
#include "src/store/file_io.h"
#include "src/store/image_checkpoint.h"
#include "src/store/kv_store.h"
#include "src/util/thread_pool.h"
#include "src/workload/website.h"

using namespace nymix;

namespace {

constexpr int kNymsPerHost = 8;
constexpr int kVisitsPerGeneration = 2;
constexpr int kGenerations = 2;  // one churn (terminate + replace) per slot

// One host cluster: a 16 GB machine, its own test Tor deployment, and a
// destination site. Per-cluster Tor keeps flow competition host-local (the
// real contention is each host's 10 Mbit uplink anyway) instead of welding
// the whole fleet into one connected component.
struct Cluster {
  std::unique_ptr<HostMachine> host;
  std::unique_ptr<TorNetwork> tor;
  std::unique_ptr<NymManager> manager;
  std::unique_ptr<Website> site;
};

struct SlotState {
  Nym* nym = nullptr;
  int visits_done = 0;
  int generation = 0;
  bool finished = false;
};

struct PointResult {
  int n = 0;
  double wall_seconds = 0;
  uint64_t events = 0;
  double events_per_sec = 0;
  double sim_seconds = 0;
  uint64_t visits = 0;
  uint64_t churns = 0;
  uint64_t waterfills_full = 0;
  uint64_t waterfills_component = 0;
  uint64_t waterfill_skips = 0;
  uint64_t ksm_memories_merged = 0;
  uint64_t ksm_memories_skipped = 0;
  uint64_t ksm_pages_sharing = 0;
  double checkpoint_restore_ms = 0;
};

struct ThreadedPointResult {
  int n = 0;
  int shards = 0;
  int threads = 0;
  double wall_seconds = 0;
  uint64_t events = 0;
  double events_per_sec = 0;
  uint64_t epochs = 0;
  uint64_t cross_deliveries = 0;
  uint64_t cloud_fetches = 0;
  uint64_t visits = 0;
  uint64_t churns = 0;
  uint64_t ksm_pages_sharing = 0;
  uint64_t fleet_pages_sharing = 0;
  uint64_t cross_host_extra_sharing = 0;
  // parallel.* executor self-metrics (see sharded_sim.h) — wall-clock and
  // load-shape diagnostics, reported per point, never part of the digests.
  double barrier_wait_ms = 0;
  double shard_skew_events = 0;
  double outbox_depth = 0;
  std::string trace_sha256;
  std::string stats_sha256;
  double trace_encode_ms = 0;
  double checkpoint_restore_ms = 0;
};

// Warm-start context: the deterministic image checkpoint store, loaded
// once per process and saved back after any cold build refreshed it.
struct WarmStart {
  bool enabled = false;
  std::string path = "BENCH_scale.ckpt";
  KvStore store;
};

// Restores (or on a miss builds + checkpoints) one distribution image per
// requested copy. Each copy decodes to a distinct object: shards must not
// share an image (the Merkle-verification memo is per object and two
// shards verifying concurrently must not race on it). Returns the wall
// milliseconds spent, which is the "checkpoint_restore_ms" column.
double AcquireWarmImages(WarmStart& warm, int copies,
                         std::vector<std::shared_ptr<BaseImage>>& out) {
  // nymlint:allow(determinism-wallclock): restore cost is the measurement; it never feeds virtual time
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < copies; ++i) {
    auto image = AcquireDistributionImage(warm.store, kFleetImageName, kFleetImageSeed,
                                          kFleetImageSizeBytes);
    NYMIX_CHECK_MSG(image.ok(), image.status().ToString().c_str());
    out.push_back(std::move(*image));
  }
  // nymlint:allow(determinism-wallclock): restore cost is the measurement; it never feeds virtual time
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

std::string HexDigest(const Sha256Digest& digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(digest.size() * 2);
  for (uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

// Crossed topology only: a serial calibration run (threads=1, no
// observability) whose per-host activity weights feed BalancedPlacement.
// The resulting placement is part of the experiment definition and is
// shared by every thread count of the same n — weights from a fixed serial
// run are a pure function of (seed, shards, n), so the placement is too.
ShardPlacement CalibratePlacement(int n, int shards, uint64_t seed) {
  FleetOptions options;
  options.nym_count = n;
  options.topology = FleetTopology::kCrossed;
  ShardedSimulation sharded(seed, ShardPlan{shards, 1});
  ShardedFleet fleet(sharded, options, seed);
  fleet.Run();
  return BalancedPlacement(fleet.HostWeights(), shards, seed);
}

// One sharded-executor run. Observability is always attached here (wall
// clock off): the per-point digests ARE the byte-identity check, so the
// threaded series measures obs-attached throughput — both thread counts
// pay the same cost, which is what the speedup ratio needs.
ThreadedPointResult RunThreadedPoint(BenchStats& stats, int n, int shards, int threads,
                                     uint64_t seed, WarmStart* warm, bool crossed,
                                     const ShardPlacement& placement) {
  FleetOptions options;
  options.nym_count = n;
  if (crossed) {
    options.topology = FleetTopology::kCrossed;
    options.placement = placement;
  }
  double restore_ms = 0;
  if (warm != nullptr && warm->enabled) {
    restore_ms = AcquireWarmImages(*warm, shards, options.images);
  }
  // nymlint:allow(determinism-wallclock): wall-clock throughput is the measurement; it never feeds virtual time
  auto wall_start = std::chrono::steady_clock::now();
  ShardedSimulation sharded(seed, ShardPlan{shards, threads});
  sharded.EnableObservability(/*record_wall_time=*/false);
  ShardedFleet fleet(sharded, options, seed);
  fleet.Run();
  // nymlint:allow(determinism-wallclock): wall-clock throughput is the measurement; it never feeds virtual time
  auto wall_end = std::chrono::steady_clock::now();
  sharded.MergeObservability();

  ThreadedPointResult result;
  result.n = n;
  result.shards = shards;
  result.threads = sharded.thread_count();
  result.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  result.events = fleet.events_executed();
  result.events_per_sec =
      result.wall_seconds > 0 ? static_cast<double>(result.events) / result.wall_seconds : 0;
  result.epochs = sharded.epochs();
  result.cross_deliveries = sharded.cross_deliveries();
  result.cloud_fetches = fleet.cloud_fetches();
  result.barrier_wait_ms = sharded.barrier_wait_ms_mean();
  result.shard_skew_events = sharded.shard_skew_events_mean();
  result.outbox_depth = sharded.outbox_depth_max();
  result.visits = fleet.visits();
  result.churns = fleet.churns();
  result.ksm_pages_sharing = fleet.ksm_pages_sharing();
  FleetKsmStats fleet_ksm = fleet.ReconcileKsm();
  result.fleet_pages_sharing = fleet_ksm.pages_sharing;
  result.cross_host_extra_sharing = fleet_ksm.cross_host_extra_sharing();

  result.checkpoint_restore_ms = restore_ms;
  // nymlint:allow(determinism-wallclock): serialization cost is the trace_encode_ms measurement
  auto encode_start = std::chrono::steady_clock::now();
  result.trace_sha256 = HexDigest(Sha256::Hash(sharded.merged().trace.ToChromeJson()));
  // nymlint:allow(determinism-wallclock): serialization cost is the trace_encode_ms measurement
  auto encode_end = std::chrono::steady_clock::now();
  result.trace_encode_ms =
      std::chrono::duration<double, std::milli>(encode_end - encode_start).count();
  std::ostringstream metrics_json;
  sharded.merged().metrics.WriteJson(metrics_json);
  result.stats_sha256 = HexDigest(Sha256::Hash(metrics_json.str()));

  // Fold the run into the --trace-out / --stats-out artifacts: the merged
  // stream depends only on (seed, shards, workload), so traces written at
  // different --threads diff byte-identical.
  if (stats.trace_requested()) {
    stats.obs().trace.set_enabled(true);
    stats.obs().trace.set_record_wall_time(false);
    std::vector<const TraceRecorder*> parts;
    for (int s = 0; s < sharded.shard_count(); ++s) {
      parts.push_back(&sharded.shard_obs(s).trace);
    }
    stats.obs().trace.MergeShardTraces(parts);
    stats.obs().trace.NextTimeline();
  }
  if (stats.stats_requested()) {
    stats.obs().metrics.MergeFrom(sharded.merged().metrics);
  }
  return result;
}

class Fleet {
 public:
  // `image` null means cold-build; a warm start passes a restored image.
  Fleet(Simulation& sim, int nym_count, uint64_t seed, bool full_recompute,
        std::shared_ptr<BaseImage> image = nullptr)
      : sim_(sim), nym_count_(nym_count), think_prng_(seed ^ 0x5ca1e) {
    sim_.flows().set_full_recompute(full_recompute);
    int hosts = (nym_count + kNymsPerHost - 1) / kNymsPerHost;
    TorNetwork::Config tor_config;
    tor_config.relay_count = 6;
    tor_config.guard_count = 2;
    tor_config.exit_count = 2;
    // One distribution image for the whole fleet, like every host booting
    // from a copy of the same Nymix release stick. Sharing the object also
    // shares the memoized whole-image Merkle verification across hosts.
    if (image == nullptr) {
      image = BaseImage::CreateDistribution(kFleetImageName, kFleetImageSeed, kFleetImageSizeBytes);
    }
    for (int c = 0; c < hosts; ++c) {
      auto cluster = std::make_unique<Cluster>();
      cluster->host = std::make_unique<HostMachine>(sim_, HostConfig{});
      cluster->host->ksm().set_full_rescan(full_recompute);
      cluster->tor = std::make_unique<TorNetwork>(sim_, tor_config);
      cluster->manager =
          std::make_unique<NymManager>(*cluster->host, image, cluster->tor.get(), nullptr);
      WebsiteProfile profile;
      profile.name = "site-" + std::to_string(c);
      profile.domain = "site" + std::to_string(c) + ".example.com";
      cluster->site = std::make_unique<Website>(sim_, profile);
      cluster->host->ksm().Start(Seconds(2));
      clusters_.push_back(std::move(cluster));
    }
    slots_.resize(static_cast<size_t>(nym_count));
  }

  void Run() {
    for (int i = 0; i < nym_count_; ++i) {
      SpawnNym(i);
    }
    sim_.RunUntil([this] { return finished_slots_ == nym_count_; });
    for (auto& cluster : clusters_) {
      cluster->host->ksm().Stop();
    }
  }

  uint64_t visits() const { return total_visits_; }
  uint64_t churns() const { return total_churns_; }
  const std::vector<std::unique_ptr<Cluster>>& clusters() const { return clusters_; }

 private:
  Cluster& ClusterOf(int slot) { return *clusters_[static_cast<size_t>(slot / kNymsPerHost)]; }

  void SpawnNym(int slot) {
    SlotState& state = slots_[static_cast<size_t>(slot)];
    std::string name = "c" + std::to_string(slot / kNymsPerHost) + "-s" +
                       std::to_string(slot % kNymsPerHost) + "-g" +
                       std::to_string(state.generation);
    ClusterOf(slot).manager->CreateNym(
        name, NymManager::CreateOptions{}, [this, slot](Result<Nym*> nym, NymStartupReport) {
          NYMIX_CHECK_MSG(nym.ok(), nym.status().ToString().c_str());
          slots_[static_cast<size_t>(slot)].nym = *nym;
          slots_[static_cast<size_t>(slot)].visits_done = 0;
          VisitNext(slot);
        });
  }

  void VisitNext(int slot) {
    SlotState& state = slots_[static_cast<size_t>(slot)];
    state.nym->browser()->Visit(*ClusterOf(slot).site, [this, slot](Result<SimTime> done) {
      NYMIX_CHECK_MSG(done.ok(), done.status().ToString().c_str());
      ++total_visits_;
      SlotState& state = slots_[static_cast<size_t>(slot)];
      ++state.visits_done;
      // Think time before the next action; acting from a fresh event also
      // means churn never tears a nym down from inside its own callback.
      SimDuration think = Millis(500 + static_cast<SimDuration>(think_prng_.NextBelow(1500)));
      sim_.loop().ScheduleAfter(think, [this, slot] { Advance(slot); });
    });
  }

  void Advance(int slot) {
    SlotState& state = slots_[static_cast<size_t>(slot)];
    if (state.visits_done < kVisitsPerGeneration) {
      VisitNext(slot);
      return;
    }
    ++state.generation;
    NYMIX_CHECK(ClusterOf(slot).manager->TerminateNym(state.nym).ok());
    state.nym = nullptr;
    if (state.generation >= kGenerations) {
      state.finished = true;
      ++finished_slots_;
      return;
    }
    ++total_churns_;
    SpawnNym(slot);
  }

  Simulation& sim_;
  int nym_count_;
  Prng think_prng_;
  std::vector<std::unique_ptr<Cluster>> clusters_;
  std::vector<SlotState> slots_;
  int finished_slots_ = 0;
  uint64_t total_visits_ = 0;
  uint64_t total_churns_ = 0;
};

PointResult RunPoint(BenchStats& stats, bool attach_obs, int n, uint64_t seed,
                     bool full_recompute, WarmStart* warm) {
  std::shared_ptr<BaseImage> warm_image;
  double restore_ms = 0;
  if (warm != nullptr && warm->enabled) {
    std::vector<std::shared_ptr<BaseImage>> images;
    restore_ms = AcquireWarmImages(*warm, 1, images);
    warm_image = std::move(images.front());
  }
  // nymlint:allow(determinism-wallclock): wall-clock throughput is the measurement; it never feeds virtual time
  auto wall_start = std::chrono::steady_clock::now();
  Simulation sim(seed);
  if (attach_obs) {
    stats.Attach(sim);
    // The trace must be byte-identical between incremental and full modes
    // (that is the equivalence contract this bench demonstrates), so keep
    // the simulator's wall-clock self-profiling args out of it.
    stats.obs().trace.set_record_wall_time(false);
  }
  Fleet fleet(sim, n, seed, full_recompute, std::move(warm_image));
  fleet.Run();
  // nymlint:allow(determinism-wallclock): wall-clock throughput is the measurement; it never feeds virtual time
  auto wall_end = std::chrono::steady_clock::now();

  PointResult result;
  result.n = n;
  result.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  result.events = sim.loop().events_executed();
  result.events_per_sec =
      result.wall_seconds > 0 ? static_cast<double>(result.events) / result.wall_seconds : 0;
  result.sim_seconds = static_cast<double>(sim.now()) / 1e6;
  result.visits = fleet.visits();
  result.churns = fleet.churns();
  result.waterfills_full = sim.flows().waterfills_full();
  result.waterfills_component = sim.flows().waterfills_component();
  result.waterfill_skips = sim.flows().waterfill_skips();
  for (const auto& cluster : fleet.clusters()) {
    result.ksm_memories_merged += cluster->host->ksm().memories_merged();
    result.ksm_memories_skipped += cluster->host->ksm().memories_skipped();
    result.ksm_pages_sharing += cluster->host->ksm().stats().pages_sharing;
  }
  result.checkpoint_restore_ms = restore_ms;
  return result;
}

void WriteJson(const std::string& path, const std::string& mode, const std::string& topology,
               uint64_t seed, bool warm_start, const std::vector<PointResult>& incremental,
               const std::vector<PointResult>& full,
               const std::vector<ThreadedPointResult>& threaded) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "scale_fleet: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  // The JsonWriter owns every separator, so the file is canonical JSON in
  // every mode combination (a stray hand-written comma here once broke
  // every downstream json.load of the bench artifact).
  JsonWriter w(out);
  w.BeginObject();
  w.Key("bench");
  w.String("scale_fleet");
  w.Key("mode");
  w.String(mode);
  w.Key("topology");
  w.String(topology);
  w.Key("seed");
  w.Number(seed);
  w.Key("warm_start");
  w.Bool(warm_start);

  auto emit_points = [&](const char* key, const std::vector<PointResult>& points) {
    w.Key(key);
    w.BeginArray();
    for (const PointResult& p : points) {
      w.BeginObject(JsonWriter::kCompact);
      w.Key("n");
      w.Number(p.n);
      w.Key("wall_seconds");
      w.Number(p.wall_seconds, 4);
      w.Key("events");
      w.Number(p.events);
      w.Key("events_per_sec");
      w.Number(p.events_per_sec, 1);
      w.Key("sim_seconds");
      w.Number(p.sim_seconds, 2);
      w.Key("visits");
      w.Number(p.visits);
      w.Key("churns");
      w.Number(p.churns);
      w.Key("waterfills_full");
      w.Number(p.waterfills_full);
      w.Key("waterfills_component");
      w.Number(p.waterfills_component);
      w.Key("waterfill_skips");
      w.Number(p.waterfill_skips);
      w.Key("ksm_memories_merged");
      w.Number(p.ksm_memories_merged);
      w.Key("ksm_memories_skipped");
      w.Number(p.ksm_memories_skipped);
      w.Key("ksm_pages_sharing");
      w.Number(p.ksm_pages_sharing);
      w.Key("checkpoint_restore_ms");
      w.Number(p.checkpoint_restore_ms, 3);
      w.EndObject();
    }
    w.EndArray();
  };

  if (!incremental.empty()) {
    emit_points("incremental", incremental);
  }
  if (!full.empty()) {
    emit_points("full_recompute", full);
    w.Key("speedup");
    w.BeginArray();
    for (size_t i = 0; i < full.size(); ++i) {
      double speedup = 0;
      if (i < incremental.size() && incremental[i].wall_seconds > 0) {
        speedup = full[i].wall_seconds / incremental[i].wall_seconds;
      }
      w.BeginObject(JsonWriter::kCompact);
      w.Key("n");
      w.Number(full[i].n);
      w.Key("wall_clock");
      w.Number(speedup, 2);
      w.EndObject();
    }
    w.EndArray();
  }
  if (!threaded.empty()) {
    // hardware_threads lets bench_diff.py gate the parallel speedup on
    // machines that can actually exhibit one (CI containers are often
    // single-core; byte-identity is still checked there).
    w.Key("shards");
    w.Number(threaded.front().shards);
    w.Key("hardware_threads");
    w.Number(ThreadPool::HardwareThreads());
    w.Key("threaded");
    w.BeginArray();
    for (const ThreadedPointResult& p : threaded) {
      w.BeginObject(JsonWriter::kCompact);
      w.Key("n");
      w.Number(p.n);
      w.Key("threads");
      w.Number(p.threads);
      w.Key("topology");
      w.String(topology);
      w.Key("wall_seconds");
      w.Number(p.wall_seconds, 4);
      w.Key("events");
      w.Number(p.events);
      w.Key("events_per_sec");
      w.Number(p.events_per_sec, 1);
      w.Key("epochs");
      w.Number(p.epochs);
      w.Key("cross_deliveries");
      w.Number(p.cross_deliveries);
      w.Key("cloud_fetches");
      w.Number(p.cloud_fetches);
      w.Key("visits");
      w.Number(p.visits);
      w.Key("churns");
      w.Number(p.churns);
      w.Key("ksm_pages_sharing");
      w.Number(p.ksm_pages_sharing);
      w.Key("fleet_pages_sharing");
      w.Number(p.fleet_pages_sharing);
      w.Key("cross_host_extra_sharing");
      w.Number(p.cross_host_extra_sharing);
      w.Key("barrier_wait_ms");
      w.Number(p.barrier_wait_ms, 3);
      w.Key("shard_skew_events");
      w.Number(p.shard_skew_events, 1);
      w.Key("outbox_depth");
      w.Number(p.outbox_depth, 0);
      w.Key("trace_encode_ms");
      w.Number(p.trace_encode_ms, 3);
      w.Key("checkpoint_restore_ms");
      w.Number(p.checkpoint_restore_ms, 3);
      w.Key("trace_sha256");
      w.String(p.trace_sha256);
      w.Key("stats_sha256");
      w.String(p.stats_sha256);
      w.EndObject();
    }
    w.EndArray();
    w.Key("threads_speedup");
    w.BeginArray();
    // Speedup and identity of each point vs the threads=1 run of the same n
    // (the serial reference execution of the same sharded structure).
    for (const ThreadedPointResult& p : threaded) {
      const ThreadedPointResult* base = nullptr;
      for (const ThreadedPointResult& candidate : threaded) {
        if (candidate.n == p.n && candidate.threads == 1) {
          base = &candidate;
          break;
        }
      }
      if (base == nullptr || p.threads == 1) {
        continue;
      }
      double speedup = p.wall_seconds > 0 ? base->wall_seconds / p.wall_seconds : 0;
      bool identical =
          p.trace_sha256 == base->trace_sha256 && p.stats_sha256 == base->stats_sha256;
      w.BeginObject(JsonWriter::kCompact);
      w.Key("n");
      w.Number(p.n);
      w.Key("threads");
      w.Number(p.threads);
      w.Key("topology");
      w.String(topology);
      w.Key("wall_clock");
      w.Number(speedup, 2);
      w.Key("trace_identical");
      w.Bool(identical);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  out << "\n";
  NYMIX_CHECK_MSG(w.balanced(), "scale_fleet: unbalanced JSON emitter");
}

}  // namespace

int main(int argc, char** argv) {
  BenchStats stats("scale_fleet", argc, argv);
  std::vector<int> ns = {8, 64, 256, 1024};
  std::vector<int> threads_list;
  int shards = 8;
  std::string mode = "both";
  std::string topology = "isolated";
  std::string out_path = "BENCH_scale.json";
  uint64_t seed = 13;
  WarmStart warm;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      ns.clear();
      std::string list = arg.substr(4);
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) {
          comma = list.size();
        }
        ns.push_back(std::stoi(list.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      std::string list = arg.substr(10);
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) {
          comma = list.size();
        }
        threads_list.push_back(std::stoi(list.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::stoi(arg.substr(9));
    } else if (arg.rfind("--mode=", 0) == 0) {
      mode = arg.substr(7);
    } else if (arg.rfind("--topology=", 0) == 0) {
      topology = arg.substr(11);
    } else if (arg == "--full-recompute") {
      mode = "full";
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg == "--warm-start") {
      warm.enabled = true;
    } else if (arg.rfind("--warm-start=", 0) == 0) {
      warm.enabled = true;
      warm.path = arg.substr(13);
    }
  }
  if (warm.enabled) {
    // Tolerant load: a missing file means a first (all-cold) run, and a
    // torn tail costs only the damaged records — the cold-build fallback
    // regenerates whatever is missing and the save below repairs the file.
    Result<Bytes> existing = ReadFileBytes(warm.path);
    if (existing.ok()) {
      auto recovered = KvStore::Recover(*existing);
      NYMIX_CHECK_MSG(recovered.ok(), recovered.status().ToString().c_str());
      if (!recovered->clean) {
        std::fprintf(stderr, "scale_fleet: checkpoint %s recovered with %zu bytes lost\n",
                     warm.path.c_str(), recovered->lost_bytes);
      }
      warm.store = std::move(recovered->store);
    }
    std::printf("# warm start: checkpoint %s (%zu entries)\n", warm.path.c_str(),
                warm.store.size());
  }
  // Bad CLI input is a usage error (exit 2, matching the bench_stats
  // --trace-format contract), not an internal invariant failure — a typo'd
  // sweep script should get a usage line, not a NYMIX_CHECK abort.
  if (mode != "both" && mode != "incremental" && mode != "full") {
    std::fprintf(stderr, "scale_fleet: unknown --mode \"%s\"\n", mode.c_str());
    std::fprintf(stderr, "usage: scale_fleet [--mode=both|incremental|full]\n");
    return 2;
  }
  if (topology != "isolated" && topology != "crossed") {
    std::fprintf(stderr, "scale_fleet: unknown --topology \"%s\"\n", topology.c_str());
    std::fprintf(stderr, "usage: scale_fleet [--topology=isolated|crossed]\n");
    return 2;
  }
  const bool crossed = topology == "crossed";
  // Tracing/metrics change the per-event work (and trace layout is
  // per-simulation-attach), so obs-attached runs are for equivalence
  // checking, not for headline throughput.
  const bool attach_obs = stats.stats_requested() || stats.trace_requested();

  std::printf("# scale_fleet: %d-nym-per-host clusters, live KSM, Tor fetch + churn\n",
              kNymsPerHost);
  std::printf("%-6s %-12s %12s %12s %14s\n", "n", "mode", "wall (s)", "events", "events/s");

  std::vector<PointResult> incremental;
  std::vector<PointResult> full;
  for (int n : ns) {
    if (mode != "full") {
      PointResult p = RunPoint(stats, attach_obs, n, seed, /*full_recompute=*/false, &warm);
      std::printf("%-6d %-12s %12.3f %12llu %14.0f\n", n, "incremental", p.wall_seconds,
                  static_cast<unsigned long long>(p.events), p.events_per_sec);
      incremental.push_back(p);
    }
    if (mode != "incremental") {
      PointResult p = RunPoint(stats, attach_obs, n, seed, /*full_recompute=*/true, &warm);
      std::printf("%-6d %-12s %12.3f %12llu %14.0f\n", n, "full", p.wall_seconds,
                  static_cast<unsigned long long>(p.events), p.events_per_sec);
      full.push_back(p);
    }
    if (mode == "both") {
      std::printf("%-6d %-12s %12.2fx\n", n, "speedup",
                  full.back().wall_seconds / incremental.back().wall_seconds);
    }
  }

  std::vector<ThreadedPointResult> threaded;
  bool identity_ok = true;
  if (!threads_list.empty()) {
    NYMIX_CHECK_MSG(shards >= 1, "--shards must be >= 1");
    std::printf("# sharded executor: %d shards, topology: %s, hardware threads: %d\n", shards,
                topology.c_str(), ThreadPool::HardwareThreads());
    for (int n : ns) {
      ShardPlacement placement;
      if (crossed) {
        // Calibrate once per n; every thread count then runs the exact
        // same (seed, shards, placement) experiment, so the identity
        // cross-check below still compares like with like.
        placement = CalibratePlacement(n, shards, seed);
        std::printf("%-6d %-12s placement=%s\n", n, "calibrate", placement.Label().c_str());
      }
      ThreadedPointResult base;  // first thread count of this n (by value:
                                 // threaded reallocates as points append)
      for (int threads : threads_list) {
        ThreadedPointResult p =
            RunThreadedPoint(stats, n, shards, threads, seed, &warm, crossed, placement);
        std::printf("%-6d %-12s %12.3f %12llu %14.0f  trace=%.12s\n", n,
                    ("threads=" + std::to_string(threads)).c_str(), p.wall_seconds,
                    static_cast<unsigned long long>(p.events), p.events_per_sec,
                    p.trace_sha256.c_str());
        if (base.trace_sha256.empty()) {
          base = p;
        } else if (p.trace_sha256 != base.trace_sha256 ||
                   p.stats_sha256 != base.stats_sha256) {
          // The contract this whole subsystem exists for: thread count is
          // execution mechanics and must not move a single output byte.
          std::fprintf(stderr,
                       "scale_fleet: DETERMINISM VIOLATION at n=%d: threads=%d "
                       "disagrees with threads=%d (trace %s vs %s)\n",
                       n, p.threads, base.threads, p.trace_sha256.c_str(),
                       base.trace_sha256.c_str());
          identity_ok = false;
        }
        threaded.push_back(std::move(p));
      }
    }
  }

  WriteJson(out_path, mode, topology, seed, warm.enabled, incremental, full, threaded);
  std::printf("# wrote %s\n", out_path.c_str());

  if (warm.enabled) {
    Status saved = warm.store.Save(warm.path);
    NYMIX_CHECK_MSG(saved.ok(), saved.ToString().c_str());
    std::printf("# warm start: saved checkpoint %s (%zu entries, %zu bytes)\n", warm.path.c_str(),
                warm.store.size(), warm.store.log().size());
  }

  for (size_t i = 0; i < incremental.size(); ++i) {
    std::string prefix = "n" + std::to_string(incremental[i].n);
    stats.Set(prefix + ".events_per_sec", incremental[i].events_per_sec);
    stats.Set(prefix + ".wall_seconds", incremental[i].wall_seconds);
  }
  for (const ThreadedPointResult& p : threaded) {
    std::string prefix = "n" + std::to_string(p.n) + ".t" + std::to_string(p.threads);
    stats.Set(prefix + ".events_per_sec", p.events_per_sec);
    stats.Set(prefix + ".wall_seconds", p.wall_seconds);
  }
  int rc = stats.Finish();
  return identity_ok ? rc : 1;
}
