// Adversary-advantage ablation: the leak-quantification sweep behind the
// paper's tracking-protection claims. Every row runs one AdversaryExperiment
// (src/adversary) — a churning Nymix fleet instrumented with entry/exit
// taps and colluding trackers — and reports what the attack suite extracts:
//
//   * clean sweep     — fleet size x churn generations x workload mix, all
//                       with intact isolation: advantage should sit at the
//                       coincidence floor, the anonymity set near the fleet
//                       size.
//   * planted rows    — each isolation failure (shared cookie jar, reused
//                       circuit, disabled scrub) planted one at a time on
//                       the base configuration: advantage should jump to ~1
//                       for the matching probe.
//   * determinism     — the base configuration re-run at every --threads
//                       value; the merged trace, merged metrics, and the
//                       adversary.* report must hash identically (exit 1
//                       otherwise — thread count must not move a byte).
//
// Usage:
//   ablation_adversary [--n=8,16] [--generations=2,3] [--threads=1,2,4]
//                      [--shards=4] [--seed=7] [--out=BENCH_adversary.json]
//                      [--stats-out=...] [--trace-out=...]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_stats.h"
#include "src/adversary/experiment.h"
#include "src/crypto/sha256.h"

using namespace nymix;

namespace {

struct RowResult {
  int n = 0;
  int generations = 0;
  int threads = 1;
  std::string workload;
  std::string plant;
  double wall_seconds = 0;
  AdversaryReport report;
  std::string digest;  // trace + metrics + report, hex SHA-256
};

std::string HexDigest(const Sha256Digest& digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(digest.size() * 2);
  for (uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

// One experiment run. The digest covers the merged trace, the merged
// metrics dump, and the exported adversary.* family — everything a thread
// count could conceivably perturb.
RowResult RunRow(BenchStats& stats, const AdversaryOptions& options, int shards, int threads,
                 uint64_t seed) {
  // nymlint:allow(determinism-wallclock): wall-clock cost is the measurement; it never feeds virtual time
  auto wall_start = std::chrono::steady_clock::now();
  ShardedSimulation sharded(seed, ShardPlan{shards, threads});
  sharded.EnableObservability(/*record_wall_time=*/false);
  AdversaryExperiment experiment(sharded, options, seed);
  experiment.Run();
  // nymlint:allow(determinism-wallclock): wall-clock cost is the measurement; it never feeds virtual time
  auto wall_end = std::chrono::steady_clock::now();
  sharded.MergeObservability();

  RowResult row;
  row.n = options.nym_count;
  row.generations = options.generations;
  row.threads = threads;
  row.workload = std::string(WorkloadMixName(options.workload));
  row.plant = std::string(LeakPlantName(options.plant));
  row.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  row.report = experiment.Analyze();

  MetricsRegistry adversary_metrics;
  adversary_metrics.set_enabled(true);
  AdversaryExperiment::ExportMetrics(row.report, adversary_metrics);

  std::ostringstream digest_input;
  digest_input << sharded.merged().trace.ToChromeJson();
  sharded.merged().metrics.WriteJson(digest_input);
  adversary_metrics.WriteJson(digest_input);
  row.digest = HexDigest(Sha256::Hash(digest_input.str()));

  if (stats.trace_requested()) {
    stats.obs().trace.set_enabled(true);
    stats.obs().trace.set_record_wall_time(false);
    std::vector<const TraceRecorder*> parts;
    for (int s = 0; s < sharded.shard_count(); ++s) {
      parts.push_back(&sharded.shard_obs(s).trace);
    }
    stats.obs().trace.MergeShardTraces(parts);
    stats.obs().trace.NextTimeline();
  }
  if (stats.stats_requested()) {
    stats.obs().metrics.MergeFrom(sharded.merged().metrics);
    stats.obs().metrics.MergeFrom(adversary_metrics);
  }
  return row;
}

void PrintRow(const RowResult& row) {
  std::printf("%-4d %-4d %-10s %-18s %9.3f %10.3f %8.1f %8.1f %8.3f\n", row.n, row.generations,
              row.workload.c_str(), row.plant.c_str(), row.report.linkage.advantage,
              row.report.linkage.linkage_probability, row.report.anonymity.min_set,
              row.report.anonymity.mean_set, row.report.correlation.accuracy);
}

void EmitRow(JsonWriter& w, const RowResult& row) {
  w.BeginObject(JsonWriter::kCompact);
  w.Key("n");
  w.Number(row.n);
  w.Key("generations");
  w.Number(row.generations);
  w.Key("threads");
  w.Number(row.threads);
  w.Key("workload");
  w.String(row.workload);
  w.Key("plant");
  w.String(row.plant);
  w.Key("wall_seconds");
  w.Number(row.wall_seconds, 4);
  w.Key("advantage");
  w.Number(row.report.linkage.advantage);
  w.Key("advantage_cookie");
  w.Number(row.report.linkage.cookie.advantage());
  w.Key("advantage_exit");
  w.Number(row.report.linkage.exit_fingerprint.advantage());
  w.Key("advantage_stain");
  w.Number(row.report.linkage.stain.advantage());
  w.Key("linkage_probability");
  w.Number(row.report.linkage.linkage_probability);
  w.Key("anonymity_min");
  w.Number(row.report.anonymity.min_set);
  w.Key("anonymity_mean");
  w.Number(row.report.anonymity.mean_set);
  w.Key("flowcorr_accuracy");
  w.Number(row.report.correlation.accuracy);
  w.Key("nym_instances");
  w.Number(row.report.nym_instances);
  w.Key("entry_flows");
  w.Number(row.report.entry_flows);
  w.Key("exit_flows");
  w.Number(row.report.exit_flows);
  w.Key("digest");
  w.String(row.digest);
  w.EndObject();
}

std::vector<int> ParseIntList(const std::string& list) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) {
      comma = list.size();
    }
    out.push_back(std::stoi(list.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

std::string StatsKey(const RowResult& row) {
  return "n" + std::to_string(row.n) + ".g" + std::to_string(row.generations) + "." +
         row.workload + "." + row.plant;
}

}  // namespace

int main(int argc, char** argv) {
  BenchStats stats("ablation_adversary", argc, argv);
  std::vector<int> ns = {8, 16};
  std::vector<int> generations_list = {2, 3};
  std::vector<int> threads_list = {1, 2, 4};
  int shards = 4;
  uint64_t seed = 7;
  std::string out_path = "BENCH_adversary.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      ns = ParseIntList(arg.substr(4));
    } else if (arg.rfind("--generations=", 0) == 0) {
      generations_list = ParseIntList(arg.substr(14));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads_list = ParseIntList(arg.substr(10));
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::stoi(arg.substr(9));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    }
  }

  const WorkloadMix kMixes[] = {WorkloadMix::kBrowse, WorkloadMix::kStreaming,
                                WorkloadMix::kUpload, WorkloadMix::kMixed};
  const LeakPlant kPlants[] = {LeakPlant::kSharedCookieJar, LeakPlant::kReusedCircuit,
                               LeakPlant::kDisabledScrub};

  std::printf("# ablation_adversary: entry/exit taps + colluding trackers over a churning fleet\n");
  std::printf("%-4s %-4s %-10s %-18s %9s %10s %8s %8s %8s\n", "n", "gen", "workload", "plant",
              "advant.", "link-prob", "anon-min", "anon-avg", "fc-acc");

  // Clean sweep: isolation intact everywhere; the advantage column is the
  // coincidence floor the oracle tests pin at <= 0.1.
  std::vector<RowResult> clean;
  for (int n : ns) {
    for (int generations : generations_list) {
      for (WorkloadMix mix : kMixes) {
        AdversaryOptions options;
        options.nym_count = n;
        options.generations = generations;
        options.workload = mix;
        RowResult row = RunRow(stats, options, shards, threads_list.front(), seed);
        PrintRow(row);
        clean.push_back(std::move(row));
      }
    }
  }

  // Planted rows: one isolation failure at a time on the base config; the
  // matching probe's advantage should be ~1 (oracle floor 0.9).
  std::vector<RowResult> planted;
  for (LeakPlant plant : kPlants) {
    AdversaryOptions options;
    options.nym_count = ns.front();
    options.generations = generations_list.front();
    options.plant = plant;
    RowResult row = RunRow(stats, options, shards, threads_list.front(), seed);
    PrintRow(row);
    planted.push_back(std::move(row));
  }

  // Thread determinism: same base experiment at each thread count; every
  // digest must match the first. This is the adversary lane's slice of the
  // executor's byte-identity contract.
  std::vector<RowResult> threaded;
  bool identity_ok = true;
  for (int threads : threads_list) {
    AdversaryOptions options;
    options.nym_count = ns.front();
    options.generations = generations_list.front();
    RowResult row = RunRow(stats, options, shards, threads, seed);
    std::printf("%-4d %-4d %-10s threads=%-2d digest=%.12s\n", row.n, row.generations,
                row.workload.c_str(), threads, row.digest.c_str());
    if (!threaded.empty() && row.digest != threaded.front().digest) {
      std::fprintf(stderr,
                   "ablation_adversary: DETERMINISM VIOLATION: threads=%d digest %s "
                   "disagrees with threads=%d digest %s\n",
                   threads, row.digest.c_str(), threaded.front().threads,
                   threaded.front().digest.c_str());
      identity_ok = false;
    }
    threaded.push_back(std::move(row));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "ablation_adversary: cannot write %s\n", out_path.c_str());
    return 1;
  }
  JsonWriter w(out);
  w.BeginObject();
  w.Key("bench");
  w.String("ablation_adversary");
  w.Key("seed");
  w.Number(seed);
  w.Key("shards");
  w.Number(shards);
  w.Key("clean");
  w.BeginArray();
  for (const RowResult& row : clean) {
    EmitRow(w, row);
  }
  w.EndArray();
  w.Key("planted");
  w.BeginArray();
  for (const RowResult& row : planted) {
    EmitRow(w, row);
  }
  w.EndArray();
  w.Key("threaded");
  w.BeginArray();
  for (const RowResult& row : threaded) {
    EmitRow(w, row);
  }
  w.EndArray();
  w.Key("threads_identical");
  w.Bool(identity_ok);
  w.EndObject();
  out << "\n";
  NYMIX_CHECK_MSG(w.balanced(), "ablation_adversary: unbalanced JSON emitter");
  std::printf("# wrote %s\n", out_path.c_str());

  for (const RowResult& row : clean) {
    stats.Set(StatsKey(row) + ".advantage", row.report.linkage.advantage);
    stats.Set(StatsKey(row) + ".anonymity_min", row.report.anonymity.min_set);
  }
  for (const RowResult& row : planted) {
    stats.Set(StatsKey(row) + ".advantage", row.report.linkage.advantage);
  }
  stats.SetLabel("threads_identical", identity_ok ? "true" : "false");

  int rc = stats.Finish();
  return identity_ok ? rc : 1;
}
