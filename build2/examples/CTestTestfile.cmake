# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build2/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build2/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dissident_workflow "/root/repo/build2/examples/dissident_workflow")
set_tests_properties(example_dissident_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_role_browsing "/root/repo/build2/examples/multi_role_browsing")
set_tests_properties(example_multi_role_browsing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_installed_os_nym "/root/repo/build2/examples/installed_os_nym")
set_tests_properties(example_installed_os_nym PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_anonymous_posting "/root/repo/build2/examples/anonymous_posting")
set_tests_properties(example_anonymous_posting PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nymix_cli "sh" "-c" "/root/repo/build2/examples/nymix_cli < /root/repo/examples/cli_demo_script.txt")
set_tests_properties(example_nymix_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
