# Empty dependencies file for multi_role_browsing.
# This may be replaced when dependencies are built.
