file(REMOVE_RECURSE
  "CMakeFiles/multi_role_browsing.dir/multi_role_browsing.cpp.o"
  "CMakeFiles/multi_role_browsing.dir/multi_role_browsing.cpp.o.d"
  "multi_role_browsing"
  "multi_role_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_role_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
