file(REMOVE_RECURSE
  "CMakeFiles/nymix_cli.dir/nymix_cli.cpp.o"
  "CMakeFiles/nymix_cli.dir/nymix_cli.cpp.o.d"
  "nymix_cli"
  "nymix_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymix_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
