# Empty dependencies file for nymix_cli.
# This may be replaced when dependencies are built.
