file(REMOVE_RECURSE
  "CMakeFiles/anonymous_posting.dir/anonymous_posting.cpp.o"
  "CMakeFiles/anonymous_posting.dir/anonymous_posting.cpp.o.d"
  "anonymous_posting"
  "anonymous_posting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymous_posting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
