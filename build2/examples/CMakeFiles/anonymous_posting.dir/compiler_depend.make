# Empty compiler generated dependencies file for anonymous_posting.
# This may be replaced when dependencies are built.
