
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/installed_os_nym.cpp" "examples/CMakeFiles/installed_os_nym.dir/installed_os_nym.cpp.o" "gcc" "examples/CMakeFiles/installed_os_nym.dir/installed_os_nym.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/core/CMakeFiles/nymix_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/storage/CMakeFiles/nymix_storage.dir/DependInfo.cmake"
  "/root/repo/build2/src/sanitize/CMakeFiles/nymix_sanitize.dir/DependInfo.cmake"
  "/root/repo/build2/src/workload/CMakeFiles/nymix_workload.dir/DependInfo.cmake"
  "/root/repo/build2/src/hv/CMakeFiles/nymix_hv.dir/DependInfo.cmake"
  "/root/repo/build2/src/anon/CMakeFiles/nymix_anon.dir/DependInfo.cmake"
  "/root/repo/build2/src/unionfs/CMakeFiles/nymix_unionfs.dir/DependInfo.cmake"
  "/root/repo/build2/src/crypto/CMakeFiles/nymix_crypto.dir/DependInfo.cmake"
  "/root/repo/build2/src/compress/CMakeFiles/nymix_compress.dir/DependInfo.cmake"
  "/root/repo/build2/src/net/CMakeFiles/nymix_net.dir/DependInfo.cmake"
  "/root/repo/build2/src/util/CMakeFiles/nymix_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/nymix_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
