file(REMOVE_RECURSE
  "CMakeFiles/installed_os_nym.dir/installed_os_nym.cpp.o"
  "CMakeFiles/installed_os_nym.dir/installed_os_nym.cpp.o.d"
  "installed_os_nym"
  "installed_os_nym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/installed_os_nym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
