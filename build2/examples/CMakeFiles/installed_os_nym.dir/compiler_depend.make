# Empty compiler generated dependencies file for installed_os_nym.
# This may be replaced when dependencies are built.
