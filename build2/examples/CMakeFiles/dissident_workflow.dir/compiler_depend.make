# Empty compiler generated dependencies file for dissident_workflow.
# This may be replaced when dependencies are built.
