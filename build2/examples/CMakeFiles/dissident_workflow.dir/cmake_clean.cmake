file(REMOVE_RECURSE
  "CMakeFiles/dissident_workflow.dir/dissident_workflow.cpp.o"
  "CMakeFiles/dissident_workflow.dir/dissident_workflow.cpp.o.d"
  "dissident_workflow"
  "dissident_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dissident_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
