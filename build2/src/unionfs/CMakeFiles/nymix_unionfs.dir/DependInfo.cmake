
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unionfs/disk_image.cc" "src/unionfs/CMakeFiles/nymix_unionfs.dir/disk_image.cc.o" "gcc" "src/unionfs/CMakeFiles/nymix_unionfs.dir/disk_image.cc.o.d"
  "/root/repo/src/unionfs/mem_fs.cc" "src/unionfs/CMakeFiles/nymix_unionfs.dir/mem_fs.cc.o" "gcc" "src/unionfs/CMakeFiles/nymix_unionfs.dir/mem_fs.cc.o.d"
  "/root/repo/src/unionfs/path.cc" "src/unionfs/CMakeFiles/nymix_unionfs.dir/path.cc.o" "gcc" "src/unionfs/CMakeFiles/nymix_unionfs.dir/path.cc.o.d"
  "/root/repo/src/unionfs/serialize.cc" "src/unionfs/CMakeFiles/nymix_unionfs.dir/serialize.cc.o" "gcc" "src/unionfs/CMakeFiles/nymix_unionfs.dir/serialize.cc.o.d"
  "/root/repo/src/unionfs/union_fs.cc" "src/unionfs/CMakeFiles/nymix_unionfs.dir/union_fs.cc.o" "gcc" "src/unionfs/CMakeFiles/nymix_unionfs.dir/union_fs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/util/CMakeFiles/nymix_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/compress/CMakeFiles/nymix_compress.dir/DependInfo.cmake"
  "/root/repo/build2/src/crypto/CMakeFiles/nymix_crypto.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/nymix_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
