# Empty dependencies file for nymix_unionfs.
# This may be replaced when dependencies are built.
