file(REMOVE_RECURSE
  "libnymix_unionfs.a"
)
