file(REMOVE_RECURSE
  "CMakeFiles/nymix_unionfs.dir/disk_image.cc.o"
  "CMakeFiles/nymix_unionfs.dir/disk_image.cc.o.d"
  "CMakeFiles/nymix_unionfs.dir/mem_fs.cc.o"
  "CMakeFiles/nymix_unionfs.dir/mem_fs.cc.o.d"
  "CMakeFiles/nymix_unionfs.dir/path.cc.o"
  "CMakeFiles/nymix_unionfs.dir/path.cc.o.d"
  "CMakeFiles/nymix_unionfs.dir/serialize.cc.o"
  "CMakeFiles/nymix_unionfs.dir/serialize.cc.o.d"
  "CMakeFiles/nymix_unionfs.dir/union_fs.cc.o"
  "CMakeFiles/nymix_unionfs.dir/union_fs.cc.o.d"
  "libnymix_unionfs.a"
  "libnymix_unionfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymix_unionfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
