# Empty dependencies file for nymix_compress.
# This may be replaced when dependencies are built.
