file(REMOVE_RECURSE
  "CMakeFiles/nymix_compress.dir/nymzip.cc.o"
  "CMakeFiles/nymix_compress.dir/nymzip.cc.o.d"
  "libnymix_compress.a"
  "libnymix_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymix_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
