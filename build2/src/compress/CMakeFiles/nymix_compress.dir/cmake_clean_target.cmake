file(REMOVE_RECURSE
  "libnymix_compress.a"
)
