file(REMOVE_RECURSE
  "CMakeFiles/nymix_core.dir/installed_os.cc.o"
  "CMakeFiles/nymix_core.dir/installed_os.cc.o.d"
  "CMakeFiles/nymix_core.dir/metrics.cc.o"
  "CMakeFiles/nymix_core.dir/metrics.cc.o.d"
  "CMakeFiles/nymix_core.dir/nym.cc.o"
  "CMakeFiles/nymix_core.dir/nym.cc.o.d"
  "CMakeFiles/nymix_core.dir/nym_manager.cc.o"
  "CMakeFiles/nymix_core.dir/nym_manager.cc.o.d"
  "CMakeFiles/nymix_core.dir/sanivm.cc.o"
  "CMakeFiles/nymix_core.dir/sanivm.cc.o.d"
  "CMakeFiles/nymix_core.dir/validation.cc.o"
  "CMakeFiles/nymix_core.dir/validation.cc.o.d"
  "libnymix_core.a"
  "libnymix_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymix_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
