file(REMOVE_RECURSE
  "libnymix_core.a"
)
