# Empty dependencies file for nymix_core.
# This may be replaced when dependencies are built.
