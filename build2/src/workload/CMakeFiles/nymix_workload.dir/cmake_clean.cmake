file(REMOVE_RECURSE
  "CMakeFiles/nymix_workload.dir/browser.cc.o"
  "CMakeFiles/nymix_workload.dir/browser.cc.o.d"
  "CMakeFiles/nymix_workload.dir/downloader.cc.o"
  "CMakeFiles/nymix_workload.dir/downloader.cc.o.d"
  "CMakeFiles/nymix_workload.dir/peacekeeper.cc.o"
  "CMakeFiles/nymix_workload.dir/peacekeeper.cc.o.d"
  "CMakeFiles/nymix_workload.dir/website.cc.o"
  "CMakeFiles/nymix_workload.dir/website.cc.o.d"
  "libnymix_workload.a"
  "libnymix_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymix_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
