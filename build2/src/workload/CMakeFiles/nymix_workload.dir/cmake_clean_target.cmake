file(REMOVE_RECURSE
  "libnymix_workload.a"
)
