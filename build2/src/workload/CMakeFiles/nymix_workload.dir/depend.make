# Empty dependencies file for nymix_workload.
# This may be replaced when dependencies are built.
