file(REMOVE_RECURSE
  "CMakeFiles/nymix_net.dir/address.cc.o"
  "CMakeFiles/nymix_net.dir/address.cc.o.d"
  "CMakeFiles/nymix_net.dir/capture.cc.o"
  "CMakeFiles/nymix_net.dir/capture.cc.o.d"
  "CMakeFiles/nymix_net.dir/flow.cc.o"
  "CMakeFiles/nymix_net.dir/flow.cc.o.d"
  "CMakeFiles/nymix_net.dir/internet.cc.o"
  "CMakeFiles/nymix_net.dir/internet.cc.o.d"
  "CMakeFiles/nymix_net.dir/link.cc.o"
  "CMakeFiles/nymix_net.dir/link.cc.o.d"
  "CMakeFiles/nymix_net.dir/nat.cc.o"
  "CMakeFiles/nymix_net.dir/nat.cc.o.d"
  "CMakeFiles/nymix_net.dir/packet.cc.o"
  "CMakeFiles/nymix_net.dir/packet.cc.o.d"
  "CMakeFiles/nymix_net.dir/simulation.cc.o"
  "CMakeFiles/nymix_net.dir/simulation.cc.o.d"
  "libnymix_net.a"
  "libnymix_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymix_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
