# Empty dependencies file for nymix_net.
# This may be replaced when dependencies are built.
