
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cc" "src/net/CMakeFiles/nymix_net.dir/address.cc.o" "gcc" "src/net/CMakeFiles/nymix_net.dir/address.cc.o.d"
  "/root/repo/src/net/capture.cc" "src/net/CMakeFiles/nymix_net.dir/capture.cc.o" "gcc" "src/net/CMakeFiles/nymix_net.dir/capture.cc.o.d"
  "/root/repo/src/net/flow.cc" "src/net/CMakeFiles/nymix_net.dir/flow.cc.o" "gcc" "src/net/CMakeFiles/nymix_net.dir/flow.cc.o.d"
  "/root/repo/src/net/internet.cc" "src/net/CMakeFiles/nymix_net.dir/internet.cc.o" "gcc" "src/net/CMakeFiles/nymix_net.dir/internet.cc.o.d"
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/nymix_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/nymix_net.dir/link.cc.o.d"
  "/root/repo/src/net/nat.cc" "src/net/CMakeFiles/nymix_net.dir/nat.cc.o" "gcc" "src/net/CMakeFiles/nymix_net.dir/nat.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/nymix_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/nymix_net.dir/packet.cc.o.d"
  "/root/repo/src/net/simulation.cc" "src/net/CMakeFiles/nymix_net.dir/simulation.cc.o" "gcc" "src/net/CMakeFiles/nymix_net.dir/simulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/util/CMakeFiles/nymix_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/nymix_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
