file(REMOVE_RECURSE
  "libnymix_net.a"
)
