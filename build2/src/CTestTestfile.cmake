# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build2/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("obs")
subdirs("util")
subdirs("crypto")
subdirs("compress")
subdirs("unionfs")
subdirs("net")
subdirs("hv")
subdirs("anon")
subdirs("storage")
subdirs("sanitize")
subdirs("workload")
subdirs("core")
