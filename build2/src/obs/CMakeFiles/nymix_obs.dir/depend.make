# Empty dependencies file for nymix_obs.
# This may be replaced when dependencies are built.
