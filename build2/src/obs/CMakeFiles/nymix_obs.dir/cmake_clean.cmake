file(REMOVE_RECURSE
  "CMakeFiles/nymix_obs.dir/json.cc.o"
  "CMakeFiles/nymix_obs.dir/json.cc.o.d"
  "CMakeFiles/nymix_obs.dir/metrics.cc.o"
  "CMakeFiles/nymix_obs.dir/metrics.cc.o.d"
  "CMakeFiles/nymix_obs.dir/trace.cc.o"
  "CMakeFiles/nymix_obs.dir/trace.cc.o.d"
  "libnymix_obs.a"
  "libnymix_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymix_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
