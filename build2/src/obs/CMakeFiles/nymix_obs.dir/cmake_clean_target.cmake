file(REMOVE_RECURSE
  "libnymix_obs.a"
)
