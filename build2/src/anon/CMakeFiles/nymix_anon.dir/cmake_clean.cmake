file(REMOVE_RECURSE
  "CMakeFiles/nymix_anon.dir/dcnet.cc.o"
  "CMakeFiles/nymix_anon.dir/dcnet.cc.o.d"
  "CMakeFiles/nymix_anon.dir/dissent.cc.o"
  "CMakeFiles/nymix_anon.dir/dissent.cc.o.d"
  "CMakeFiles/nymix_anon.dir/dns_proxy.cc.o"
  "CMakeFiles/nymix_anon.dir/dns_proxy.cc.o.d"
  "CMakeFiles/nymix_anon.dir/incognito.cc.o"
  "CMakeFiles/nymix_anon.dir/incognito.cc.o.d"
  "CMakeFiles/nymix_anon.dir/sweet.cc.o"
  "CMakeFiles/nymix_anon.dir/sweet.cc.o.d"
  "CMakeFiles/nymix_anon.dir/tor.cc.o"
  "CMakeFiles/nymix_anon.dir/tor.cc.o.d"
  "libnymix_anon.a"
  "libnymix_anon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymix_anon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
