# Empty dependencies file for nymix_anon.
# This may be replaced when dependencies are built.
