file(REMOVE_RECURSE
  "libnymix_anon.a"
)
