# Empty compiler generated dependencies file for nymix_storage.
# This may be replaced when dependencies are built.
