file(REMOVE_RECURSE
  "CMakeFiles/nymix_storage.dir/cloud.cc.o"
  "CMakeFiles/nymix_storage.dir/cloud.cc.o.d"
  "CMakeFiles/nymix_storage.dir/local_store.cc.o"
  "CMakeFiles/nymix_storage.dir/local_store.cc.o.d"
  "CMakeFiles/nymix_storage.dir/nym_archive.cc.o"
  "CMakeFiles/nymix_storage.dir/nym_archive.cc.o.d"
  "libnymix_storage.a"
  "libnymix_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymix_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
