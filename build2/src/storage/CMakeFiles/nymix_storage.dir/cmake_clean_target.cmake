file(REMOVE_RECURSE
  "libnymix_storage.a"
)
