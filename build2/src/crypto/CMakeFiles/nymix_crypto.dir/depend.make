# Empty dependencies file for nymix_crypto.
# This may be replaced when dependencies are built.
