
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aead.cc" "src/crypto/CMakeFiles/nymix_crypto.dir/aead.cc.o" "gcc" "src/crypto/CMakeFiles/nymix_crypto.dir/aead.cc.o.d"
  "/root/repo/src/crypto/chacha20.cc" "src/crypto/CMakeFiles/nymix_crypto.dir/chacha20.cc.o" "gcc" "src/crypto/CMakeFiles/nymix_crypto.dir/chacha20.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/crypto/CMakeFiles/nymix_crypto.dir/hmac.cc.o" "gcc" "src/crypto/CMakeFiles/nymix_crypto.dir/hmac.cc.o.d"
  "/root/repo/src/crypto/merkle.cc" "src/crypto/CMakeFiles/nymix_crypto.dir/merkle.cc.o" "gcc" "src/crypto/CMakeFiles/nymix_crypto.dir/merkle.cc.o.d"
  "/root/repo/src/crypto/poly1305.cc" "src/crypto/CMakeFiles/nymix_crypto.dir/poly1305.cc.o" "gcc" "src/crypto/CMakeFiles/nymix_crypto.dir/poly1305.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/nymix_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/nymix_crypto.dir/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/util/CMakeFiles/nymix_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/nymix_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
