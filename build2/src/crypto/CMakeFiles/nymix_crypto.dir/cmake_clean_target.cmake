file(REMOVE_RECURSE
  "libnymix_crypto.a"
)
