file(REMOVE_RECURSE
  "CMakeFiles/nymix_crypto.dir/aead.cc.o"
  "CMakeFiles/nymix_crypto.dir/aead.cc.o.d"
  "CMakeFiles/nymix_crypto.dir/chacha20.cc.o"
  "CMakeFiles/nymix_crypto.dir/chacha20.cc.o.d"
  "CMakeFiles/nymix_crypto.dir/hmac.cc.o"
  "CMakeFiles/nymix_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/nymix_crypto.dir/merkle.cc.o"
  "CMakeFiles/nymix_crypto.dir/merkle.cc.o.d"
  "CMakeFiles/nymix_crypto.dir/poly1305.cc.o"
  "CMakeFiles/nymix_crypto.dir/poly1305.cc.o.d"
  "CMakeFiles/nymix_crypto.dir/sha256.cc.o"
  "CMakeFiles/nymix_crypto.dir/sha256.cc.o.d"
  "libnymix_crypto.a"
  "libnymix_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymix_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
