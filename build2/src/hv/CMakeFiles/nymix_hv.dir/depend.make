# Empty dependencies file for nymix_hv.
# This may be replaced when dependencies are built.
