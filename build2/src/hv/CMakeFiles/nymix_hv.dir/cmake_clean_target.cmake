file(REMOVE_RECURSE
  "libnymix_hv.a"
)
