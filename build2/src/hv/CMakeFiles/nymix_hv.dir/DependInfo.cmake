
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/cpu_scheduler.cc" "src/hv/CMakeFiles/nymix_hv.dir/cpu_scheduler.cc.o" "gcc" "src/hv/CMakeFiles/nymix_hv.dir/cpu_scheduler.cc.o.d"
  "/root/repo/src/hv/guest_memory.cc" "src/hv/CMakeFiles/nymix_hv.dir/guest_memory.cc.o" "gcc" "src/hv/CMakeFiles/nymix_hv.dir/guest_memory.cc.o.d"
  "/root/repo/src/hv/host.cc" "src/hv/CMakeFiles/nymix_hv.dir/host.cc.o" "gcc" "src/hv/CMakeFiles/nymix_hv.dir/host.cc.o.d"
  "/root/repo/src/hv/ksm.cc" "src/hv/CMakeFiles/nymix_hv.dir/ksm.cc.o" "gcc" "src/hv/CMakeFiles/nymix_hv.dir/ksm.cc.o.d"
  "/root/repo/src/hv/vm.cc" "src/hv/CMakeFiles/nymix_hv.dir/vm.cc.o" "gcc" "src/hv/CMakeFiles/nymix_hv.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/util/CMakeFiles/nymix_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/unionfs/CMakeFiles/nymix_unionfs.dir/DependInfo.cmake"
  "/root/repo/build2/src/net/CMakeFiles/nymix_net.dir/DependInfo.cmake"
  "/root/repo/build2/src/compress/CMakeFiles/nymix_compress.dir/DependInfo.cmake"
  "/root/repo/build2/src/crypto/CMakeFiles/nymix_crypto.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/nymix_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
