file(REMOVE_RECURSE
  "CMakeFiles/nymix_hv.dir/cpu_scheduler.cc.o"
  "CMakeFiles/nymix_hv.dir/cpu_scheduler.cc.o.d"
  "CMakeFiles/nymix_hv.dir/guest_memory.cc.o"
  "CMakeFiles/nymix_hv.dir/guest_memory.cc.o.d"
  "CMakeFiles/nymix_hv.dir/host.cc.o"
  "CMakeFiles/nymix_hv.dir/host.cc.o.d"
  "CMakeFiles/nymix_hv.dir/ksm.cc.o"
  "CMakeFiles/nymix_hv.dir/ksm.cc.o.d"
  "CMakeFiles/nymix_hv.dir/vm.cc.o"
  "CMakeFiles/nymix_hv.dir/vm.cc.o.d"
  "libnymix_hv.a"
  "libnymix_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymix_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
