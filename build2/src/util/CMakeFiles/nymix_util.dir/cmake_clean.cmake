file(REMOVE_RECURSE
  "CMakeFiles/nymix_util.dir/blob.cc.o"
  "CMakeFiles/nymix_util.dir/blob.cc.o.d"
  "CMakeFiles/nymix_util.dir/bytes.cc.o"
  "CMakeFiles/nymix_util.dir/bytes.cc.o.d"
  "CMakeFiles/nymix_util.dir/event_loop.cc.o"
  "CMakeFiles/nymix_util.dir/event_loop.cc.o.d"
  "CMakeFiles/nymix_util.dir/fault.cc.o"
  "CMakeFiles/nymix_util.dir/fault.cc.o.d"
  "CMakeFiles/nymix_util.dir/logging.cc.o"
  "CMakeFiles/nymix_util.dir/logging.cc.o.d"
  "CMakeFiles/nymix_util.dir/prng.cc.o"
  "CMakeFiles/nymix_util.dir/prng.cc.o.d"
  "CMakeFiles/nymix_util.dir/status.cc.o"
  "CMakeFiles/nymix_util.dir/status.cc.o.d"
  "libnymix_util.a"
  "libnymix_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymix_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
