# Empty dependencies file for nymix_util.
# This may be replaced when dependencies are built.
