file(REMOVE_RECURSE
  "libnymix_util.a"
)
