
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/blob.cc" "src/util/CMakeFiles/nymix_util.dir/blob.cc.o" "gcc" "src/util/CMakeFiles/nymix_util.dir/blob.cc.o.d"
  "/root/repo/src/util/bytes.cc" "src/util/CMakeFiles/nymix_util.dir/bytes.cc.o" "gcc" "src/util/CMakeFiles/nymix_util.dir/bytes.cc.o.d"
  "/root/repo/src/util/event_loop.cc" "src/util/CMakeFiles/nymix_util.dir/event_loop.cc.o" "gcc" "src/util/CMakeFiles/nymix_util.dir/event_loop.cc.o.d"
  "/root/repo/src/util/fault.cc" "src/util/CMakeFiles/nymix_util.dir/fault.cc.o" "gcc" "src/util/CMakeFiles/nymix_util.dir/fault.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/util/CMakeFiles/nymix_util.dir/logging.cc.o" "gcc" "src/util/CMakeFiles/nymix_util.dir/logging.cc.o.d"
  "/root/repo/src/util/prng.cc" "src/util/CMakeFiles/nymix_util.dir/prng.cc.o" "gcc" "src/util/CMakeFiles/nymix_util.dir/prng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/nymix_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/nymix_util.dir/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/obs/CMakeFiles/nymix_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
