file(REMOVE_RECURSE
  "CMakeFiles/nymix_sanitize.dir/document.cc.o"
  "CMakeFiles/nymix_sanitize.dir/document.cc.o.d"
  "CMakeFiles/nymix_sanitize.dir/exif.cc.o"
  "CMakeFiles/nymix_sanitize.dir/exif.cc.o.d"
  "CMakeFiles/nymix_sanitize.dir/image.cc.o"
  "CMakeFiles/nymix_sanitize.dir/image.cc.o.d"
  "CMakeFiles/nymix_sanitize.dir/jpeg.cc.o"
  "CMakeFiles/nymix_sanitize.dir/jpeg.cc.o.d"
  "CMakeFiles/nymix_sanitize.dir/png.cc.o"
  "CMakeFiles/nymix_sanitize.dir/png.cc.o.d"
  "CMakeFiles/nymix_sanitize.dir/scrubber.cc.o"
  "CMakeFiles/nymix_sanitize.dir/scrubber.cc.o.d"
  "libnymix_sanitize.a"
  "libnymix_sanitize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymix_sanitize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
