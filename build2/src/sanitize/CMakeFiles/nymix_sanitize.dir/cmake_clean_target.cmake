file(REMOVE_RECURSE
  "libnymix_sanitize.a"
)
