
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sanitize/document.cc" "src/sanitize/CMakeFiles/nymix_sanitize.dir/document.cc.o" "gcc" "src/sanitize/CMakeFiles/nymix_sanitize.dir/document.cc.o.d"
  "/root/repo/src/sanitize/exif.cc" "src/sanitize/CMakeFiles/nymix_sanitize.dir/exif.cc.o" "gcc" "src/sanitize/CMakeFiles/nymix_sanitize.dir/exif.cc.o.d"
  "/root/repo/src/sanitize/image.cc" "src/sanitize/CMakeFiles/nymix_sanitize.dir/image.cc.o" "gcc" "src/sanitize/CMakeFiles/nymix_sanitize.dir/image.cc.o.d"
  "/root/repo/src/sanitize/jpeg.cc" "src/sanitize/CMakeFiles/nymix_sanitize.dir/jpeg.cc.o" "gcc" "src/sanitize/CMakeFiles/nymix_sanitize.dir/jpeg.cc.o.d"
  "/root/repo/src/sanitize/png.cc" "src/sanitize/CMakeFiles/nymix_sanitize.dir/png.cc.o" "gcc" "src/sanitize/CMakeFiles/nymix_sanitize.dir/png.cc.o.d"
  "/root/repo/src/sanitize/scrubber.cc" "src/sanitize/CMakeFiles/nymix_sanitize.dir/scrubber.cc.o" "gcc" "src/sanitize/CMakeFiles/nymix_sanitize.dir/scrubber.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/util/CMakeFiles/nymix_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/obs/CMakeFiles/nymix_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
