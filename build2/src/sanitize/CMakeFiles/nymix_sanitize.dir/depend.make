# Empty dependencies file for nymix_sanitize.
# This may be replaced when dependencies are built.
