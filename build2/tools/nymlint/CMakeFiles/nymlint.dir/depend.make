# Empty dependencies file for nymlint.
# This may be replaced when dependencies are built.
