file(REMOVE_RECURSE
  "CMakeFiles/nymlint.dir/main.cc.o"
  "CMakeFiles/nymlint.dir/main.cc.o.d"
  "nymlint"
  "nymlint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymlint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
