file(REMOVE_RECURSE
  "libnymlint_lib.a"
)
