# Empty dependencies file for nymlint_lib.
# This may be replaced when dependencies are built.
