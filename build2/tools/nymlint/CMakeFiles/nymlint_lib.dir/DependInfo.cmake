
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/nymlint/analyzer.cc" "tools/nymlint/CMakeFiles/nymlint_lib.dir/analyzer.cc.o" "gcc" "tools/nymlint/CMakeFiles/nymlint_lib.dir/analyzer.cc.o.d"
  "/root/repo/tools/nymlint/lexer.cc" "tools/nymlint/CMakeFiles/nymlint_lib.dir/lexer.cc.o" "gcc" "tools/nymlint/CMakeFiles/nymlint_lib.dir/lexer.cc.o.d"
  "/root/repo/tools/nymlint/rules.cc" "tools/nymlint/CMakeFiles/nymlint_lib.dir/rules.cc.o" "gcc" "tools/nymlint/CMakeFiles/nymlint_lib.dir/rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
