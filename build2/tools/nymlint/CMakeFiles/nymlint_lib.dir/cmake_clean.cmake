file(REMOVE_RECURSE
  "CMakeFiles/nymlint_lib.dir/analyzer.cc.o"
  "CMakeFiles/nymlint_lib.dir/analyzer.cc.o.d"
  "CMakeFiles/nymlint_lib.dir/lexer.cc.o"
  "CMakeFiles/nymlint_lib.dir/lexer.cc.o.d"
  "CMakeFiles/nymlint_lib.dir/rules.cc.o"
  "CMakeFiles/nymlint_lib.dir/rules.cc.o.d"
  "libnymlint_lib.a"
  "libnymlint_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymlint_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
