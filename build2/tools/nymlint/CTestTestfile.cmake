# CMake generated Testfile for 
# Source directory: /root/repo/tools/nymlint
# Build directory: /root/repo/build2/tools/nymlint
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
