# Empty dependencies file for sanitize_test.
# This may be replaced when dependencies are built.
