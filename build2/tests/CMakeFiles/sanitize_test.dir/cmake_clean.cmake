file(REMOVE_RECURSE
  "CMakeFiles/sanitize_test.dir/sanitize_test.cc.o"
  "CMakeFiles/sanitize_test.dir/sanitize_test.cc.o.d"
  "sanitize_test"
  "sanitize_test.pdb"
  "sanitize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sanitize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
