file(REMOVE_RECURSE
  "CMakeFiles/perf_equivalence_test.dir/perf_equivalence_test.cc.o"
  "CMakeFiles/perf_equivalence_test.dir/perf_equivalence_test.cc.o.d"
  "perf_equivalence_test"
  "perf_equivalence_test.pdb"
  "perf_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
