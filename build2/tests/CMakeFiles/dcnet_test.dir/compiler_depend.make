# Empty compiler generated dependencies file for dcnet_test.
# This may be replaced when dependencies are built.
