file(REMOVE_RECURSE
  "CMakeFiles/dcnet_test.dir/dcnet_test.cc.o"
  "CMakeFiles/dcnet_test.dir/dcnet_test.cc.o.d"
  "dcnet_test"
  "dcnet_test.pdb"
  "dcnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
