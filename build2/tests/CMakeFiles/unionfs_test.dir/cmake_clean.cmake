file(REMOVE_RECURSE
  "CMakeFiles/unionfs_test.dir/unionfs_test.cc.o"
  "CMakeFiles/unionfs_test.dir/unionfs_test.cc.o.d"
  "unionfs_test"
  "unionfs_test.pdb"
  "unionfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unionfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
