# Empty dependencies file for unionfs_test.
# This may be replaced when dependencies are built.
