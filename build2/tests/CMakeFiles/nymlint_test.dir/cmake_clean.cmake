file(REMOVE_RECURSE
  "CMakeFiles/nymlint_test.dir/nymlint_test.cc.o"
  "CMakeFiles/nymlint_test.dir/nymlint_test.cc.o.d"
  "nymlint_test"
  "nymlint_test.pdb"
  "nymlint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nymlint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
