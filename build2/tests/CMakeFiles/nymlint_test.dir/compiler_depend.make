# Empty compiler generated dependencies file for nymlint_test.
# This may be replaced when dependencies are built.
