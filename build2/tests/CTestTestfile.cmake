# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/util_test[1]_include.cmake")
include("/root/repo/build2/tests/obs_test[1]_include.cmake")
include("/root/repo/build2/tests/crypto_test[1]_include.cmake")
include("/root/repo/build2/tests/compress_test[1]_include.cmake")
include("/root/repo/build2/tests/unionfs_test[1]_include.cmake")
include("/root/repo/build2/tests/net_test[1]_include.cmake")
include("/root/repo/build2/tests/hv_test[1]_include.cmake")
include("/root/repo/build2/tests/anon_test[1]_include.cmake")
include("/root/repo/build2/tests/storage_test[1]_include.cmake")
include("/root/repo/build2/tests/sanitize_test[1]_include.cmake")
include("/root/repo/build2/tests/workload_test[1]_include.cmake")
include("/root/repo/build2/tests/core_test[1]_include.cmake")
include("/root/repo/build2/tests/integration_test[1]_include.cmake")
include("/root/repo/build2/tests/extensions_test[1]_include.cmake")
include("/root/repo/build2/tests/experiments_test[1]_include.cmake")
include("/root/repo/build2/tests/dcnet_test[1]_include.cmake")
include("/root/repo/build2/tests/determinism_test[1]_include.cmake")
include("/root/repo/build2/tests/fault_test[1]_include.cmake")
include("/root/repo/build2/tests/nymlint_test[1]_include.cmake")
include("/root/repo/build2/tests/perf_equivalence_test[1]_include.cmake")
