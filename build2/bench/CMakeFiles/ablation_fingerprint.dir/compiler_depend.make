# Empty compiler generated dependencies file for ablation_fingerprint.
# This may be replaced when dependencies are built.
