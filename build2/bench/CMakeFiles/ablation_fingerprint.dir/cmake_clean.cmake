file(REMOVE_RECURSE
  "CMakeFiles/ablation_fingerprint.dir/ablation_fingerprint.cc.o"
  "CMakeFiles/ablation_fingerprint.dir/ablation_fingerprint.cc.o.d"
  "ablation_fingerprint"
  "ablation_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
