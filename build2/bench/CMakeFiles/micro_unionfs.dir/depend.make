# Empty dependencies file for micro_unionfs.
# This may be replaced when dependencies are built.
