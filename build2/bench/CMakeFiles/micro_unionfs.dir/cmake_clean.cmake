file(REMOVE_RECURSE
  "CMakeFiles/micro_unionfs.dir/micro_unionfs.cc.o"
  "CMakeFiles/micro_unionfs.dir/micro_unionfs.cc.o.d"
  "micro_unionfs"
  "micro_unionfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_unionfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
