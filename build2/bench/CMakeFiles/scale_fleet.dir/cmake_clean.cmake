file(REMOVE_RECURSE
  "CMakeFiles/scale_fleet.dir/scale_fleet.cc.o"
  "CMakeFiles/scale_fleet.dir/scale_fleet.cc.o.d"
  "scale_fleet"
  "scale_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
