# Empty compiler generated dependencies file for scale_fleet.
# This may be replaced when dependencies are built.
