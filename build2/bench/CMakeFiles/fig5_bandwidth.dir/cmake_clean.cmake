file(REMOVE_RECURSE
  "CMakeFiles/fig5_bandwidth.dir/fig5_bandwidth.cc.o"
  "CMakeFiles/fig5_bandwidth.dir/fig5_bandwidth.cc.o.d"
  "fig5_bandwidth"
  "fig5_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
