# Empty dependencies file for ablation_anonymizers.
# This may be replaced when dependencies are built.
