file(REMOVE_RECURSE
  "CMakeFiles/ablation_anonymizers.dir/ablation_anonymizers.cc.o"
  "CMakeFiles/ablation_anonymizers.dir/ablation_anonymizers.cc.o.d"
  "ablation_anonymizers"
  "ablation_anonymizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_anonymizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
