# Empty compiler generated dependencies file for fig7_startup.
# This may be replaced when dependencies are built.
