file(REMOVE_RECURSE
  "CMakeFiles/fig7_startup.dir/fig7_startup.cc.o"
  "CMakeFiles/fig7_startup.dir/fig7_startup.cc.o.d"
  "fig7_startup"
  "fig7_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
