# Empty dependencies file for tab1_installed_os.
# This may be replaced when dependencies are built.
