file(REMOVE_RECURSE
  "CMakeFiles/tab1_installed_os.dir/tab1_installed_os.cc.o"
  "CMakeFiles/tab1_installed_os.dir/tab1_installed_os.cc.o.d"
  "tab1_installed_os"
  "tab1_installed_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_installed_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
