# Empty compiler generated dependencies file for ablation_ksm.
# This may be replaced when dependencies are built.
