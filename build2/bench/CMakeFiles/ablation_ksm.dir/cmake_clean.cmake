file(REMOVE_RECURSE
  "CMakeFiles/ablation_ksm.dir/ablation_ksm.cc.o"
  "CMakeFiles/ablation_ksm.dir/ablation_ksm.cc.o.d"
  "ablation_ksm"
  "ablation_ksm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ksm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
