# Empty compiler generated dependencies file for ablation_guard_persistence.
# This may be replaced when dependencies are built.
