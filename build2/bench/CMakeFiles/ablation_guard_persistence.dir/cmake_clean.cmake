file(REMOVE_RECURSE
  "CMakeFiles/ablation_guard_persistence.dir/ablation_guard_persistence.cc.o"
  "CMakeFiles/ablation_guard_persistence.dir/ablation_guard_persistence.cc.o.d"
  "ablation_guard_persistence"
  "ablation_guard_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_guard_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
