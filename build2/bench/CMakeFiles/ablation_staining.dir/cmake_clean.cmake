file(REMOVE_RECURSE
  "CMakeFiles/ablation_staining.dir/ablation_staining.cc.o"
  "CMakeFiles/ablation_staining.dir/ablation_staining.cc.o.d"
  "ablation_staining"
  "ablation_staining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_staining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
