# Empty dependencies file for ablation_staining.
# This may be replaced when dependencies are built.
