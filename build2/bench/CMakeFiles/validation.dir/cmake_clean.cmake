file(REMOVE_RECURSE
  "CMakeFiles/validation.dir/validation.cc.o"
  "CMakeFiles/validation.dir/validation.cc.o.d"
  "validation"
  "validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
