# Empty dependencies file for validation.
# This may be replaced when dependencies are built.
