file(REMOVE_RECURSE
  "CMakeFiles/fig6_storage.dir/fig6_storage.cc.o"
  "CMakeFiles/fig6_storage.dir/fig6_storage.cc.o.d"
  "fig6_storage"
  "fig6_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
