# Empty dependencies file for fig6_storage.
# This may be replaced when dependencies are built.
