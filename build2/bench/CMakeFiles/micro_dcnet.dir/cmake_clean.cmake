file(REMOVE_RECURSE
  "CMakeFiles/micro_dcnet.dir/micro_dcnet.cc.o"
  "CMakeFiles/micro_dcnet.dir/micro_dcnet.cc.o.d"
  "micro_dcnet"
  "micro_dcnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dcnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
