# Empty compiler generated dependencies file for micro_dcnet.
# This may be replaced when dependencies are built.
