file(REMOVE_RECURSE
  "CMakeFiles/fig4_cpu.dir/fig4_cpu.cc.o"
  "CMakeFiles/fig4_cpu.dir/fig4_cpu.cc.o.d"
  "fig4_cpu"
  "fig4_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
