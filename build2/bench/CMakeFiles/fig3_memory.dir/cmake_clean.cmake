file(REMOVE_RECURSE
  "CMakeFiles/fig3_memory.dir/fig3_memory.cc.o"
  "CMakeFiles/fig3_memory.dir/fig3_memory.cc.o.d"
  "fig3_memory"
  "fig3_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
