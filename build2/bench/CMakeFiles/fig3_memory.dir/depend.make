# Empty dependencies file for fig3_memory.
# This may be replaced when dependencies are built.
