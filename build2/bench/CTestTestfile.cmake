# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build2/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_validation "/root/repo/build2/bench/validation")
set_tests_properties(bench_validation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_guard_persistence "/root/repo/build2/bench/ablation_guard_persistence")
set_tests_properties(bench_guard_persistence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_ablation_faults "/root/repo/build2/bench/ablation_faults")
set_tests_properties(bench_ablation_faults PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
